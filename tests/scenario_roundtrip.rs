//! Serialization round-trip guarantees of the Scenario layer.
//!
//! 1. DetRng-seeded fuzz: randomly generated scenarios — hostile workload
//!    names full of escape characters and unicode, extreme byte sizes up to
//!    `u64::MAX`, every approach variant — must survive
//!    serialize → parse → serialize with value *and* byte identity.
//! 2. Every committed `scenarios/*.scn` file must load, pass
//!    `Scenario::validate`, and round-trip byte-identically through
//!    parse → serialize (the committed files are in canonical form).

use auto_hbwmalloc::PlacementApproach;
use hmem_advisor::SelectionStrategy;
use hmem_core::{
    committed_scenarios, MachineSelector, MultiRankSelector, Scenario, WorkloadSelector,
};
use hmsim_common::{ByteSize, DetRng};
use hmsim_machine::MemoryMode;
use hmsim_profiler::ProfilerConfig;
use hmsim_runtime::{ArbiterPolicy, OnlineConfig};
use std::path::Path;

/// Fragments chosen to break naive escaping: quotes, backslashes, partial
/// escape sequences, JSON syntax, whitespace controls, unicode.
const HOSTILE_FRAGMENTS: &[&str] = &[
    "\"", "\\", "\\u12", "{", "}", "[", "]", ":", ",", " ", "\t", "\n", "\r", "\r\n", "\u{1}",
    "null", "1e999", "é✓", "名前", "\"app\":",
];

fn random_name(rng: &mut DetRng) -> String {
    let mut name = String::new();
    for _ in 0..rng.uniform_range(1, 6) {
        if rng.chance(0.5) {
            name.push_str(
                HOSTILE_FRAGMENTS[rng.uniform_range(0, HOSTILE_FRAGMENTS.len() as u64) as usize],
            );
        } else {
            for _ in 0..rng.uniform_range(1, 8) {
                name.push((b'a' + rng.uniform_range(0, 26) as u8) as char);
            }
        }
    }
    name
}

/// Sizes spanning the whole u64 range, biased toward the extremes that
/// would expose f64 round-off in a naive number-based encoding.
fn random_size(rng: &mut DetRng) -> ByteSize {
    match rng.uniform_range(0, 4) {
        0 => ByteSize::from_bytes(rng.uniform_range(1, 1 << 20)),
        1 => ByteSize::from_mib(rng.uniform_range(1, 1 << 14)),
        2 => ByteSize::from_bytes(u64::MAX - rng.uniform_range(0, 1 << 10)),
        _ => ByteSize::from_bytes(rng.next_u64() | 1),
    }
}

fn random_strategy(rng: &mut DetRng) -> SelectionStrategy {
    match rng.uniform_range(0, 3) {
        0 => SelectionStrategy::Density,
        1 => SelectionStrategy::ExactKnapsack,
        _ => SelectionStrategy::Misses {
            threshold_percent: (rng.uniform() - 0.5) * 200.0,
        },
    }
}

fn random_approach(rng: &mut DetRng) -> PlacementApproach {
    match rng.uniform_range(0, 6) {
        0 => PlacementApproach::DdrOnly,
        1 => PlacementApproach::NumactlPreferred,
        2 => PlacementApproach::AutoHbw {
            threshold: random_size(rng),
        },
        3 => PlacementApproach::CacheMode,
        4 => PlacementApproach::Framework {
            strategy: random_strategy(rng),
        },
        _ => PlacementApproach::Online,
    }
}

fn random_workload(rng: &mut DetRng) -> WorkloadSelector {
    match rng.uniform_range(0, 4) {
        0 => WorkloadSelector::App {
            name: random_name(rng),
        },
        1 => WorkloadSelector::Phased {
            name: random_name(rng),
            array_size: random_size(rng),
        },
        2 => WorkloadSelector::MultiRank(MultiRankSelector::Replicated {
            workload: random_name(rng),
            array_size: random_size(rng),
            ranks: rng.next_u32(),
        }),
        _ => WorkloadSelector::MultiRank(MultiRankSelector::RankSkewTriad {
            array_size: random_size(rng),
            ranks: rng.next_u32(),
            skew: rng.next_u32(),
            passes: rng.next_u32(),
        }),
    }
}

fn random_scenario(rng: &mut DetRng) -> Scenario {
    Scenario {
        name: random_name(rng),
        workload: random_workload(rng),
        machine: match rng.uniform_range(0, 3) {
            0 => MachineSelector::Knl7250,
            1 => MachineSelector::TinyTest,
            _ => MachineSelector::LoadedTinyTest,
        },
        memory_mode: match rng.uniform_range(0, 3) {
            0 => MemoryMode::Flat,
            1 => MemoryMode::Cache,
            _ => MemoryMode::Hybrid {
                cache_fraction_percent: rng.uniform_range(0, 256) as u8,
            },
        },
        approach: random_approach(rng),
        mcdram_budget: random_size(rng),
        iterations: rng.chance(0.5).then(|| rng.next_u32()),
        online: rng.chance(0.5).then(|| OnlineConfig {
            epoch_accesses: rng.next_u64(),
            max_moves_per_epoch: rng.next_u32(),
            min_residency_epochs: rng.next_u64(),
            heat_deadband: rng.normal(2.0, 10.0),
            heat_decay: rng.uniform(),
            strategy: random_strategy(rng),
            pebs_period: rng.next_u64(),
            migration_streams: rng.next_u32(),
            seed: rng.next_u64(),
        }),
        rank_policy: match rng.uniform_range(0, 3) {
            0 => ArbiterPolicy::Fcfs,
            1 => ArbiterPolicy::Partition,
            _ => ArbiterPolicy::Global,
        },
        profiling: rng.chance(0.5).then(|| ProfilerConfig {
            sampling_period: rng.next_u64(),
            min_alloc_size: random_size(rng),
            counter_snapshot_interval: hmsim_common::Nanos(rng.exponential(1e6)),
            seed: rng.next_u64(),
        }),
        seed: rng.next_u64(),
    }
}

#[test]
fn fuzzed_scenarios_round_trip_value_and_byte_identically() {
    let mut rng = DetRng::new(0x5C17_F022);
    for i in 0..500 {
        let scenario = random_scenario(&mut rng);
        let text = scenario.serialize();
        let back = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("iteration {i}: reparse failed: {e}\n{text}"));
        assert_eq!(back, scenario, "iteration {i}: value round-trip\n{text}");
        assert_eq!(
            back.serialize(),
            text,
            "iteration {i}: canonical text not a fixed point"
        );
    }
}

#[test]
fn every_approach_variant_round_trips() {
    for approach in [
        PlacementApproach::DdrOnly,
        PlacementApproach::NumactlPreferred,
        PlacementApproach::autohbw_1m(),
        PlacementApproach::AutoHbw {
            threshold: ByteSize::from_bytes(u64::MAX),
        },
        PlacementApproach::CacheMode,
        PlacementApproach::framework(SelectionStrategy::Density),
        PlacementApproach::framework(SelectionStrategy::ExactKnapsack),
        PlacementApproach::framework(SelectionStrategy::Misses {
            threshold_percent: 2.5,
        }),
        PlacementApproach::Online,
    ] {
        let budget = if approach == PlacementApproach::CacheMode {
            ByteSize::ZERO
        } else {
            ByteSize::from_mib(64)
        };
        let scenario = Scenario::app("miniFE", approach, budget);
        let back = Scenario::parse(&scenario.serialize()).unwrap();
        assert_eq!(back, scenario);
    }
}

#[test]
fn committed_scenario_files_load_validate_and_round_trip_byte_identically() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios"));
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("scenarios/ exists at the workspace root")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "scn").unwrap_or(false))
        .collect();
    files.sort();
    assert!(
        files.len() >= committed_scenarios().len(),
        "expected at least the curated set, found {files:?}"
    );
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        let scenario = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            scenario.serialize(),
            text,
            "{}: committed file is not in canonical form (run the ignored \
             regenerate_committed_scenarios test)",
            path.display()
        );
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(scenario.name.as_str()),
            "file stem and scenario name must agree"
        );
    }
    // The curated in-code set matches what is on disk.
    for curated in committed_scenarios() {
        let path = dir.join(format!("{}.scn", curated.name));
        let on_disk = Scenario::load(&path)
            .unwrap_or_else(|e| panic!("curated scenario missing on disk: {e}"));
        assert_eq!(
            on_disk, curated,
            "{} drifted from the curated set",
            curated.name
        );
    }
}
