//! Equivalence regression tests for the trace-engine hot-path overhaul.
//!
//! The engine's translation path (two-level page index + one-entry TLB),
//! counter storage (fixed per-tier arrays) and streaming driver (bulk counter
//! accumulation) are all performance rewrites of straightforward code. These
//! tests pin the invariant that made those rewrites safe: the *simulation
//! results are identical* — same [`PerfCounters`], same per-tier traffic,
//! same [`ServiceLevel`] sequence — across the scalar path, the streaming
//! path, and a naive `HashMap`-based page-table mirror, for deterministic
//! `DetRng`-seeded access streams, including the PEBS bulk-observation
//! residual carry-over.

use hmem_repro::machine::{
    AccessPattern, AccessStream, MachineConfig, MemoryAccess, MemoryMode, PageTable, PerfCounters,
    ServiceLevel, TraceEngine,
};
use hmem_repro::pebs::{PebsEvent, PebsSampler, ProcessorFamily};
use hmsim_common::{Address, AddressRange, ByteSize, DetRng, Nanos, Page, TierId};
use std::collections::HashMap;

/// A deterministic access stream covering every generator pattern: one
/// sequential, one strided, one random and one hot-spot segment over a
/// working set that spans both tiers and far exceeds the caches.
fn mixed_stream(seed: u64, len: usize) -> Vec<MemoryAccess> {
    let ws = AddressRange::new(Address(0x4000_0000), ByteSize::from_mib(8));
    let rng = DetRng::new(seed);
    let segments: [AccessStream; 4] = [
        AccessStream::new(ws, AccessPattern::Sequential, 8, 0.25, rng.derive("seq")),
        AccessStream::new(
            ws,
            AccessPattern::Strided { stride: 192 },
            8,
            0.1,
            rng.derive("str"),
        ),
        AccessStream::new(ws, AccessPattern::Random, 8, 0.4, rng.derive("rnd")),
        AccessStream::new(
            ws,
            AccessPattern::HotSpot { hot_fraction: 0.1 },
            8,
            0.0,
            rng.derive("hot"),
        ),
    ];
    let per_segment = len / segments.len();
    segments
        .into_iter()
        .flat_map(|s| s.take(per_segment))
        .collect()
}

/// The placement both the optimized page table and the naive mirror encode:
/// interleaved MCDRAM/DDR stripes plus an explicit unmapping, so translation
/// exercises mapped, remapped and default-tier pages.
fn placements() -> (PageTable, HashMap<Page, TierId>) {
    let mut pt = PageTable::new(TierId::DDR);
    let mut mirror: HashMap<Page, TierId> = HashMap::new();
    let base = Address(0x4000_0000);
    // 8 MiB working set in 1 MiB stripes, alternating tiers.
    for stripe in 0..8u64 {
        let range = AddressRange::new(base.offset(stripe * (1 << 20)), ByteSize::from_mib(1));
        let tier = if stripe % 2 == 0 {
            TierId::MCDRAM
        } else {
            TierId::DDR
        };
        pt.map_range(range, tier);
        for page in range.pages() {
            mirror.insert(page, tier);
        }
    }
    // Remap one stripe and unmap another: the page index must track both.
    let remap = AddressRange::new(base.offset(2 << 20), ByteSize::from_mib(1));
    pt.map_range(remap, TierId::DDR);
    for page in remap.pages() {
        mirror.insert(page, TierId::DDR);
    }
    let unmap = AddressRange::new(base.offset(4 << 20), ByteSize::from_mib(1));
    pt.unmap_range(unmap);
    for page in unmap.pages() {
        mirror.remove(&page);
    }
    (pt, mirror)
}

fn scalar_run(
    config: &MachineConfig,
    accesses: &[MemoryAccess],
    pt: &PageTable,
) -> (Vec<ServiceLevel>, PerfCounters, Vec<(TierId, u64)>, Nanos) {
    let mut engine = TraceEngine::new(config);
    let levels: Vec<ServiceLevel> = accesses.iter().map(|a| engine.access(a, pt)).collect();
    let stats = engine.stats();
    (
        levels,
        stats.counters,
        stats.tier_traffic.iter().collect(),
        stats.time,
    )
}

#[test]
fn page_index_agrees_with_naive_hashmap_mirror() {
    let (pt, mirror) = placements();
    let accesses = mixed_stream(0xE0_01, 40_000);
    for a in &accesses {
        let expected = mirror
            .get(&a.address.page())
            .copied()
            .unwrap_or(TierId::DDR);
        assert_eq!(
            pt.tier_of(a.address),
            expected,
            "translation diverged for {:?}",
            a.address
        );
    }
    // Footprint accounting agrees with the mirror's tally.
    for tier in [TierId::DDR, TierId::MCDRAM] {
        let mirror_bytes = mirror.values().filter(|t| **t == tier).count() as u64 * 4096;
        assert_eq!(
            pt.mapped_bytes(tier).bytes(),
            mirror_bytes,
            "footprint for {tier}"
        );
    }
    assert_eq!(pt.mapped_pages(), mirror.len());
}

#[test]
fn scalar_and_streaming_paths_produce_identical_results() {
    let config = MachineConfig::tiny_test();
    let (pt, _) = placements();
    let accesses = mixed_stream(0xE0_02, 60_000);

    let (levels, counters, traffic, time) = scalar_run(&config, &accesses, &pt);

    // Streaming path over the same accesses.
    let mut streaming = TraceEngine::new(&config);
    let misses = streaming.run_stream(accesses.iter().copied(), &pt);

    assert_eq!(
        streaming.stats().counters,
        counters,
        "PerfCounters diverged"
    );
    assert_eq!(
        streaming.stats().tier_traffic.iter().collect::<Vec<_>>(),
        traffic,
        "tier traffic diverged"
    );
    assert_eq!(misses, counters.llc_misses);
    // The streaming path multiplies constant charges instead of summing them;
    // the time estimate may differ only in floating-point rounding.
    let dt = (streaming.stats().time.nanos() - time.nanos()).abs();
    assert!(dt <= time.nanos().abs() * 1e-9, "time diverged by {dt} ns");

    // And the slice driver (`run`) matches too.
    let mut sliced = TraceEngine::new(&config);
    sliced.run(&accesses, &pt);
    assert_eq!(sliced.stats().counters, counters);

    // Service levels must contain real memory hits on both tiers for this to
    // be a meaningful equivalence.
    assert!(levels.contains(&ServiceLevel::Memory(TierId::MCDRAM)));
    assert!(levels.contains(&ServiceLevel::Memory(TierId::DDR)));
}

#[test]
fn identically_seeded_runs_are_deterministic() {
    let config = MachineConfig::tiny_test();
    let (pt, _) = placements();
    let a = mixed_stream(0xE0_03, 30_000);
    let b = mixed_stream(0xE0_03, 30_000);
    assert_eq!(a, b, "DetRng-seeded generation must be reproducible");

    let ra = scalar_run(&config, &a, &pt);
    let rb = scalar_run(&config, &b, &pt);
    assert_eq!(ra.0, rb.0, "ServiceLevel sequence diverged");
    assert_eq!(ra.1, rb.1);
    assert_eq!(ra.2, rb.2);
    assert_eq!(ra.3, rb.3);
}

#[test]
fn cache_mode_streaming_matches_scalar() {
    let config = MachineConfig::tiny_test().with_memory_mode(MemoryMode::Cache);
    let pt = PageTable::new(TierId::DDR);
    let accesses = mixed_stream(0xE0_04, 30_000);

    let (levels, counters, traffic, _) = scalar_run(&config, &accesses, &pt);
    let mut streaming = TraceEngine::new(&config);
    streaming.run_stream(accesses.iter().copied(), &pt);
    assert_eq!(streaming.stats().counters, counters);
    assert_eq!(
        streaming.stats().tier_traffic.iter().collect::<Vec<_>>(),
        traffic
    );
    assert!(levels.contains(&ServiceLevel::McdramCache));
}

#[test]
fn mutating_the_page_table_mid_run_keeps_paths_equivalent() {
    // Guards the TLB invalidation: a placement change between (and during)
    // runs must be visible to the scalar and streaming paths alike.
    let config = MachineConfig::tiny_test();
    let (mut pt, _) = placements();
    let accesses = mixed_stream(0xE0_05, 20_000);

    let mut scalar = TraceEngine::new(&config);
    let mut streaming = TraceEngine::new(&config);
    for chunk in accesses.chunks(5_000) {
        for a in chunk {
            scalar.access(a, &pt);
        }
        streaming.run_stream(chunk.iter().copied(), &pt);
        // Flip one stripe's placement between chunks.
        pt.map_range(
            AddressRange::new(Address(0x4000_0000), ByteSize::from_mib(1)),
            TierId::DDR,
        );
    }
    assert_eq!(scalar.stats().counters, streaming.stats().counters);
    assert_eq!(
        scalar.stats().tier_traffic.iter().collect::<Vec<_>>(),
        streaming.stats().tier_traffic.iter().collect::<Vec<_>>()
    );
}

#[test]
fn pebs_bulk_observation_carries_residual_like_scalar_observation() {
    let period = 1_000u64;
    let make = || {
        PebsSampler::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            period,
            DetRng::new(42),
        )
    };

    // Scalar: one observe() per event.
    let mut scalar = make();
    let mut scalar_samples = 0u64;
    let total_events = 12_345u64;
    for i in 0..total_events {
        if scalar
            .observe(Nanos(i as f64), Address(0x1000 + i))
            .is_some()
        {
            scalar_samples += 1;
        }
    }

    // Bulk with awkward chunk sizes: the residual must carry across calls so
    // the emitted sample count matches the scalar path exactly.
    let mut bulk = make();
    let mut bulk_samples = 0u64;
    let mut remaining = total_events;
    let mut chunk = 1u64;
    while remaining > 0 {
        let n = chunk.min(remaining);
        bulk_samples += bulk
            .observe_bulk(Nanos::ZERO, Nanos(1.0), n, |rng| {
                Address(rng.uniform_range(0x1000, 0x2000))
            })
            .len() as u64;
        remaining -= n;
        chunk = (chunk * 7 + 3) % 2_048 + 1;
    }

    assert_eq!(bulk.total_events(), scalar.total_events());
    assert_eq!(bulk.total_samples(), scalar.total_samples());
    assert_eq!(bulk_samples, scalar_samples);

    // A different chunking yields the same counts again.
    let mut bulk2 = make();
    let mut fed = 0u64;
    while fed < total_events {
        let n = 997u64.min(total_events - fed);
        bulk2.observe_bulk(Nanos::ZERO, Nanos(1.0), n, |_| Address(0x1000));
        fed += n;
    }
    assert_eq!(bulk2.total_samples(), scalar.total_samples());
}
