//! Acceptance gates of the online placement runtime.
//!
//! 1. **Equivalence** — with the per-epoch move budget at zero, the online
//!    runtime's hardware counters bitwise-match a static
//!    `TraceEngine::run_stream` pass on *every* registered phased workload:
//!    the epoch loop, the PEBS observer and the controller must be pure
//!    observers until they decide to move something.
//! 2. **Wins where it should** — with migrations enabled the runtime beats
//!    the best static placement (DDR-only or the offline profile → advise →
//!    re-run pipeline, whichever is faster) on the phase-shifting workloads.
//! 3. **Parity where it must** — on stationary workloads the runtime stays
//!    within a few percent of the best static placement instead of paying
//!    for migrations that cannot help.

use hmem_repro::apps::phased_workloads;
use hmem_repro::common::ByteSize;
use hmem_repro::machine::TraceEngine;
use hmem_repro::runtime::harness::{best_static, loaded_machine, provision, run_online};
use hmem_repro::runtime::{OnlineConfig, OnlineRuntime};

#[test]
fn disabled_runtime_counters_bitwise_match_static_engine_on_every_workload() {
    let machine = loaded_machine();
    for workload in phased_workloads(ByteSize::from_kib(32)) {
        let budget = workload.hot_set_size();

        let static_side = provision(&workload, &machine, budget).unwrap();
        let mut engine = TraceEngine::new(&machine);
        let static_misses = engine.run_stream(
            workload.stream(&static_side.ranges),
            static_side.heap.page_table(),
        );

        let mut online_side = provision(&workload, &machine, budget).unwrap();
        let mut rt = OnlineRuntime::new(&machine, budget, OnlineConfig::disabled());
        let online_misses = rt.run(workload.stream(&online_side.ranges), &mut online_side.heap);

        assert_eq!(online_misses, static_misses, "{}", workload.name);
        assert_eq!(
            rt.engine_stats().counters,
            engine.stats().counters,
            "{}: counters diverged",
            workload.name
        );
        assert_eq!(
            rt.engine_stats().tier_traffic,
            engine.stats().tier_traffic,
            "{}: tier traffic diverged",
            workload.name
        );
        assert_eq!(rt.stats().migrations, 0, "{}", workload.name);
        // Placement untouched: every object still lives where it started.
        for range in &online_side.ranges {
            assert_eq!(
                online_side.heap.page_table().tier_of(range.start),
                static_side.heap.page_table().tier_of(range.start),
                "{}: placement mutated",
                workload.name
            );
        }
    }
}

#[test]
fn online_beats_best_static_on_phase_shifting_workloads() {
    let machine = loaded_machine();
    let cfg = OnlineConfig::default().with_epoch_accesses(8_192);
    let mut wins = 0;
    for workload in phased_workloads(ByteSize::from_kib(64)) {
        if workload.stationary {
            continue;
        }
        let budget = workload.hot_set_size();
        let stat = best_static(&workload, &machine, budget, &cfg).unwrap();
        let online = run_online(&workload, &machine, budget, cfg.clone()).unwrap();
        assert!(
            online.stats.migrations > 0,
            "{}: the runtime should chase the moving hot set",
            workload.name
        );
        if online.time < stat.time {
            wins += 1;
        }
    }
    assert!(
        wins >= 1,
        "the online runtime must beat the best static placement on at \
         least one phase-shifting workload"
    );
}

#[test]
fn online_stays_near_static_on_stationary_workloads() {
    let machine = loaded_machine();
    let cfg = OnlineConfig::default();
    for workload in phased_workloads(ByteSize::from_kib(64)) {
        if !workload.stationary {
            continue;
        }
        let budget = workload.hot_set_size();
        let stat = best_static(&workload, &machine, budget, &cfg).unwrap();
        let online = run_online(&workload, &machine, budget, cfg.clone()).unwrap();
        let overhead = online.time.nanos() / stat.time.nanos() - 1.0;
        // The debug-scale arrays here make the one-off costs proportionally
        // larger than at bench scale (where the 2% criterion is enforced);
        // 5% bounds the same behaviour without a release-size run.
        assert!(
            overhead < 0.05,
            "{}: online {} vs static {} ({}) — {:.2}% overhead",
            workload.name,
            online.time,
            stat.time,
            stat.label,
            overhead * 100.0
        );
        // No thrash: a stationary run needs at most one fill of the budget
        // plus a handful of corrective moves.
        assert!(
            online.stats.migrations <= workload.objects().len() as u64,
            "{}: {} migrations on a stationary workload",
            workload.name,
            online.stats.migrations
        );
    }
}
