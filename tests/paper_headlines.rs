//! Integration tests asserting the paper's headline qualitative results
//! (§IV-C/D) hold for the reproduced evaluation:
//!
//! * the framework is the best approach for HPCG, miniFE and GTC-P;
//! * cache mode is the best approach for LULESH and MAXW-DGTD;
//! * `numactl -p 1` stays (at least marginally) ahead of the framework and of
//!   cache mode for BT, CGPOP and SNAP;
//! * `autohbw` never wins, and for LULESH it is the worst MCDRAM-using
//!   approach;
//! * performance grows (weakly) with the MCDRAM budget for the budget-hungry
//!   applications, while CGPOP is already saturated at 32 MiB/rank.
//!
//! The runs use a reduced iteration count; the figures of merit are
//! iteration-rate based, so the orderings are unchanged.

use hmem_advisor::SelectionStrategy;
use hmem_core::experiment::{run_app_experiment, AppExperiment, ExperimentConfig};
use hmsim_apps::app_by_name;
use hmsim_common::ByteSize;

fn config() -> ExperimentConfig {
    ExperimentConfig {
        budgets: vec![
            ByteSize::from_mib(32),
            ByteSize::from_mib(64),
            ByteSize::from_mib(128),
            ByteSize::from_mib(256),
        ],
        single_process_budgets: vec![
            ByteSize::from_mib(256),
            ByteSize::from_gib(2),
            ByteSize::from_gib(16),
        ],
        // Two strategies keep the grid affordable in debug builds while still
        // covering the miss-ranked and density-ranked behaviours the
        // assertions below rely on.
        strategies: vec![
            SelectionStrategy::Misses {
                threshold_percent: 0.0,
            },
            SelectionStrategy::Density,
        ],
        iterations_override: Some(8),
        seed: 0xF1607,
    }
}

fn run(app: &str) -> AppExperiment {
    let spec = app_by_name(app).expect("application model exists");
    run_app_experiment(&spec, &config()).expect("experiment grid runs")
}

fn speedup(exp: &AppExperiment, label: &str) -> f64 {
    exp.baseline(label).expect(label).fom / exp.ddr_fom
}

#[test]
fn framework_wins_hpcg_and_beats_every_hardware_and_software_baseline() {
    let exp = run("HPCG");
    let winner = exp.winner().unwrap();
    assert!(winner.is_framework, "HPCG winner was {}", winner.label);
    // The paper reports +78.9% over DDR; the reproduction must show a
    // substantial (>40%) improvement and beat cache mode clearly.
    assert!(
        exp.framework_speedup() > 1.4,
        "speedup {}",
        exp.framework_speedup()
    );
    assert!(exp.framework_speedup() > speedup(&exp, "Cache") * 1.1);
    assert!(
        speedup(&exp, "Cache") > 1.15,
        "cache mode must still help HPCG"
    );
}

#[test]
fn framework_wins_minife_with_a_small_hot_set() {
    let exp = run("miniFE");
    let winner = exp.winner().unwrap();
    assert!(winner.is_framework, "miniFE winner was {}", winner.label);
    assert!(exp.framework_speedup() > 1.5);
    // The hot set fits from 128 MiB on: the best framework configuration must
    // not need more than ~150 MiB of MCDRAM.
    let best = exp.best_framework().unwrap();
    assert!(
        best.mcdram_hwm <= ByteSize::from_mib(150),
        "HWM {}",
        best.mcdram_hwm
    );
}

#[test]
fn framework_wins_gtcp_by_promoting_the_grid_arrays() {
    let exp = run("GTC-P");
    let winner = exp.winner().unwrap();
    assert!(winner.is_framework, "GTC-P winner was {}", winner.label);
    assert!(exp.framework_speedup() > 1.4);
    assert!(
        speedup(&exp, "Cache") < exp.framework_speedup(),
        "cache mode cannot follow the gather-heavy grid accesses"
    );
}

#[test]
fn cache_mode_wins_lulesh_and_autohbw_is_the_worst_mcdram_approach() {
    let exp = run("Lulesh");
    let winner = exp.winner().unwrap();
    assert_eq!(winner.label, "Cache", "Lulesh winner was {}", winner.label);
    assert!(speedup(&exp, "Cache") > 1.25);
    // The framework stays useful but behind cache mode (the paper measures a
    // 12.7% gap at the best framework configuration).
    assert!(exp.framework_speedup() > 1.1);
    assert!(exp.framework_speedup() < speedup(&exp, "Cache"));
    // autohbw promotes non-critical churn through memkind and ends up the
    // worst of all MCDRAM-using approaches.
    let autohbw = speedup(&exp, "autohbw/1m");
    assert!(autohbw < exp.framework_speedup());
    assert!(autohbw < speedup(&exp, "MCDRAM*"));
    assert!(autohbw < speedup(&exp, "Cache"));
}

#[test]
fn cache_mode_wins_maxw_dgtd() {
    let exp = run("MAXW-DGTD");
    let winner = exp.winner().unwrap();
    assert_eq!(
        winner.label, "Cache",
        "MAXW-DGTD winner was {}",
        winner.label
    );
    assert!(speedup(&exp, "Cache") >= exp.framework_speedup());
    assert!(
        exp.framework_speedup() > 1.2,
        "the framework still helps MAXW-DGTD"
    );
}

#[test]
fn numactl_stays_ahead_for_bt_cgpop_and_snap() {
    for app in ["BT", "CGPOP", "SNAP"] {
        let exp = run(app);
        let numactl = speedup(&exp, "MCDRAM*");
        let cache = speedup(&exp, "Cache");
        let framework = exp.framework_speedup();
        // "numactl -p 1 outperforms marginally the cache and framework
        // approaches on BT, CGPOP and SNAP" — allow a 1% tolerance for the
        // near-ties the paper itself calls marginal.
        assert!(
            numactl >= framework * 0.99,
            "{app}: numactl {numactl} vs framework {framework}"
        );
        assert!(
            numactl >= cache * 0.99,
            "{app}: numactl {numactl} vs cache {cache}"
        );
        assert!(numactl > 1.2, "{app}: MCDRAM must clearly help ({numactl})");
    }
}

#[test]
fn autohbw_never_wins_anywhere() {
    for app in [
        "HPCG",
        "Lulesh",
        "BT",
        "miniFE",
        "CGPOP",
        "SNAP",
        "MAXW-DGTD",
        "GTC-P",
    ] {
        let exp = run(app);
        let winner = exp.winner().unwrap();
        assert_ne!(
            winner.label, "autohbw/1m",
            "{app}: autohbw must never be the best approach"
        );
    }
}

#[test]
fn budgets_help_hpcg_but_cgpop_saturates_at_32_mib() {
    // HPCG keeps improving as the budget grows (paper: sweet spot at the
    // largest budget); CGPOP's converted hot set already fits at 32 MiB, so
    // extra budget changes nothing.
    let hpcg = run("HPCG");
    let frameworks: Vec<&_> = hpcg.results.iter().filter(|r| r.is_framework).collect();
    let fom_at = |mib: f64| -> f64 {
        frameworks
            .iter()
            .filter(|r| (r.charged_mcdram_mib - mib).abs() < 1.0)
            .map(|r| r.fom)
            .fold(0.0, f64::max)
    };
    assert!(
        fom_at(256.0) > fom_at(64.0),
        "HPCG must benefit from more MCDRAM"
    );
    assert!(fom_at(256.0) > fom_at(32.0) * 1.2);

    let cgpop = run("CGPOP");
    let cg_frameworks: Vec<&_> = cgpop.results.iter().filter(|r| r.is_framework).collect();
    let best_small = cg_frameworks
        .iter()
        .filter(|r| r.charged_mcdram_mib <= 32.0)
        .map(|r| r.fom)
        .fold(0.0, f64::max);
    let best_large = cg_frameworks
        .iter()
        .filter(|r| r.charged_mcdram_mib >= 256.0)
        .map(|r| r.fom)
        .fold(0.0, f64::max);
    assert!(
        (best_large - best_small).abs() / best_small < 0.02,
        "CGPOP should be flat across budgets: 32 MiB {best_small} vs 256 MiB {best_large}"
    );
}

#[test]
fn mcdram_usage_never_exceeds_the_budget() {
    for app in ["HPCG", "Lulesh", "miniFE", "SNAP"] {
        let exp = run(app);
        for r in exp.results.iter().filter(|r| r.is_framework) {
            assert!(
                r.mcdram_hwm.mib() <= r.charged_mcdram_mib + 1.0,
                "{app} {}: HWM {} exceeds budget {}",
                r.label,
                r.mcdram_hwm.mib(),
                r.charged_mcdram_mib
            );
        }
    }
}

#[test]
fn snap_density_strategy_uses_only_the_small_chunks() {
    // Paper §IV-C: for SNAP "the density approach allocates far less memory
    // (64 Mbytes) in the 128 and 256 Mbyte cases" because the small chunks
    // are promoted first and the single 256 MiB buffer no longer fits.
    let exp = run("SNAP");
    let density_256 = exp
        .results
        .iter()
        .find(|r| r.label.starts_with("Density") && (r.charged_mcdram_mib - 256.0).abs() < 1.0)
        .expect("density/256 present");
    assert!(
        density_256.mcdram_hwm <= ByteSize::from_mib(80),
        "density at 256 MiB used {}",
        density_256.mcdram_hwm
    );
    let misses_256 = exp
        .results
        .iter()
        .find(|r| r.label.starts_with("Misses(0%)") && (r.charged_mcdram_mib - 256.0).abs() < 1.0)
        .expect("misses/256 present");
    assert!(
        misses_256.mcdram_hwm > ByteSize::from_mib(200),
        "misses(0%) at 256 MiB used {}",
        misses_256.mcdram_hwm
    );
}
