//! End-to-end equivalence of the out-of-core trace path: per-rank traces
//! produced by the profiler, written to the chunked binary format, k-way
//! merged into one logical multi-rank stream, and consumed by the streaming
//! folding / object-stats passes — all of which must match the in-memory
//! path bitwise.

use hmsim_analysis::{analyze_stream, FoldAccumulator, FoldedTimeline, ObjectStatsBuilder};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, AddressRange, ByteSize, Nanos, ObjectId, TierId};
use hmsim_heap::{DataObject, ObjectKind};
use hmsim_profiler::{Profiler, ProfilerConfig};
use hmsim_trace::{
    merge_traces, BinaryWriter, MergedStream, TraceEvent, TraceFile, TraceMetadata, TraceReader,
};

const RANKS: u32 = 4;

fn rank_object(rank: u32, id: u32, mib: u64) -> DataObject {
    DataObject {
        id: ObjectId(id),
        name: format!("grid_r{rank}_{id}"),
        kind: ObjectKind::Dynamic,
        site: Some(SiteKey::from_text(format!(
            "app!alloc_grid{id}+0x{rank:x}0"
        ))),
        range: AddressRange::new(
            Address(0x10_0000_0000 | (u64::from(rank) << 33) | (u64::from(id) << 28)),
            ByteSize::from_mib(mib),
        ),
        tier: TierId::DDR,
        allocated_at: Nanos::ZERO,
        freed_at: None,
    }
}

/// A profiled pseudo-run for one rank: repeated iterations with two objects
/// of different heat, slightly different per-rank timing so the merge
/// genuinely interleaves.
fn rank_trace(rank: u32) -> TraceFile {
    let mut p = Profiler::new(
        TraceMetadata {
            application: "merged-app".to_string(),
            ranks: RANKS,
            rank,
            ..Default::default()
        },
        ProfilerConfig::dense(997),
    );
    // Object ids are globally unique across ranks (like a real MPI run's
    // per-process heaps mapped at distinct addresses).
    let hot = rank_object(rank, rank * 2, 64);
    let cold = rank_object(rank, rank * 2 + 1, 16);
    p.record_alloc(&hot, Nanos::ZERO);
    p.record_alloc(&cold, Nanos::ZERO);
    let iter_ms = 10.0 + rank as f64 * 0.7;
    for i in 0..6 {
        // Boundaries computed from the same expression so consecutive
        // iterations share bit-identical timestamps (`i*iter_ms + iter_ms`
        // and `(i+1)*iter_ms` differ by an ULP for some ranks, which would
        // make a later begin sort before the previous end).
        let start = Nanos::from_millis(i as f64 * iter_ms);
        let end = Nanos::from_millis((i + 1) as f64 * iter_ms);
        let kernel_at = start + Nanos::from_millis(iter_ms * 0.6);
        p.phase_begin("iteration", start);
        p.record_interval(
            start,
            Nanos::from_millis(iter_ms * 0.6),
            4_000_000,
            &[(&hot, 30_000), (&cold, 3_000)],
        );
        p.phase_begin("kernel", kernel_at);
        p.record_interval(kernel_at, end - kernel_at, 500_000, &[(&hot, 20_000)]);
        p.phase_end("kernel", end);
        p.phase_end("iteration", end);
    }
    p.finish()
}

fn binary_files() -> Vec<(u32, Vec<u8>)> {
    (0..RANKS)
        .map(|rank| {
            let trace = rank_trace(rank);
            let mut w = BinaryWriter::new(Vec::new(), &trace.metadata).unwrap();
            for e in trace.events() {
                w.push(e).unwrap();
            }
            (rank, w.finish().unwrap())
        })
        .collect()
}

fn merged_reader(files: &[(u32, Vec<u8>)]) -> MergedStream<TraceReader<&[u8]>> {
    let inputs: Vec<(u32, _)> = files
        .iter()
        .map(|(rank, bytes)| (*rank, TraceReader::new(bytes.as_slice()).unwrap()))
        .collect();
    MergedStream::new(inputs).unwrap()
}

fn merged_stream(files: &[(u32, Vec<u8>)]) -> impl Iterator<Item = (u32, TraceEvent)> + '_ {
    merged_reader(files)
        .map(|e| e.unwrap())
        .map(|e| (e.rank, e.event))
}

#[test]
fn streamed_folding_matches_in_memory_folding_on_merged_ranks() {
    let traces: Vec<TraceFile> = (0..RANKS).map(rank_trace).collect();
    let in_memory_merged = merge_traces(&traces);
    assert!(
        in_memory_merged
            .windows(2)
            .all(|w| w[0].event.time() <= w[1].event.time()),
        "merge must be time ordered"
    );

    let files = binary_files();
    let streamed_fold =
        FoldedTimeline::fold_ranked_stream(merged_reader(&files), "iteration", 16).unwrap();
    let in_memory_fold = FoldedTimeline::fold_ranked_stream(
        in_memory_merged.iter().cloned().map(Ok),
        "iteration",
        16,
    )
    .unwrap();
    assert_eq!(streamed_fold, in_memory_fold, "folding paths diverged");
    // Rank-aware instance tracking pairs each rank's begin/end markers
    // independently: every one of the 4 x 6 iterations is folded.
    assert_eq!(streamed_fold.instances, RANKS as usize * 6);
    assert!(streamed_fold.bins.iter().any(|b| b.mips > 0.0));
}

#[test]
fn streamed_object_stats_match_in_memory_on_merged_ranks() {
    let traces: Vec<TraceFile> = (0..RANKS).map(rank_trace).collect();
    let in_memory_merged = merge_traces(&traces);
    let files = binary_files();

    let streamed = analyze_stream("merged-app", merged_stream(&files).map(|(_, e)| e));
    let in_memory = analyze_stream("merged-app", in_memory_merged.iter().map(|e| &e.event));
    assert_eq!(streamed, in_memory, "object-stats paths diverged");

    // All 4 ranks' objects are present (2 sites per rank) and the hot site
    // out-misses the cold one within every rank.
    assert_eq!(streamed.objects.len() as u32, RANKS * 2);
    for rank in 0..RANKS {
        let hot = streamed
            .by_name(&format!("grid_r{rank}_{}", rank * 2))
            .expect("hot object reported");
        let cold = streamed
            .by_name(&format!("grid_r{rank}_{}", rank * 2 + 1))
            .expect("cold object reported");
        assert!(hot.llc_misses > cold.llc_misses);
    }
    assert!(streamed.total_misses > 0);
}

/// The folding pass visits each merged event exactly once — O(events), not
/// O(instances x events) as before the streaming rewrite.
#[test]
fn merged_fold_is_a_single_pass_over_events() {
    let files = binary_files();
    let mut fold = FoldAccumulator::new("iteration", 16);
    let mut stats = ObjectStatsBuilder::new("merged-app");
    let mut total = 0u64;
    for (rank, event) in merged_stream(&files) {
        fold.push_ranked(rank, &event);
        stats.push(&event);
        total += 1;
    }
    assert_eq!(fold.events_visited(), total);
    assert_eq!(stats.events_seen(), total);
    let timeline = fold.finish();
    assert_eq!(timeline.instances, RANKS as usize * 6);
    // And the counter is the whole story: one visit per event despite the
    // trace containing dozens of instances of the folded region.
    let per_rank_events: u64 = (0..RANKS).map(|r| rank_trace(r).len() as u64).sum();
    assert_eq!(total, per_rank_events);
}
