//! Acceptance gates of the rank-sharded simulation path.
//!
//! 1. **R = 1 equivalence** — with a single rank, the sharded path must be
//!    *bitwise* identical to the existing single-rank online runtime under
//!    every arbitration policy: same counters, same tier traffic, same
//!    migrations, same simulated time. The shard loop, the arbiter and the
//!    (for `Global`) merged-heat planner must all collapse to no-ops.
//! 2. **Policies separate where they should** — on the rank-skew workload
//!    (one rank's working set dominates the node) the node-global selection
//!    beats the static per-rank partition, because the partition strands
//!    fast memory on the small ranks while starving the dominant one.

use hmem_repro::apps::{phased_workloads, MultiRankWorkload};
use hmem_repro::common::ByteSize;
use hmem_repro::runtime::harness::{loaded_machine, provision};
use hmem_repro::runtime::{
    run_multirank, ArbiterPolicy, MultiRankConfig, OnlineConfig, OnlineRuntime,
};

fn epoch_cfg() -> OnlineConfig {
    OnlineConfig::default().with_epoch_accesses(8_192)
}

#[test]
fn single_rank_sharded_path_is_bitwise_identical_for_every_policy() {
    let machine = loaded_machine();
    for workload in phased_workloads(ByteSize::from_kib(32)) {
        let budget = workload.hot_set_size();

        // The existing single-rank engine: one OnlineRuntime over the
        // workload's stream.
        let mut single_side = provision(&workload, &machine, budget).unwrap();
        let mut single = OnlineRuntime::new(&machine, budget, epoch_cfg());
        let single_misses = single.run(workload.stream(&single_side.ranges), &mut single_side.heap);

        for policy in ArbiterPolicy::ALL {
            let bundle = MultiRankWorkload::replicated(workload.clone(), 1);
            let cfg = MultiRankConfig::new(policy, budget).with_online(epoch_cfg());
            let out = run_multirank(&bundle, &machine, cfg).unwrap();
            assert_eq!(out.per_rank.len(), 1);
            let shard = &out.per_rank[0];

            assert_eq!(
                shard.llc_misses, single_misses,
                "{}/{policy}: miss counts diverged",
                workload.name
            );
            assert_eq!(
                shard.engine.counters,
                single.engine_stats().counters,
                "{}/{policy}: hardware counters diverged",
                workload.name
            );
            assert_eq!(
                shard.engine.tier_traffic,
                single.engine_stats().tier_traffic,
                "{}/{policy}: tier traffic diverged",
                workload.name
            );
            assert_eq!(
                shard.time.nanos().to_bits(),
                single.total_time().nanos().to_bits(),
                "{}/{policy}: simulated time diverged",
                workload.name
            );
            assert_eq!(
                shard.stats.migrations,
                single.stats().migrations,
                "{}/{policy}: migration counts diverged",
                workload.name
            );
            assert_eq!(
                shard.stats.bytes_migrated,
                single.stats().bytes_migrated,
                "{}/{policy}: migrated bytes diverged",
                workload.name
            );
            assert_eq!(
                shard.stats.epochs,
                single.stats().epochs,
                "{}/{policy}: epoch schedules diverged",
                workload.name
            );
            assert_eq!(out.node_epochs, single.stats().epochs, "{policy}");
            assert_eq!(shard.stats.rejected_moves, 0, "{policy}");
        }
    }
}

#[test]
fn global_arbitration_beats_static_partition_on_rank_skew() {
    let machine = loaded_machine();
    // Rank 0's arrays are 4x larger than everyone else's: its hot set is
    // 192 KiB while ranks 1..3 need 48 KiB each. A 288 KiB node pool is
    // enough for every small rank plus two thirds of the dominant one —
    // but the static partition caps every rank at 72 KiB.
    let workload = MultiRankWorkload::rank_skew_triad(ByteSize::from_kib(16), 4, 4, 30);
    let budget = ByteSize::from_kib(288);
    let run = |policy| {
        run_multirank(
            &workload,
            &machine,
            MultiRankConfig::new(policy, budget).with_online(epoch_cfg()),
        )
        .unwrap()
    };
    let partition = run(ArbiterPolicy::Partition);
    let global = run(ArbiterPolicy::Global);
    let fcfs = run(ArbiterPolicy::Fcfs);

    assert!(
        global.node_time() < partition.node_time(),
        "global {} must beat partition {}",
        global.node_time(),
        partition.node_time()
    );
    // Identical work was simulated whatever the policy.
    for out in [&partition, &global, &fcfs] {
        assert_eq!(out.per_rank.len(), 4);
        assert_eq!(
            out.per_rank.iter().map(|r| r.stats.accesses).sum::<u64>(),
            workload.total_accesses()
        );
        assert!(out.per_rank.iter().all(|r| r.stats.rejected_moves == 0));
    }
    // The dominant rank is the node's critical path under every policy.
    for out in [&partition, &global] {
        let dominant = &out.per_rank[0];
        assert_eq!(out.node_time(), dominant.time);
    }
    // FCFS serves rank 0 first, so the dominant rank gets at least as much
    // fast residency as under the static partition.
    let fast_kib = |out: &hmem_repro::runtime::MultiRankOutcome| {
        out.per_rank[0].stats.bytes_migrated.bytes() / 1024
    };
    assert!(fast_kib(&fcfs) >= fast_kib(&partition));
}
