//! Cross-crate integration tests exercising the framework's on-disk
//! artefacts end to end: the Extrae-style trace text format, the Paramedir
//! CSV report, the advisor's memory-specification file and its
//! human-readable placement report — i.e. the hand-off files between the
//! four stages of Figure 2, round-tripped through their serialised forms.

use auto_hbwmalloc::{AllocationRouter, AutoHbwMalloc, PlacementApproach};
use hmem_advisor::{Advisor, MemorySpec, PlacementReport, SelectionStrategy};
use hmem_core::simrun::{AppRun, RunConfig};
use hmsim_analysis::{analyze_trace, csv};
use hmsim_apps::app_by_name;
use hmsim_common::ByteSize;
use hmsim_profiler::ProfilerConfig;
use hmsim_trace::format as trace_format;

#[test]
fn the_four_stage_hand_off_survives_serialisation_between_every_stage() {
    let spec = app_by_name("miniFE").unwrap();
    let budget = ByteSize::from_mib(128);

    // Stage 1: profile, then write the trace to its text form and read it
    // back (what Extrae's trace file does).
    let profiled = AppRun::new(
        &spec,
        RunConfig::flat(budget)
            .with_iterations(6)
            .with_profiling(ProfilerConfig::default()),
    )
    .execute(PlacementApproach::DdrOnly.router().unwrap())
    .unwrap();
    let trace = profiled.trace.unwrap();
    let trace_text = trace_format::write_text(&trace);
    let trace_back = trace_format::read_text(&trace_text).unwrap();
    assert_eq!(trace_back.len(), trace.len());
    assert_eq!(trace_back.metadata.application, "miniFE");

    // Stage 2: analyse the re-read trace and round-trip the CSV report
    // (Paramedir's output file).
    let report = analyze_trace(&trace_back);
    let report_csv = csv::write_csv(&report);
    let report_back = csv::read_csv(&report_csv).unwrap();
    assert_eq!(report_back, report);
    assert!(report_back.objects.iter().any(|o| o.name == "A.coefs"));

    // Stage 3: the memory specification is itself a config file; parse it,
    // advise, and round-trip the placement report text.
    let memspec_text = MemorySpec::knl_budget(budget).to_config_text();
    let memspec = MemorySpec::parse(&memspec_text).unwrap();
    let placement = Advisor::new()
        .advise(
            &report_back,
            &memspec,
            SelectionStrategy::Misses {
                threshold_percent: 0.0,
            },
        )
        .unwrap();
    let placement_text = placement.to_text();
    let placement_back = PlacementReport::parse(&placement_text).unwrap();
    assert_eq!(
        placement_back.automatic_entries().count(),
        placement.automatic_entries().count()
    );
    assert_eq!(placement_back.lb_size, placement.lb_size);
    assert_eq!(placement_back.ub_size, placement.ub_size);

    // Stage 4: feed the *parsed-back* report to auto-hbwmalloc and verify the
    // re-run still promotes the hot objects and beats the DDR reference.
    let (unwinder, translator) = AppRun::callstack_machinery(&spec, 0xD15C);
    let library = AutoHbwMalloc::new(placement_back, unwinder, translator).with_budget(budget);
    let rerun = AppRun::new(&spec, RunConfig::flat(budget).with_iterations(6))
        .execute(AllocationRouter::framework(library))
        .unwrap();
    let ddr = AppRun::new(&spec, RunConfig::flat(budget).with_iterations(6))
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
    assert!(rerun.mcdram_hwm > ByteSize::ZERO);
    assert!(
        rerun.fom > ddr.fom * 1.3,
        "re-run {} vs DDR {}",
        rerun.fom,
        ddr.fom
    );
}

#[test]
fn profiling_is_cheap_and_sample_counts_match_table_one_scale() {
    // Monitoring overhead stays in the sub-percent to low-percent range and
    // the number of samples per process stays in the thousands — the paper's
    // central argument for sampling over instruction-level instrumentation.
    for app in ["HPCG", "SNAP", "MAXW-DGTD"] {
        let spec = app_by_name(app).unwrap();
        let run = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256))
                .with_iterations(6)
                .with_profiling(ProfilerConfig::default()),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        let trace = run.trace.unwrap();
        assert!(
            run.monitoring_overhead < 0.06,
            "{app}: overhead {}",
            run.monitoring_overhead
        );
        assert!(
            trace.sample_count() > 10 && trace.sample_count() < 100_000,
            "{app}: {} samples",
            trace.sample_count()
        );
    }
}

#[test]
fn advisor_reports_are_actionable_for_static_heavy_codes() {
    // CGPOP keeps a large share of its traffic on static data; the advisor
    // must list those objects as manual suggestions rather than silently
    // ignoring them (paper: the report is human-readable precisely so that
    // developers can act on static variables).
    let spec = app_by_name("CGPOP").unwrap();
    let profiled = AppRun::new(
        &spec,
        RunConfig::flat(ByteSize::from_mib(256))
            .with_iterations(6)
            .with_profiling(ProfilerConfig::default()),
    )
    .execute(PlacementApproach::DdrOnly.router().unwrap())
    .unwrap();
    let report = analyze_trace(profiled.trace.as_ref().unwrap());
    let placement = Advisor::new()
        .advise(
            &report,
            &MemorySpec::knl_budget(ByteSize::from_mib(64)),
            SelectionStrategy::Density,
        )
        .unwrap();
    assert!(
        placement
            .manual_entries()
            .any(|e| e.name == "grid_constants_common"),
        "hot static variable must appear as a manual suggestion"
    );
    assert!(placement.automatic_entries().count() >= 2);
}
