//! The `Simulation` facade is a *description* of a run, not a different
//! runner: for every approach × workload it must reproduce the pre-redesign
//! hand-wired call path — `AppRun::execute(RouterFactory::x())`, the bare
//! `OnlineRuntime`, `run_multirank` — bit for bit (FOM, counters, times,
//! migrations, footprint).
//!
//! The hand-wired side deliberately goes through the deprecated
//! `RouterFactory` shim so this test exercises the exact legacy spelling the
//! migration table in the README documents.

#![allow(deprecated)]

use auto_hbwmalloc::{PlacementApproach, RouterFactory};
use hmem_advisor::SelectionStrategy;
use hmem_core::pipeline::FrameworkPipeline;
use hmem_core::simrun::{AppRun, RunConfig, RunResult};
use hmem_core::{MultiRankSelector, Outcome, Scenario, Simulation};
use hmsim_apps::{app_by_name, MultiRankWorkload};
use hmsim_common::{ByteSize, HmResult, Nanos};
use hmsim_runtime::harness::{loaded_machine, run_online};
use hmsim_runtime::{run_multirank, ArbiterPolicy, MultiRankConfig, OnlineConfig};

const BUDGET: ByteSize = ByteSize::from_mib(256);
const ITERS: u32 = 6;

/// Compare the facade's per-rank result against a hand-wired run, bit for
/// bit on every numeric field.
fn assert_bitwise(app: &str, label: &str, old: &RunResult, new: &RunResult) {
    let ctx = |field: &str| format!("{app}/{label}: {field} diverged");
    assert_eq!(old.fom.to_bits(), new.fom.to_bits(), "{}", ctx("fom"));
    assert_eq!(old.counters, new.counters, "{}", ctx("counters"));
    assert_eq!(
        old.total_time.nanos().to_bits(),
        new.total_time.nanos().to_bits(),
        "{}",
        ctx("total_time")
    );
    assert_eq!(
        old.loop_time.nanos().to_bits(),
        new.loop_time.nanos().to_bits(),
        "{}",
        ctx("loop_time")
    );
    assert_eq!(old.mcdram_hwm, new.mcdram_hwm, "{}", ctx("mcdram_hwm"));
    assert_eq!(old.migrations, new.migrations, "{}", ctx("migrations"));
    assert_eq!(
        old.migration_time.nanos().to_bits(),
        new.migration_time.nanos().to_bits(),
        "{}",
        ctx("migration_time")
    );
    assert_eq!(
        old.migrations_rejected,
        new.migrations_rejected,
        "{}",
        ctx("migrations_rejected")
    );
    assert_eq!(
        old.allocator_time.nanos().to_bits(),
        new.allocator_time.nanos().to_bits(),
        "{}",
        ctx("allocator_time")
    );
    assert_eq!(old.approach, new.approach, "{}", ctx("approach"));
}

fn facade(scenario: &Scenario) -> Outcome {
    Simulation::new()
        .run(scenario)
        .unwrap_or_else(|e| panic!("{}: {e}", scenario.name))
}

#[test]
fn facade_matches_hand_wired_apprun_for_every_static_and_online_approach() {
    // The five self-contained approaches × three workloads of the
    // acceptance criteria. The hand-wired side is exactly what PR-4-era
    // callers wrote.
    type Legacy = fn() -> HmResult<auto_hbwmalloc::AllocationRouter>;
    let approaches: [(PlacementApproach, Legacy); 5] = [
        (PlacementApproach::DdrOnly, RouterFactory::ddr),
        (PlacementApproach::NumactlPreferred, RouterFactory::numactl),
        (PlacementApproach::autohbw_1m(), RouterFactory::autohbw_1m),
        (PlacementApproach::CacheMode, RouterFactory::cache_mode),
        (PlacementApproach::Online, RouterFactory::online),
    ];
    for app in ["miniFE", "HPCG", "SNAP"] {
        let spec = app_by_name(app).unwrap();
        for (approach, legacy) in &approaches {
            let old_config = if *approach == PlacementApproach::CacheMode {
                RunConfig::cache_mode().with_iterations(ITERS)
            } else {
                RunConfig::flat(BUDGET).with_iterations(ITERS)
            };
            let old = AppRun::new(&spec, old_config)
                .execute(legacy().unwrap())
                .unwrap();

            let budget = if *approach == PlacementApproach::CacheMode {
                ByteSize::ZERO
            } else {
                BUDGET
            };
            let scenario = Scenario::app(app, approach.clone(), budget).with_iterations(ITERS);
            let new = facade(&scenario);

            assert_eq!(new.per_rank.len(), 1);
            assert_bitwise(app, &approach.to_string(), &old, new.result());
            // The node aggregates mirror the single rank.
            assert_eq!(new.node.fom.to_bits(), old.fom.to_bits());
            assert_eq!(new.node.llc_misses, old.counters.llc_misses);
            assert_eq!(new.node.migrations, old.migrations);
        }
    }
}

#[test]
fn facade_matches_the_hand_wired_framework_pipeline() {
    for app in ["miniFE", "HPCG", "SNAP"] {
        let spec = app_by_name(app).unwrap();
        let strategy = SelectionStrategy::Misses {
            threshold_percent: 0.0,
        };
        let old = FrameworkPipeline::new(ByteSize::from_mib(128), strategy)
            .with_iterations(ITERS)
            .run(&spec)
            .unwrap();

        let scenario = Scenario::app(
            app,
            PlacementApproach::framework(strategy),
            ByteSize::from_mib(128),
        )
        .with_iterations(ITERS)
        .with_seed(0xBA5E); // the pipeline's historical default seed
        let new = facade(&scenario);

        assert_bitwise(app, "Framework", &old.result, new.result());
        let fw = new.framework.as_ref().expect("pipeline artefacts");
        assert_eq!(fw.placement.entries, old.placement.entries);
        assert_eq!(fw.object_report, old.object_report);
    }
}

#[test]
fn facade_matches_the_hand_wired_online_runtime_on_trace_workloads() {
    let machine = loaded_machine();
    let array = ByteSize::from_kib(16);
    let cfg = OnlineConfig::default().with_epoch_accesses(8_192);
    for name in ["rotating-triad", "sweeping-stencil", "steady-triad"] {
        let workload = hmsim_apps::phased_workload_by_name(name, array).unwrap();
        let budget = workload.hot_set_size();
        let old = run_online(&workload, &machine, budget, cfg.clone()).unwrap();

        let scenario = Scenario::phased(name, array, budget).with_online(cfg.clone());
        let new = facade(&scenario);

        assert_eq!(
            old.time.nanos().to_bits(),
            new.result().total_time.nanos().to_bits(),
            "{name}: time diverged"
        );
        assert_eq!(old.llc_misses, new.result().counters.llc_misses, "{name}");
        assert_eq!(old.stats.migrations, new.result().migrations, "{name}");
        assert_eq!(
            old.stats.migration_time.nanos().to_bits(),
            new.result().migration_time.nanos().to_bits(),
            "{name}"
        );
    }
}

#[test]
fn facade_matches_the_hand_wired_multirank_runtime_for_every_policy() {
    let machine = loaded_machine();
    let array = ByteSize::from_kib(16);
    let budget = ByteSize::from_kib(288);
    let online = OnlineConfig::default().with_epoch_accesses(8_192);
    for policy in ArbiterPolicy::ALL {
        let workload = MultiRankWorkload::rank_skew_triad(array, 4, 4, 10);
        let old = run_multirank(
            &workload,
            &machine,
            MultiRankConfig::new(policy, budget).with_online(online.clone()),
        )
        .unwrap();

        let scenario = Scenario::multirank(
            MultiRankSelector::RankSkewTriad {
                array_size: array,
                ranks: 4,
                skew: 4,
                passes: 10,
            },
            policy,
            budget,
        )
        .with_online(online.clone());
        let new = facade(&scenario);

        assert_eq!(new.per_rank.len(), old.per_rank.len(), "{policy}");
        for (o, n) in old.per_rank.iter().zip(&new.per_rank) {
            assert_eq!(
                o.time.nanos().to_bits(),
                n.total_time.nanos().to_bits(),
                "{policy} rank {}",
                o.rank
            );
            assert_eq!(o.engine.counters, n.counters, "{policy} rank {}", o.rank);
            assert_eq!(o.stats.migrations, n.migrations, "{policy} rank {}", o.rank);
            // The facade reports the commit-boundary high-water mark, which
            // can only exceed the end-of-run residency (demotions shrink it).
            assert_eq!(
                o.stats.fast_residency_peak, n.mcdram_hwm,
                "{policy} rank {}",
                o.rank
            );
            assert!(n.mcdram_hwm >= o.fast_residency, "{policy} rank {}", o.rank);
        }
        assert_eq!(
            new.node.time.nanos().to_bits(),
            old.node_time().nanos().to_bits(),
            "{policy}"
        );
        assert_eq!(new.node.llc_misses, old.total_misses(), "{policy}");
        assert_eq!(new.node.migrations, old.total_migrations(), "{policy}");
        assert_eq!(new.node.node_epochs, old.node_epochs, "{policy}");
        assert!(new.node.time >= Nanos::ZERO);
    }
}
