//! # hmsim-profiler
//!
//! The Extrae analogue: step 1 of the paper's framework.
//!
//! The profiler observes a simulated application run and produces a
//! Paraver-like trace containing
//!
//! * allocation/deallocation events for every dynamic allocation larger than
//!   the configured threshold (4 KiB in the paper), identified by their
//!   allocation call-stack, plus static/stack definitions;
//! * PEBS samples of LLC misses (one out of every 37,589 by default), each
//!   carrying the referenced address and the data object it falls in;
//! * phase markers and periodic performance-counter snapshots used by the
//!   Folding-style timeline of Figure 5;
//!
//! and it models the monitoring overhead the instrumentation imposes on the
//! application (Table I reports 0.15 %–4.1 %).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod overhead;
pub mod profiler;

pub use config::ProfilerConfig;
pub use overhead::OverheadModel;
pub use profiler::Profiler;
