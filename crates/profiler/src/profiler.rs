//! The profiler itself: allocation hooks, PEBS wiring and trace emission.

use crate::config::ProfilerConfig;
use crate::overhead::OverheadModel;
use hmsim_common::{Address, DetRng, HmResult, Nanos, ObjectId};
use hmsim_heap::{DataObject, ObjectKind};
use hmsim_pebs::{PebsEvent, PebsSampler, ProcessorFamily};
use hmsim_trace::{
    AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent, TraceFile,
    TraceMetadata,
};

/// The Extrae-like profiler attached to one simulated process.
#[derive(Clone, Debug)]
pub struct Profiler {
    config: ProfilerConfig,
    trace: TraceFile,
    sampler: PebsSampler,
    overhead_model: OverheadModel,
    rng: DetRng,
    /// Allocation/deallocation events actually instrumented.
    alloc_events: u64,
    /// Counter snapshots emitted.
    snapshots: u64,
    /// Instructions and misses accumulated since the last snapshot.
    pending_instructions: u64,
    pending_misses: u64,
    last_snapshot: Nanos,
}

impl Profiler {
    /// Attach a profiler for an application run described by `metadata`.
    pub fn new(mut metadata: TraceMetadata, config: ProfilerConfig) -> Self {
        metadata.sampling_period = config.sampling_period;
        metadata.min_alloc_size = config.min_alloc_size.bytes();
        let rng = DetRng::new(config.seed).derive(&format!(
            "profiler/{}/{}",
            metadata.application, metadata.rank
        ));
        let sampler = PebsSampler::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            config.sampling_period,
            rng.derive("pebs"),
        );
        Profiler {
            config,
            trace: TraceFile::new(metadata),
            sampler,
            overhead_model: OverheadModel::default(),
            rng,
            alloc_events: 0,
            snapshots: 0,
            pending_instructions: 0,
            pending_misses: 0,
            last_snapshot: Nanos::ZERO,
        }
    }

    /// The profiler configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Record an allocation (or a static/stack definition). Dynamic
    /// allocations below the minimum size are skipped, exactly like Extrae's
    /// size filter. Returns whether the event was recorded.
    pub fn record_alloc(&mut self, object: &DataObject, time: Nanos) -> bool {
        if object.kind == ObjectKind::Dynamic && object.size() < self.config.min_alloc_size {
            return false;
        }
        let class = match object.kind {
            ObjectKind::Static => ObjectClass::Static,
            ObjectKind::Dynamic => ObjectClass::Dynamic,
            ObjectKind::Stack => ObjectClass::Stack,
        };
        self.trace.push(TraceEvent::Alloc(AllocationRecord {
            time,
            object: object.id,
            class,
            name: object.name.clone(),
            site: object.site.clone(),
            address: object.range.start,
            size: object.size(),
        }));
        self.alloc_events += 1;
        true
    }

    /// Record a deallocation.
    pub fn record_free(&mut self, object: ObjectId, address: Address, time: Nanos) {
        self.trace.push(TraceEvent::Free {
            time,
            object,
            address,
        });
        self.alloc_events += 1;
    }

    /// Record entry into a named phase.
    pub fn phase_begin(&mut self, name: impl Into<String>, time: Nanos) {
        self.trace.push(TraceEvent::PhaseBegin {
            time,
            name: name.into(),
        });
    }

    /// Record exit from a named phase.
    pub fn phase_end(&mut self, name: impl Into<String>, time: Nanos) {
        self.trace.push(TraceEvent::PhaseEnd {
            time,
            name: name.into(),
        });
    }

    /// Record the memory behaviour of one execution interval: per-object LLC
    /// misses over `[start, start + duration)` plus the instructions retired.
    /// PEBS samples are generated according to the configured period, with
    /// sampled addresses drawn uniformly from each object's address range,
    /// and counter snapshots are emitted at the configured cadence.
    pub fn record_interval(
        &mut self,
        start: Nanos,
        duration: Nanos,
        instructions: u64,
        object_misses: &[(&DataObject, u64)],
    ) {
        for (object, misses) in object_misses {
            if *misses == 0 {
                continue;
            }
            let range = object.range;
            let id = object.id;
            let samples = self.sampler.observe_bulk(start, duration, *misses, |rng| {
                let span = range.len.bytes().max(1);
                range.start.offset(rng.uniform_range(0, span))
            });
            for s in samples {
                self.trace.push(TraceEvent::Sample(SampleRecord {
                    time: s.time,
                    address: s.address,
                    object: Some(id),
                    weight: s.weight,
                    latency_cycles: s.latency_cycles,
                }));
            }
            self.pending_misses += *misses;
        }
        self.pending_instructions += instructions;

        // Emit counter snapshots covering the interval.
        let end = start + duration;
        let interval = self.config.counter_snapshot_interval;
        if interval.nanos() > 0.0 && end - self.last_snapshot >= interval {
            self.trace.push(TraceEvent::Counters(CounterSnapshot {
                time: end,
                instructions: self.pending_instructions,
                llc_misses: self.pending_misses,
            }));
            self.snapshots += 1;
            self.pending_instructions = 0;
            self.pending_misses = 0;
            self.last_snapshot = end;
        }
    }

    /// Record misses that do not belong to any tracked object (stack/IO
    /// noise); sampled addresses are drawn from the given address.
    pub fn record_untracked_misses(&mut self, start: Nanos, duration: Nanos, misses: u64) {
        let base = 0x7ffd_0000_0000u64 + self.rng.uniform_range(0, 1 << 20);
        let samples = self.sampler.observe_bulk(start, duration, misses, |rng| {
            Address(base + rng.uniform_range(0, 1 << 16))
        });
        for s in samples {
            self.trace.push(TraceEvent::Sample(SampleRecord {
                time: s.time,
                address: s.address,
                object: None,
                weight: s.weight,
                latency_cycles: s.latency_cycles,
            }));
        }
        self.pending_misses += misses;
    }

    /// Number of samples emitted so far.
    pub fn samples(&self) -> u64 {
        self.sampler.total_samples()
    }

    /// Number of instrumented allocation/deallocation events so far.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }

    /// The modelled monitoring overhead relative to an uninstrumented run of
    /// `base_time`.
    pub fn overhead_fraction(&self, base_time: Nanos) -> f64 {
        self.overhead_model.overhead_fraction(
            self.alloc_events,
            self.sampler.total_samples(),
            self.snapshots,
            base_time,
        )
    }

    /// Finish profiling and hand over the trace.
    pub fn finish(mut self) -> TraceFile {
        // Flush a final counter snapshot if anything is pending.
        if self.pending_instructions > 0 || self.pending_misses > 0 {
            let time = self.trace.duration();
            self.trace.push(TraceEvent::Counters(CounterSnapshot {
                time,
                instructions: self.pending_instructions,
                llc_misses: self.pending_misses,
            }));
        }
        self.trace.sort_by_time();
        self.trace
    }

    /// Finish profiling and emit the trace through the chunked binary writer
    /// into `sink` (a file, a socket, …) instead of handing back the
    /// in-memory [`TraceFile`]. The events are still sorted in memory first
    /// (capture is simulated, so the whole trace exists anyway); the binary
    /// sink is for the *consumers*, which can then stream it without
    /// re-materialising. Returns the sink.
    pub fn finish_binary<W: std::io::Write>(self, sink: W) -> HmResult<W> {
        hmsim_trace::write_binary_to(sink, &self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_callstack::SiteKey;
    use hmsim_common::{AddressRange, ByteSize, TierId};

    fn object(id: u32, start: u64, size: ByteSize, kind: ObjectKind) -> DataObject {
        DataObject {
            id: ObjectId(id),
            name: format!("obj{id}"),
            kind,
            site: Some(SiteKey::from_text(format!("app!site{id}+0x10"))),
            range: AddressRange::new(Address(start), size),
            tier: TierId::DDR,
            allocated_at: Nanos::ZERO,
            freed_at: None,
        }
    }

    fn profiler(period: u64) -> Profiler {
        Profiler::new(
            TraceMetadata {
                application: "unit".to_string(),
                ..Default::default()
            },
            ProfilerConfig::dense(period),
        )
    }

    #[test]
    fn size_filter_skips_small_dynamic_allocations() {
        let mut p = profiler(100);
        let small = object(0, 0x1000, ByteSize::from_bytes(512), ObjectKind::Dynamic);
        let big = object(1, 0x2000, ByteSize::from_mib(1), ObjectKind::Dynamic);
        let small_static = object(2, 0x3000, ByteSize::from_bytes(512), ObjectKind::Static);
        assert!(!p.record_alloc(&small, Nanos::ZERO));
        assert!(p.record_alloc(&big, Nanos::ZERO));
        assert!(
            p.record_alloc(&small_static, Nanos::ZERO),
            "statics bypass the filter"
        );
        assert_eq!(p.alloc_events(), 2);
    }

    #[test]
    fn samples_are_attributed_to_objects_and_land_in_their_ranges() {
        let mut p = profiler(1000);
        let a = object(0, 0x10_0000, ByteSize::from_mib(4), ObjectKind::Dynamic);
        let b = object(1, 0x90_0000, ByteSize::from_mib(4), ObjectKind::Dynamic);
        p.record_alloc(&a, Nanos::ZERO);
        p.record_alloc(&b, Nanos::ZERO);
        p.record_interval(
            Nanos::ZERO,
            Nanos::from_millis(100.0),
            50_000_000,
            &[(&a, 80_000), (&b, 20_000)],
        );
        let trace = p.finish();
        let mut per_object = std::collections::HashMap::new();
        for e in trace.events() {
            if let TraceEvent::Sample(s) = e {
                *per_object.entry(s.object).or_insert(0u64) += 1;
                let obj = if s.object == Some(ObjectId(0)) {
                    &a
                } else {
                    &b
                };
                assert!(obj.range.contains(s.address), "sample outside object range");
            }
        }
        let a_samples = per_object.get(&Some(ObjectId(0))).copied().unwrap_or(0);
        let b_samples = per_object.get(&Some(ObjectId(1))).copied().unwrap_or(0);
        // 80k misses at period 1000 ≈ 80 samples; 20k ≈ 20. Allow slack for
        // the randomised counter offset.
        assert!((70..=90).contains(&a_samples), "a got {a_samples}");
        assert!((10..=30).contains(&b_samples), "b got {b_samples}");
        assert!(a_samples > 2 * b_samples);
    }

    #[test]
    fn sampling_rate_matches_period() {
        let mut p = profiler(37_589);
        let a = object(0, 0x10_0000, ByteSize::from_mib(64), ObjectKind::Dynamic);
        p.record_alloc(&a, Nanos::ZERO);
        // 37,589 * 100 misses -> ~100 samples.
        p.record_interval(
            Nanos::ZERO,
            Nanos::from_secs(1.0),
            1_000_000_000,
            &[(&a, 37_589 * 100)],
        );
        let n = p.samples();
        assert!((99..=101).contains(&n), "got {n}");
    }

    #[test]
    fn counter_snapshots_and_phases_are_recorded() {
        let mut p = profiler(1000);
        let a = object(0, 0x10_0000, ByteSize::from_mib(1), ObjectKind::Dynamic);
        p.record_alloc(&a, Nanos::ZERO);
        p.phase_begin("iteration", Nanos::ZERO);
        for i in 0..10 {
            let start = Nanos::from_millis(i as f64 * 20.0);
            p.record_interval(start, Nanos::from_millis(20.0), 1_000_000, &[(&a, 5_000)]);
        }
        p.phase_end("iteration", Nanos::from_millis(200.0));
        let trace = p.finish();
        let snapshots = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Counters(_)))
            .count();
        assert!(
            snapshots >= 3,
            "expected several snapshots, got {snapshots}"
        );
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::PhaseBegin { .. })));
        // Events are time sorted after finish().
        assert!(trace
            .events()
            .windows(2)
            .all(|w| w[0].time() <= w[1].time()));
    }

    #[test]
    fn untracked_misses_produce_unattributed_samples() {
        let mut p = profiler(100);
        p.record_untracked_misses(Nanos::ZERO, Nanos::from_millis(10.0), 1_000);
        let trace = p.finish();
        let unattributed = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Sample(s) if s.object.is_none()))
            .count();
        assert!(unattributed >= 9, "got {unattributed}");
    }

    #[test]
    fn overhead_grows_with_allocation_rate() {
        let mut light = profiler(37_589);
        let mut heavy = profiler(37_589);
        let a = object(0, 0x10_0000, ByteSize::from_mib(1), ObjectKind::Dynamic);
        light.record_alloc(&a, Nanos::ZERO);
        for _ in 0..5_000 {
            heavy.record_alloc(&a, Nanos::ZERO);
        }
        let base = Nanos::from_secs(100.0);
        assert!(heavy.overhead_fraction(base) > light.overhead_fraction(base));
        assert!(light.overhead_fraction(base) < 0.01);
    }

    #[test]
    fn finish_binary_matches_finish() {
        let build = || {
            let mut p = profiler(1000);
            let a = object(0, 0x10_0000, ByteSize::from_mib(4), ObjectKind::Dynamic);
            p.record_alloc(&a, Nanos::ZERO);
            p.phase_begin("iteration", Nanos::ZERO);
            p.record_interval(
                Nanos::ZERO,
                Nanos::from_millis(50.0),
                10_000_000,
                &[(&a, 40_000)],
            );
            p.phase_end("iteration", Nanos::from_millis(50.0));
            p
        };
        let in_memory = build().finish();
        let bytes = build().finish_binary(Vec::new()).unwrap();
        let reread = hmsim_trace::read_binary(&bytes).unwrap();
        assert_eq!(reread.metadata, in_memory.metadata);
        assert_eq!(reread.events(), in_memory.events());
    }

    #[test]
    fn free_events_are_recorded() {
        let mut p = profiler(100);
        p.record_free(ObjectId(3), Address(0x1234), Nanos::from_millis(1.0));
        let trace = p.finish();
        assert_eq!(trace.events().len(), 1);
        assert!(matches!(trace.events()[0], TraceEvent::Free { .. }));
    }
}
