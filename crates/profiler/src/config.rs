//! Profiler configuration.

use hmsim_common::{ByteSize, Nanos};

/// Configuration of one profiling run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfilerConfig {
    /// PEBS sampling period: one sample every this many LLC misses.
    pub sampling_period: u64,
    /// Dynamic allocations smaller than this are not instrumented (the paper
    /// uses 4 KiB "to avoid small (and possibly frequent) allocations such as
    /// those related to I/O").
    pub min_alloc_size: ByteSize,
    /// Interval between performance-counter snapshot events.
    pub counter_snapshot_interval: Nanos,
    /// Master seed for the sampler's randomised phase.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sampling_period: 37_589,
            min_alloc_size: ByteSize::from_kib(4),
            counter_snapshot_interval: Nanos::from_millis(50.0),
            seed: 0x5eed,
        }
    }
}

impl ProfilerConfig {
    /// A configuration with a much shorter period, useful for unit tests and
    /// for the sampling-period ablation.
    pub fn dense(period: u64) -> Self {
        ProfilerConfig {
            sampling_period: period,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProfilerConfig::default();
        assert_eq!(c.sampling_period, 37_589);
        assert_eq!(c.min_alloc_size, ByteSize::from_kib(4));
    }

    #[test]
    fn dense_overrides_period_only() {
        let c = ProfilerConfig::dense(100);
        assert_eq!(c.sampling_period, 100);
        assert_eq!(c.min_alloc_size, ByteSize::from_kib(4));
    }
}
