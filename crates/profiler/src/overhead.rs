//! Monitoring-overhead model.
//!
//! Extrae's interception and sampling are not free: every instrumented
//! allocation unwinds a call-stack and writes a trace record, and every PEBS
//! interrupt drains the record buffer. The paper reports end-to-end overheads
//! between 0.15 % and 4.1 % (Table I), dominated by the allocation rate
//! (miniFE and SNAP, with ~1,000 allocations/s, sit at the top).

use hmsim_common::Nanos;

/// Per-event costs of the monitoring machinery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverheadModel {
    /// Cost of instrumenting one allocation/deallocation (unwind + record).
    pub per_alloc_event: Nanos,
    /// Cost of handling one PEBS sample (interrupt + drain + record).
    pub per_sample: Nanos,
    /// Cost of one counter snapshot.
    pub per_snapshot: Nanos,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            per_alloc_event: Nanos::from_micros(11.0),
            per_sample: Nanos::from_micros(5.5),
            per_snapshot: Nanos::from_micros(1.5),
        }
    }
}

impl OverheadModel {
    /// Total monitoring time for the given event counts.
    pub fn total_cost(&self, alloc_events: u64, samples: u64, snapshots: u64) -> Nanos {
        self.per_alloc_event * alloc_events as f64
            + self.per_sample * samples as f64
            + self.per_snapshot * snapshots as f64
    }

    /// Overhead as a fraction of the uninstrumented run time.
    pub fn overhead_fraction(
        &self,
        alloc_events: u64,
        samples: u64,
        snapshots: u64,
        base_time: Nanos,
    ) -> f64 {
        if base_time.nanos() <= 0.0 {
            return 0.0;
        }
        self.total_cost(alloc_events, samples, snapshots).nanos() / base_time.nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_with_event_counts() {
        let m = OverheadModel::default();
        let low = m.overhead_fraction(100, 3_000, 100, Nanos::from_secs(300.0));
        let high = m.overhead_fraction(1_000_000, 3_000, 100, Nanos::from_secs(300.0));
        assert!(low < high);
        // Low-allocation-rate apps stay below 1 % like the paper's.
        assert!(low < 0.01, "low overhead was {low}");
        // Allocation-heavy apps climb into the percent range.
        assert!(high > 0.01 && high < 0.2, "high overhead was {high}");
    }

    #[test]
    fn zero_base_time_is_safe() {
        let m = OverheadModel::default();
        assert_eq!(m.overhead_fraction(10, 10, 10, Nanos::ZERO), 0.0);
    }

    #[test]
    fn total_cost_is_linear() {
        let m = OverheadModel::default();
        let one = m.total_cost(1, 1, 1);
        let ten = m.total_cost(10, 10, 10);
        assert!((ten.nanos() / one.nanos() - 10.0).abs() < 1e-9);
    }
}
