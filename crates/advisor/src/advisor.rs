//! The advisor: multi-tier object distribution.

use crate::greedy::{pack, rank_by_density, rank_by_misses};
use crate::knapsack::{solve_exact, Item};
use crate::memspec::MemorySpec;
use crate::report::{PlacementReport, SelectionEntry};
use crate::strategy::SelectionStrategy;
use hmsim_analysis::{ObjectReport, ObjectStats};
use hmsim_common::{ByteSize, HmResult};

/// The `hmem_advisor` engine.
#[derive(Clone, Debug)]
pub struct Advisor {
    /// Whether hot objects that cannot be promoted automatically (static and
    /// stack variables) should still be listed in the report as *manual*
    /// suggestions for the developer. They never consume fast-memory budget,
    /// because `auto-hbwmalloc` cannot place them.
    pub list_manual_suggestions: bool,
}

impl Default for Advisor {
    fn default() -> Self {
        Advisor {
            list_manual_suggestions: true,
        }
    }
}

impl Advisor {
    /// Create an advisor with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute the object distribution for `report` under `memspec` using
    /// `strategy`.
    ///
    /// The knapsacks are solved in descending order of relative performance;
    /// the unbounded fallback tier implicitly receives everything that was
    /// not selected. Only promotable (dynamically allocated) objects consume
    /// budget.
    pub fn advise(
        &self,
        report: &ObjectReport,
        memspec: &MemorySpec,
        strategy: SelectionStrategy,
    ) -> HmResult<PlacementReport> {
        // Candidate pool: promotable objects with at least one attributed miss.
        let mut pool: Vec<&ObjectStats> = report
            .objects
            .iter()
            .filter(|o| o.promotable() && o.llc_misses > 0)
            .collect();

        let mut entries: Vec<SelectionEntry> = Vec::new();
        let fallback_tier = memspec.fallback().tier;

        for tier in memspec.by_descending_performance() {
            if tier.tier == fallback_tier && tier.capacity.is_none() {
                continue; // everything else falls back implicitly
            }
            if pool.is_empty() {
                break;
            }
            let selected_idx: Vec<usize> = match strategy {
                SelectionStrategy::Misses { threshold_percent } => {
                    let ranked = rank_by_misses(&pool, report.total_misses, threshold_percent);
                    pack(&pool, &ranked, tier.capacity).0
                }
                SelectionStrategy::Density => {
                    let ranked = rank_by_density(&pool);
                    pack(&pool, &ranked, tier.capacity).0
                }
                SelectionStrategy::ExactKnapsack => {
                    let items: Vec<Item> = pool
                        .iter()
                        .map(|o| Item {
                            weight_pages: o.max_size.pages().max(1),
                            value: o.llc_misses,
                        })
                        .collect();
                    let capacity_pages = tier.capacity.map(|c| c.pages()).unwrap_or(u64::MAX / 2);
                    solve_exact(&items, capacity_pages)?.selected
                }
            };
            let mut chosen: Vec<&ObjectStats> = selected_idx.iter().map(|i| pool[*i]).collect();
            // Keep the report ordered by descending misses within a tier.
            chosen.sort_by_key(|o| std::cmp::Reverse(o.llc_misses));
            for o in &chosen {
                entries.push(SelectionEntry {
                    name: o.name.clone(),
                    site: o.site.clone(),
                    tier: tier.tier,
                    tier_name: tier.name.clone(),
                    size: o.max_size,
                    llc_misses: o.llc_misses,
                    automatic: true,
                });
            }
            // Remove selected objects from the pool for the next tier.
            let selected_set: std::collections::HashSet<usize> = selected_idx.into_iter().collect();
            pool = pool
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !selected_set.contains(i))
                .map(|(_, o)| o)
                .collect();
        }

        // Manual suggestions: hot non-promotable objects that would have
        // deserved fast memory (listed against the fastest bounded tier).
        if self.list_manual_suggestions {
            if let Some(fast) = memspec
                .by_descending_performance()
                .into_iter()
                .find(|t| t.capacity.is_some())
            {
                let auto_min_misses = entries.iter().map(|e| e.llc_misses).min().unwrap_or(0);
                let mut manual: Vec<&ObjectStats> = report
                    .objects
                    .iter()
                    .filter(|o| !o.promotable() && o.llc_misses > 0)
                    .filter(|o| o.llc_misses >= auto_min_misses)
                    .collect();
                manual.sort_by_key(|o| std::cmp::Reverse(o.llc_misses));
                for o in manual {
                    entries.push(SelectionEntry {
                        name: o.name.clone(),
                        site: o.site.clone(),
                        tier: fast.tier,
                        tier_name: fast.name.clone(),
                        size: o.max_size,
                        llc_misses: o.llc_misses,
                        automatic: false,
                    });
                }
            }
        }

        let auto_sizes: Vec<(ByteSize, ByteSize)> = entries
            .iter()
            .filter(|e| e.automatic)
            .filter_map(|e| {
                report
                    .objects
                    .iter()
                    .find(|o| o.name == e.name && o.site == e.site)
                    .map(|o| (o.min_size, o.max_size))
            })
            .collect();
        let lb_size = auto_sizes
            .iter()
            .map(|(lo, _)| *lo)
            .min()
            .unwrap_or(ByteSize::ZERO);
        let ub_size = auto_sizes
            .iter()
            .map(|(_, hi)| *hi)
            .max()
            .unwrap_or(ByteSize::ZERO);

        Ok(PlacementReport {
            application: report.application.clone(),
            strategy,
            memspec: memspec.clone(),
            entries,
            lb_size,
            ub_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_analysis::ReportedKind;
    use hmsim_callstack::SiteKey;
    use hmsim_common::TierId;

    fn obj(name: &str, kind: ReportedKind, misses: u64, mib: u64) -> ObjectStats {
        ObjectStats {
            name: name.to_string(),
            site: (kind == ReportedKind::Dynamic)
                .then(|| SiteKey::from_text(format!("app!{name}+0x1"))),
            kind,
            max_size: ByteSize::from_mib(mib),
            min_size: ByteSize::from_mib(mib.max(1) / 2),
            llc_misses: misses,
            samples: misses / 1000,
            allocation_count: 1,
        }
    }

    fn report(objects: Vec<ObjectStats>) -> ObjectReport {
        let total = objects.iter().map(|o| o.llc_misses).sum();
        let mut r = ObjectReport {
            application: "test-app".to_string(),
            objects,
            total_misses: total,
            unattributed_misses: 0,
        };
        r.sort_by_misses();
        r
    }

    #[test]
    fn misses_strategy_fills_budget_with_hottest_objects() {
        let r = report(vec![
            obj("hot_big", ReportedKind::Dynamic, 1_000_000, 100),
            obj("warm_mid", ReportedKind::Dynamic, 500_000, 60),
            obj("cool_small", ReportedKind::Dynamic, 100_000, 10),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(128));
        let placement = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        let names: Vec<&str> = placement
            .automatic_entries()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["hot_big", "cool_small"],
            "warm_mid does not fit after hot_big"
        );
        assert!(placement.selected_bytes(TierId::MCDRAM) <= ByteSize::from_mib(128));
    }

    #[test]
    fn density_strategy_prefers_small_hot_objects() {
        let r = report(vec![
            obj("hot_big", ReportedKind::Dynamic, 1_000_000, 100),
            obj("warm_mid", ReportedKind::Dynamic, 500_000, 60),
            obj("cool_small", ReportedKind::Dynamic, 100_000, 10),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(128));
        let placement = Advisor::new()
            .advise(&r, &spec, SelectionStrategy::Density)
            .unwrap();
        let names: Vec<&str> = placement
            .automatic_entries()
            .map(|e| e.name.as_str())
            .collect();
        // Densities: hot_big 10k/MiB, warm_mid 8.3k/MiB, cool_small 10k/MiB;
        // the two densest fit, then warm_mid does not.
        assert!(names.contains(&"cool_small"));
        assert!(names.contains(&"hot_big"));
        assert!(!names.contains(&"warm_mid"));
    }

    #[test]
    fn threshold_drops_rarely_referenced_objects() {
        let r = report(vec![
            obj("hot", ReportedKind::Dynamic, 990_000, 10),
            obj("rare", ReportedKind::Dynamic, 10_000, 1),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(256));
        let with = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 5.0,
                },
            )
            .unwrap();
        assert_eq!(with.automatic_entries().count(), 1);
        let without = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        assert_eq!(without.automatic_entries().count(), 2);
    }

    #[test]
    fn static_objects_never_consume_budget_but_are_listed_manually() {
        let r = report(vec![
            obj("huge_static", ReportedKind::Static, 2_000_000, 200),
            obj("dynamic_hot", ReportedKind::Dynamic, 1_000_000, 50),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(64));
        let placement = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        let auto: Vec<&str> = placement
            .automatic_entries()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(auto, vec!["dynamic_hot"]);
        let manual: Vec<&str> = placement
            .manual_entries()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(manual, vec!["huge_static"]);
        // Manual suggestions can be disabled.
        let quiet = Advisor {
            list_manual_suggestions: false,
        }
        .advise(&r, &spec, SelectionStrategy::Density)
        .unwrap();
        assert_eq!(quiet.manual_entries().count(), 0);
    }

    #[test]
    fn exact_knapsack_beats_greedy_on_adversarial_input() {
        // Greedy-by-misses takes the 100 MiB object (1M misses) and cannot
        // fit anything else; exact takes the two 60 MiB objects (1.8M total).
        let r = report(vec![
            obj("big", ReportedKind::Dynamic, 1_000_000, 100),
            obj("half_a", ReportedKind::Dynamic, 900_000, 60),
            obj("half_b", ReportedKind::Dynamic, 900_000, 60),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(120));
        let greedy = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        let exact = Advisor::new()
            .advise(&r, &spec, SelectionStrategy::ExactKnapsack)
            .unwrap();
        let misses =
            |p: &PlacementReport| -> u64 { p.automatic_entries().map(|e| e.llc_misses).sum() };
        assert!(misses(&exact) > misses(&greedy));
        assert_eq!(misses(&exact), 1_800_000);
    }

    #[test]
    fn three_tier_spec_cascades_selection() {
        let spec = MemorySpec::parse("HBM 64M 5\nDDR 128M 1\nNVM unlimited 0.2\n").unwrap();
        let r = report(vec![
            obj("hottest", ReportedKind::Dynamic, 1_000_000, 60),
            obj("second", ReportedKind::Dynamic, 500_000, 60),
            obj("third", ReportedKind::Dynamic, 100_000, 60),
        ]);
        let placement = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        let tier_of = |name: &str| {
            placement
                .entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.tier_name.clone())
        };
        assert_eq!(tier_of("hottest").unwrap(), "HBM");
        assert_eq!(tier_of("second").unwrap(), "DDR");
        assert_eq!(tier_of("third").unwrap(), "DDR");
    }

    #[test]
    fn size_bounds_cover_selected_dynamic_objects() {
        let r = report(vec![
            obj("a", ReportedKind::Dynamic, 1_000_000, 8),
            obj("b", ReportedKind::Dynamic, 900_000, 64),
        ]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(256));
        let placement = Advisor::new()
            .advise(
                &r,
                &spec,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            )
            .unwrap();
        assert_eq!(placement.ub_size, ByteSize::from_mib(64));
        assert_eq!(
            placement.lb_size,
            ByteSize::from_mib(4),
            "smallest min_size of selected sites"
        );
    }

    #[test]
    fn empty_report_produces_empty_placement() {
        let r = report(vec![]);
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(64));
        let placement = Advisor::new()
            .advise(&r, &spec, SelectionStrategy::Density)
            .unwrap();
        assert!(placement.entries.is_empty());
        assert_eq!(placement.lb_size, ByteSize::ZERO);
    }
}
