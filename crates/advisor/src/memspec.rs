//! Memory specification: the tiers the advisor may place objects into.
//!
//! "Each memory subsystem is defined by a given size and a relative
//! performance in a configuration file, ensuring that we can extend this
//! mechanism in the future for different memory architectures." (paper §III)

use hmsim_common::{ByteSize, HmError, HmResult, TierId};

/// One memory tier as seen by the advisor.
#[derive(Clone, Debug, PartialEq)]
pub struct TierBudget {
    /// Tier identity.
    pub tier: TierId,
    /// Human-readable name.
    pub name: String,
    /// Capacity the advisor may fill; `None` means unbounded (the fallback
    /// tier).
    pub capacity: Option<ByteSize>,
    /// Relative performance (higher = faster = filled first).
    pub relative_performance: f64,
}

/// The ordered set of tiers.
#[derive(Clone, Debug, PartialEq)]
pub struct MemorySpec {
    tiers: Vec<TierBudget>,
}

impl MemorySpec {
    /// Build a spec; requires at least one unbounded tier to act as fallback
    /// and unique tier ids.
    pub fn new(tiers: Vec<TierBudget>) -> HmResult<MemorySpec> {
        if tiers.is_empty() {
            return Err(HmError::Config(
                "memory spec needs at least one tier".into(),
            ));
        }
        if !tiers.iter().any(|t| t.capacity.is_none()) {
            return Err(HmError::Config(
                "memory spec needs an unbounded fallback tier".into(),
            ));
        }
        for (i, a) in tiers.iter().enumerate() {
            for b in &tiers[i + 1..] {
                if a.tier == b.tier {
                    return Err(HmError::Config(format!(
                        "duplicate tier {:?} in memory spec",
                        a.tier
                    )));
                }
            }
        }
        Ok(MemorySpec { tiers })
    }

    /// The spec used throughout the paper's evaluation: a per-rank MCDRAM
    /// budget plus unbounded DDR as fallback.
    pub fn knl_budget(mcdram_per_rank: ByteSize) -> MemorySpec {
        MemorySpec::new(vec![
            TierBudget {
                tier: TierId::MCDRAM,
                name: "MCDRAM".to_string(),
                capacity: Some(mcdram_per_rank),
                relative_performance: 5.0,
            },
            TierBudget {
                tier: TierId::DDR,
                name: "DDR".to_string(),
                capacity: None,
                relative_performance: 1.0,
            },
        ])
        .expect("knl budget spec is well-formed")
    }

    /// All tiers in declaration order.
    pub fn tiers(&self) -> &[TierBudget] {
        &self.tiers
    }

    /// Tiers in the order knapsacks are solved: descending relative
    /// performance.
    pub fn by_descending_performance(&self) -> Vec<&TierBudget> {
        let mut v: Vec<&TierBudget> = self.tiers.iter().collect();
        v.sort_by(|a, b| {
            b.relative_performance
                .partial_cmp(&a.relative_performance)
                .expect("relative_performance must not be NaN")
        });
        v
    }

    /// The unbounded fallback tier (slowest such tier if several).
    pub fn fallback(&self) -> &TierBudget {
        self.tiers
            .iter()
            .filter(|t| t.capacity.is_none())
            .min_by(|a, b| {
                a.relative_performance
                    .partial_cmp(&b.relative_performance)
                    .expect("relative_performance must not be NaN")
            })
            .expect("constructor guarantees an unbounded tier")
    }

    /// Parse a simple configuration text: one tier per line,
    /// `name capacity relative_performance`, capacity `unlimited` for the
    /// fallback. Lines starting with `#` are comments. Tier ids are assigned
    /// by conventional names (DDR = 0, MCDRAM = 1) or in file order otherwise.
    pub fn parse(text: &str) -> HmResult<MemorySpec> {
        let mut tiers = Vec::new();
        let mut next_extra_id = 2u32;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(HmError::parse_at(
                    lineno,
                    format!("expected 'name capacity performance', got {line:?}"),
                ));
            }
            let name = fields[0].to_string();
            let capacity = if fields[1].eq_ignore_ascii_case("unlimited") {
                None
            } else {
                Some(ByteSize::parse(fields[1]).map_err(|e| HmError::parse_at(lineno, e))?)
            };
            let relative_performance: f64 = fields[2].parse().map_err(|_| {
                HmError::parse_at(lineno, format!("bad performance {:?}", fields[2]))
            })?;
            let tier = match name.to_ascii_uppercase().as_str() {
                "DDR" | "DRAM" => TierId::DDR,
                "MCDRAM" | "HBM" => TierId::MCDRAM,
                _ => {
                    let id = TierId(next_extra_id);
                    next_extra_id += 1;
                    id
                }
            };
            tiers.push(TierBudget {
                tier,
                name,
                capacity,
                relative_performance,
            });
        }
        MemorySpec::new(tiers)
    }

    /// Render back to the configuration-file format.
    pub fn to_config_text(&self) -> String {
        let mut out = String::from("# tier  capacity  relative_performance\n");
        for t in &self.tiers {
            let cap = t
                .capacity
                .map(|c| c.to_string())
                .unwrap_or_else(|| "unlimited".to_string());
            out.push_str(&format!("{} {} {}\n", t.name, cap, t.relative_performance));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_budget_has_bounded_mcdram_and_unbounded_ddr() {
        let spec = MemorySpec::knl_budget(ByteSize::from_mib(128));
        assert_eq!(spec.tiers().len(), 2);
        let order = spec.by_descending_performance();
        assert_eq!(order[0].tier, TierId::MCDRAM);
        assert_eq!(order[0].capacity, Some(ByteSize::from_mib(128)));
        assert_eq!(spec.fallback().tier, TierId::DDR);
    }

    #[test]
    fn spec_requires_fallback_and_unique_tiers() {
        let no_fallback = MemorySpec::new(vec![TierBudget {
            tier: TierId::MCDRAM,
            name: "MCDRAM".into(),
            capacity: Some(ByteSize::from_gib(16)),
            relative_performance: 5.0,
        }]);
        assert!(no_fallback.is_err());

        let dup = MemorySpec::new(vec![
            TierBudget {
                tier: TierId::DDR,
                name: "DDR".into(),
                capacity: None,
                relative_performance: 1.0,
            },
            TierBudget {
                tier: TierId::DDR,
                name: "DDR2".into(),
                capacity: None,
                relative_performance: 0.9,
            },
        ]);
        assert!(dup.is_err());
        assert!(MemorySpec::new(vec![]).is_err());
    }

    #[test]
    fn parse_and_render_round_trip() {
        let text = "# memory layout\nMCDRAM 256M 5.0\nDDR unlimited 1.0\n";
        let spec = MemorySpec::parse(text).unwrap();
        assert_eq!(spec.tiers().len(), 2);
        assert_eq!(spec.tiers()[0].capacity, Some(ByteSize::from_mib(256)));
        assert_eq!(spec.tiers()[0].tier, TierId::MCDRAM);
        let rendered = spec.to_config_text();
        let reparsed = MemorySpec::parse(&rendered).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(MemorySpec::parse("MCDRAM 256M\n").is_err());
        assert!(MemorySpec::parse("MCDRAM big 5.0\nDDR unlimited 1\n").is_err());
        assert!(MemorySpec::parse("MCDRAM 1G notanumber\nDDR unlimited 1\n").is_err());
    }

    #[test]
    fn three_tier_spec_is_supported() {
        let text = "HBM 16G 5\nDDR 96G 1\nNVM unlimited 0.3\n";
        let spec = MemorySpec::parse(text).unwrap();
        let order = spec.by_descending_performance();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].name, "HBM");
        assert_eq!(spec.fallback().name, "NVM");
    }
}
