//! # hmem-advisor
//!
//! Step 3 of the paper's framework and its primary algorithmic contribution:
//! given the per-object LLC-miss report produced by the analysis stage and a
//! description of the machine's memory tiers, decide which data objects
//! should be promoted to fast memory.
//!
//! Following the paper (§III, step 3), the problem is a relaxation of the 0/1
//! *multiple* knapsack problem — one knapsack per memory subsystem, solved in
//! descending order of memory performance, at memory-page granularity — and
//! two independent greedy relaxations are provided:
//!
//! * **Misses(t%)** — objects are considered in descending order of LLC
//!   misses; objects contributing less than `t` percent of the total misses
//!   are never promoted (the threshold "allows preventing that rarely
//!   referenced objects … are promoted to fast-memory");
//! * **Density** — objects are considered in descending order of
//!   misses-per-byte, favouring small, hot objects.
//!
//! An exact dynamic-programming 0/1 knapsack is also included; the paper
//! notes it is impractical for realistic object counts and memory sizes,
//! which the `knapsack_exact_vs_greedy` ablation bench demonstrates.
//!
//! The output is a human-readable [`report::PlacementReport`]: the list of
//! selected objects, which of them `auto-hbwmalloc` can handle automatically
//! (dynamic ones), and the size bounds it should use as a fast pre-filter.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod greedy;
pub mod knapsack;
pub mod memspec;
pub mod report;
pub mod strategy;
pub mod whatif;

pub use advisor::Advisor;
pub use memspec::{MemorySpec, TierBudget};
pub use report::{PlacementReport, SelectionEntry};
pub use strategy::SelectionStrategy;
