//! What-if estimation: predicted benefit of a placement before re-running.
//!
//! The paper lists performance prediction as future work ("it would be
//! interesting to explore ways \[of\] predicting the application performance
//! gains when moving some data objects into fast memory"); this module
//! provides the simple first-order estimate that the framework's own cost
//! model already implies: the fraction of LLC-miss traffic whose service
//! moves from the slow tier to the fast tier bounds the achievable
//! memory-time reduction.

use crate::report::PlacementReport;
use hmsim_analysis::ObjectReport;

/// First-order benefit estimate for a placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenefitEstimate {
    /// Fraction of all attributed LLC misses covered by automatically placed
    /// objects (0..1).
    pub covered_miss_fraction: f64,
    /// Upper bound on the memory-time speedup, assuming memory time scales
    /// with the miss traffic served by the slow tier:
    /// `1 / (1 - covered * (1 - slow/fast bandwidth ratio))`.
    pub memory_speedup_bound: f64,
}

/// Estimate the benefit of `placement` given the profiling `report` and the
/// fast:slow bandwidth ratio of the machine (≈ 5 for KNL).
pub fn estimate_benefit(
    report: &ObjectReport,
    placement: &PlacementReport,
    fast_to_slow_bandwidth_ratio: f64,
) -> BenefitEstimate {
    let total: u64 = report.total_misses.max(1);
    let covered: u64 = placement.automatic_entries().map(|e| e.llc_misses).sum();
    let covered_miss_fraction = (covered as f64 / total as f64).clamp(0.0, 1.0);
    let ratio = fast_to_slow_bandwidth_ratio.max(1.0);
    let remaining = 1.0 - covered_miss_fraction * (1.0 - 1.0 / ratio);
    BenefitEstimate {
        covered_miss_fraction,
        memory_speedup_bound: 1.0 / remaining.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memspec::MemorySpec;
    use crate::report::SelectionEntry;
    use crate::strategy::SelectionStrategy;
    use hmsim_common::{ByteSize, TierId};

    fn placement(covered_misses: u64) -> PlacementReport {
        PlacementReport {
            application: "x".to_string(),
            strategy: SelectionStrategy::Density,
            memspec: MemorySpec::knl_budget(ByteSize::from_mib(64)),
            entries: vec![SelectionEntry {
                name: "hot".to_string(),
                site: None,
                tier: TierId::MCDRAM,
                tier_name: "MCDRAM".to_string(),
                size: ByteSize::from_mib(32),
                llc_misses: covered_misses,
                automatic: true,
            }],
            lb_size: ByteSize::ZERO,
            ub_size: ByteSize::from_mib(32),
        }
    }

    fn report(total: u64) -> ObjectReport {
        ObjectReport {
            application: "x".to_string(),
            objects: vec![],
            total_misses: total,
            unattributed_misses: 0,
        }
    }

    #[test]
    fn full_coverage_approaches_bandwidth_ratio() {
        let est = estimate_benefit(&report(1_000), &placement(1_000), 5.0);
        assert!((est.covered_miss_fraction - 1.0).abs() < 1e-12);
        assert!((est.memory_speedup_bound - 5.0).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_gives_intermediate_speedups() {
        let half = estimate_benefit(&report(1_000), &placement(500), 5.0);
        assert!(half.memory_speedup_bound > 1.0);
        assert!(half.memory_speedup_bound < 5.0);
        let none = estimate_benefit(&report(1_000), &placement(0), 5.0);
        assert!((none.memory_speedup_bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_clamped() {
        // Covered misses exceeding the total (possible when traces differ)
        // must not produce speedups above the bandwidth ratio.
        let est = estimate_benefit(&report(100), &placement(500), 4.0);
        assert!(est.covered_miss_fraction <= 1.0);
        assert!(est.memory_speedup_bound <= 4.0 + 1e-9);
    }
}
