//! Exact 0/1 knapsack (dynamic programming) used as the optimal-but-
//! impractical baseline the paper mentions.
//!
//! The DP runs in `O(n * capacity_pages)`: with hundreds of objects and a
//! 16 GiB knapsack measured in 4 KiB pages (4 M pages) that is billions of
//! cells, which is exactly why the paper resorts to greedy relaxations. The
//! solver refuses capacities beyond a guard limit so tests and ablations can
//! still use it on scaled-down problems.

use hmsim_common::{HmError, HmResult};

/// One knapsack item: `weight` in pages, `value` in LLC misses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Item {
    /// Weight in pages.
    pub weight_pages: u64,
    /// Value (LLC misses avoided by promoting the object).
    pub value: u64,
}

/// Result of an exact solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactSolution {
    /// Indices of the selected items.
    pub selected: Vec<usize>,
    /// Total value of the selection.
    pub total_value: u64,
    /// Total weight of the selection.
    pub total_weight_pages: u64,
    /// Number of DP cells evaluated (cost indicator for the ablation).
    pub cells_evaluated: u64,
}

/// Maximum `items × capacity` product the exact solver will attempt
/// (≈ 200 M cells keeps the worst case well under a second).
pub const MAX_DP_CELLS: u64 = 200_000_000;

/// Solve the 0/1 knapsack exactly.
pub fn solve_exact(items: &[Item], capacity_pages: u64) -> HmResult<ExactSolution> {
    let n = items.len() as u64;
    let cells = n.saturating_mul(capacity_pages + 1);
    if cells > MAX_DP_CELLS {
        return Err(HmError::Config(format!(
            "exact knapsack would evaluate {cells} DP cells (> {MAX_DP_CELLS}); \
             use a greedy strategy for problems of this size"
        )));
    }
    let cap = capacity_pages as usize;
    // dp[w] = best value using items seen so far with weight exactly <= w.
    let mut dp = vec![0u64; cap + 1];
    // keep[i][w] bitset: whether item i is taken at weight w in the optimum.
    let mut keep: Vec<Vec<bool>> = Vec::with_capacity(items.len());
    let mut cells_evaluated = 0u64;
    for item in items {
        let mut taken = vec![false; cap + 1];
        let w_item = item.weight_pages as usize;
        if w_item <= cap {
            for w in (w_item..=cap).rev() {
                cells_evaluated += 1;
                let candidate = dp[w - w_item] + item.value;
                if candidate > dp[w] {
                    dp[w] = candidate;
                    taken[w] = true;
                }
            }
        }
        keep.push(taken);
    }
    // Backtrack.
    let mut selected = Vec::new();
    let mut w = cap;
    for (i, item) in items.iter().enumerate().rev() {
        if keep[i][w] {
            selected.push(i);
            w -= item.weight_pages as usize;
        }
    }
    selected.reverse();
    let total_weight_pages = selected.iter().map(|i| items[*i].weight_pages).sum();
    let total_value = selected.iter().map(|i| items[*i].value).sum();
    Ok(ExactSolution {
        selected,
        total_value,
        total_weight_pages,
        cells_evaluated,
    })
}

/// Value achieved by a greedy by-value selection on the same items — helper
/// for comparing greedy against the optimum in tests and ablations.
pub fn greedy_by_value(items: &[Item], capacity_pages: u64) -> (Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|a, b| items[*b].value.cmp(&items[*a].value));
    let mut remaining = capacity_pages;
    let mut selected = Vec::new();
    let mut value = 0;
    for i in order {
        if items[i].weight_pages <= remaining {
            remaining -= items[i].weight_pages;
            value += items[i].value;
            selected.push(i);
        }
    }
    selected.sort_unstable();
    (selected, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::DetRng;

    #[test]
    fn solves_textbook_instance_optimally() {
        // Classic: capacity 10; optimal is items 1+2 (value 11).
        let items = [
            Item {
                weight_pages: 5,
                value: 6,
            },
            Item {
                weight_pages: 4,
                value: 5,
            },
            Item {
                weight_pages: 6,
                value: 6,
            },
        ];
        let sol = solve_exact(&items, 10).unwrap();
        assert_eq!(sol.total_value, 11);
        assert_eq!(sol.selected, vec![0, 1]);
        assert!(sol.total_weight_pages <= 10);
    }

    #[test]
    fn greedy_by_value_can_be_suboptimal() {
        // Greedy takes the big item (value 10, weight 10) and nothing else;
        // optimal takes the two smaller ones (value 12).
        let items = [
            Item {
                weight_pages: 10,
                value: 10,
            },
            Item {
                weight_pages: 5,
                value: 6,
            },
            Item {
                weight_pages: 5,
                value: 6,
            },
        ];
        let exact = solve_exact(&items, 10).unwrap();
        let (_, greedy_value) = greedy_by_value(&items, 10);
        assert_eq!(exact.total_value, 12);
        assert_eq!(greedy_value, 10);
        assert!(exact.total_value > greedy_value);
    }

    #[test]
    fn oversized_problems_are_refused() {
        let items = vec![
            Item {
                weight_pages: 1,
                value: 1
            };
            1000
        ];
        let err = solve_exact(&items, 1_000_000_000);
        assert!(err.is_err());
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let items = [Item {
            weight_pages: 1,
            value: 5,
        }];
        let sol = solve_exact(&items, 0).unwrap();
        assert!(sol.selected.is_empty());
        assert_eq!(sol.total_value, 0);
    }

    /// The exact solution never violates the capacity and never does worse
    /// than greedy-by-value. Deterministic randomized sweep (seeded DetRng)
    /// standing in for the property-based test this started as.
    #[test]
    fn exact_dominates_greedy() {
        let mut rng = DetRng::new(0x6b6e6170);
        for case in 0..256 {
            let n = rng.uniform_range(1, 12) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| Item {
                    weight_pages: rng.uniform_range(1, 50),
                    value: rng.uniform_range(1, 1000),
                })
                .collect();
            let capacity = rng.uniform_range(1, 200);
            let exact = solve_exact(&items, capacity).unwrap();
            let (_, greedy_value) = greedy_by_value(&items, capacity);
            assert!(
                exact.total_weight_pages <= capacity,
                "case {case}: capacity violated"
            );
            assert!(
                exact.total_value >= greedy_value,
                "case {case}: exact {} < greedy {greedy_value}",
                exact.total_value
            );
            // Selected indices are unique and in range.
            let mut seen = std::collections::HashSet::new();
            for i in &exact.selected {
                assert!(*i < items.len(), "case {case}: index out of range");
                assert!(seen.insert(*i), "case {case}: duplicate index {i}");
            }
        }
    }
}
