//! Exact 0/1 knapsack (dynamic programming) used as the optimal-but-
//! impractical baseline the paper mentions.
//!
//! The DP runs in `O(n * capacity_pages)`: with hundreds of objects and a
//! 16 GiB knapsack measured in 4 KiB pages (4 M pages) that is billions of
//! cells, which is exactly why the paper resorts to greedy relaxations. The
//! solver refuses capacities beyond a guard limit so tests and ablations can
//! still use it on scaled-down problems.

use hmsim_common::{HmError, HmResult};

/// One knapsack item: `weight` in pages, `value` in LLC misses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Item {
    /// Weight in pages.
    pub weight_pages: u64,
    /// Value (LLC misses avoided by promoting the object).
    pub value: u64,
}

/// Result of an exact solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactSolution {
    /// Indices of the selected items.
    pub selected: Vec<usize>,
    /// Total value of the selection.
    pub total_value: u64,
    /// Total weight of the selection.
    pub total_weight_pages: u64,
    /// Number of DP cells evaluated (cost indicator for the ablation).
    pub cells_evaluated: u64,
    /// Bytes allocated for the backtrack bitset (memory indicator; one *bit*
    /// per DP cell of each eligible item, padded to 64-bit words per row).
    pub backtrack_bytes: u64,
}

/// Maximum number of evaluated DP cells — and backtrack bitset *bits* —
/// the exact solver will attempt (≈ 200 M keeps the worst case well under a
/// second and the backtrack allocation under 25 MB). Items wider than the
/// knapsack evaluate no cells and count against neither bound.
pub const MAX_DP_CELLS: u64 = 200_000_000;

/// Solve the 0/1 knapsack exactly.
pub fn solve_exact(items: &[Item], capacity_pages: u64) -> HmResult<ExactSolution> {
    // Items wider than the knapsack can never be taken: they evaluate zero
    // DP cells and need no backtrack row, so they count neither against the
    // guard nor towards the bitset allocation.
    let eligible: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].weight_pages <= capacity_pages)
        .collect();
    let cells: u64 = eligible
        .iter()
        .map(|&i| capacity_pages - items[i].weight_pages + 1)
        .fold(0u64, u64::saturating_add);
    if cells > MAX_DP_CELLS {
        return Err(HmError::Config(format!(
            "exact knapsack would evaluate {cells} DP cells (> {MAX_DP_CELLS}); \
             use a greedy strategy for problems of this size"
        )));
    }
    // The backtrack bitset holds one capacity-wide row per eligible item, so
    // near-capacity weights evaluate few cells yet still allocate full rows;
    // bound the allocation separately (at one bit per guard cell the bitset
    // tops out at MAX_DP_CELLS/8 bytes, an eighth of the old byte matrix).
    let bits = (eligible.len() as u64).saturating_mul(capacity_pages + 1);
    if bits > MAX_DP_CELLS {
        return Err(HmError::Config(format!(
            "exact knapsack would allocate a {bits}-bit backtrack matrix \
             (> {MAX_DP_CELLS}); use a greedy strategy for problems of this size"
        )));
    }
    let cap = capacity_pages as usize;
    // dp[w] = best value using items seen so far with weight exactly <= w.
    let mut dp = vec![0u64; cap + 1];
    // Backtrack bitset: bit (row, w) records whether eligible item `row` is
    // taken at residual weight w in the optimum. One bit per cell instead of
    // the byte-per-cell `Vec<Vec<bool>>` this used to be.
    let words_per_row = cap / 64 + 1;
    let mut keep = vec![0u64; words_per_row * eligible.len()];
    let mut cells_evaluated = 0u64;
    for (row, &i) in eligible.iter().enumerate() {
        let item = &items[i];
        let w_item = item.weight_pages as usize;
        let row_words = &mut keep[row * words_per_row..(row + 1) * words_per_row];
        for w in (w_item..=cap).rev() {
            cells_evaluated += 1;
            let candidate = dp[w - w_item] + item.value;
            if candidate > dp[w] {
                dp[w] = candidate;
                row_words[w / 64] |= 1 << (w % 64);
            }
        }
    }
    // Backtrack.
    let mut selected = Vec::new();
    let mut w = cap;
    for (row, &i) in eligible.iter().enumerate().rev() {
        if keep[row * words_per_row + w / 64] >> (w % 64) & 1 == 1 {
            selected.push(i);
            w -= items[i].weight_pages as usize;
        }
    }
    selected.reverse();
    let total_weight_pages = selected.iter().map(|i| items[*i].weight_pages).sum();
    let total_value = selected.iter().map(|i| items[*i].value).sum();
    Ok(ExactSolution {
        selected,
        total_value,
        total_weight_pages,
        cells_evaluated,
        backtrack_bytes: keep.len() as u64 * 8,
    })
}

/// Value achieved by a greedy by-value selection on the same items — helper
/// for comparing greedy against the optimum in tests and ablations.
pub fn greedy_by_value(items: &[Item], capacity_pages: u64) -> (Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|a, b| items[*b].value.cmp(&items[*a].value));
    let mut remaining = capacity_pages;
    let mut selected = Vec::new();
    let mut value = 0;
    for i in order {
        if items[i].weight_pages <= remaining {
            remaining -= items[i].weight_pages;
            value += items[i].value;
            selected.push(i);
        }
    }
    selected.sort_unstable();
    (selected, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::DetRng;

    #[test]
    fn solves_textbook_instance_optimally() {
        // Classic: capacity 10; optimal is items 1+2 (value 11).
        let items = [
            Item {
                weight_pages: 5,
                value: 6,
            },
            Item {
                weight_pages: 4,
                value: 5,
            },
            Item {
                weight_pages: 6,
                value: 6,
            },
        ];
        let sol = solve_exact(&items, 10).unwrap();
        assert_eq!(sol.total_value, 11);
        assert_eq!(sol.selected, vec![0, 1]);
        assert!(sol.total_weight_pages <= 10);
    }

    #[test]
    fn greedy_by_value_can_be_suboptimal() {
        // Greedy takes the big item (value 10, weight 10) and nothing else;
        // optimal takes the two smaller ones (value 12).
        let items = [
            Item {
                weight_pages: 10,
                value: 10,
            },
            Item {
                weight_pages: 5,
                value: 6,
            },
            Item {
                weight_pages: 5,
                value: 6,
            },
        ];
        let exact = solve_exact(&items, 10).unwrap();
        let (_, greedy_value) = greedy_by_value(&items, 10);
        assert_eq!(exact.total_value, 12);
        assert_eq!(greedy_value, 10);
        assert!(exact.total_value > greedy_value);
    }

    #[test]
    fn oversized_problems_are_refused() {
        let items = vec![
            Item {
                weight_pages: 1,
                value: 1
            };
            1000
        ];
        let err = solve_exact(&items, 1_000_000_000);
        assert!(err.is_err());
    }

    /// Near-capacity weights evaluate one cell each but still own a full
    /// capacity-wide backtrack row: the memory bound must refuse what the
    /// evaluated-cells bound alone would wave through.
    #[test]
    fn backtrack_memory_is_guarded_independently_of_evaluated_cells() {
        let capacity: u64 = 150_000_000;
        let items = vec![
            Item {
                weight_pages: capacity,
                value: 1
            };
            2_000
        ];
        // Only 2 000 cells would be evaluated, but the bitset would span
        // 2 000 × (capacity+1) bits ≫ MAX_DP_CELLS.
        let err = solve_exact(&items, capacity);
        assert!(err.is_err());
        assert!(format!("{err:?}").contains("backtrack"), "{err:?}");
    }

    /// The guard counts cells actually evaluated: items wider than the
    /// knapsack contribute nothing, so an instance whose `items × capacity`
    /// product is far past `MAX_DP_CELLS` still solves when almost every
    /// item is oversized — and its backtrack bitset is a sliver of the byte
    /// matrix the old representation would have allocated.
    #[test]
    fn guard_counts_only_evaluated_cells_and_backtrack_is_packed() {
        let capacity: u64 = 99_999;
        let mut items = vec![
            Item {
                weight_pages: capacity + 1,
                value: 1_000_000,
            };
            2_001
        ];
        items[1_000] = Item {
            weight_pages: 1,
            value: 7,
        };
        // items × (capacity+1) = 200.1 M > MAX_DP_CELLS, but only one item
        // is eligible, so only `capacity` cells are evaluated.
        assert!(items.len() as u64 * (capacity + 1) > MAX_DP_CELLS);
        let sol = solve_exact(&items, capacity).unwrap();
        assert_eq!(sol.selected, vec![1_000]);
        assert_eq!(sol.total_value, 7);
        assert_eq!(sol.cells_evaluated, capacity);
        // One bitset row, word-padded: (99_999/64 + 1) words × 8 bytes.
        assert_eq!(sol.backtrack_bytes, (capacity / 64 + 1) * 8);
        // ≤ 1/8 of the byte-per-cell matrix the old backtrack allocated.
        let old_backtrack_bytes = items.len() as u64 * (capacity + 1);
        assert!(
            sol.backtrack_bytes * 8 <= old_backtrack_bytes,
            "bitset {} vs old matrix {}",
            sol.backtrack_bytes,
            old_backtrack_bytes
        );
    }

    /// On a dense instance every eligible item owns one word-padded bitset
    /// row; with the row width a multiple of 64 the packing is exactly one
    /// eighth of the old byte matrix.
    #[test]
    fn dense_backtrack_allocates_an_eighth_of_the_byte_matrix() {
        let capacity: u64 = 10_239; // capacity+1 = 10_240 = 160 words exactly
        let mut rng = DetRng::new(0xb17_5e7);
        let items: Vec<Item> = (0..64)
            .map(|_| Item {
                weight_pages: rng.uniform_range(1, 512),
                value: rng.uniform_range(1, 1000),
            })
            .collect();
        let sol = solve_exact(&items, capacity).unwrap();
        let old_backtrack_bytes = items.len() as u64 * (capacity + 1);
        assert_eq!(sol.backtrack_bytes * 8, old_backtrack_bytes);
        assert!(sol.total_weight_pages <= capacity);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let items = [Item {
            weight_pages: 1,
            value: 5,
        }];
        let sol = solve_exact(&items, 0).unwrap();
        assert!(sol.selected.is_empty());
        assert_eq!(sol.total_value, 0);
    }

    /// The exact solution never violates the capacity and never does worse
    /// than greedy-by-value. Deterministic randomized sweep (seeded DetRng)
    /// standing in for the property-based test this started as.
    #[test]
    fn exact_dominates_greedy() {
        let mut rng = DetRng::new(0x6b6e6170);
        for case in 0..256 {
            let n = rng.uniform_range(1, 12) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| Item {
                    weight_pages: rng.uniform_range(1, 50),
                    value: rng.uniform_range(1, 1000),
                })
                .collect();
            let capacity = rng.uniform_range(1, 200);
            let exact = solve_exact(&items, capacity).unwrap();
            let (_, greedy_value) = greedy_by_value(&items, capacity);
            assert!(
                exact.total_weight_pages <= capacity,
                "case {case}: capacity violated"
            );
            assert!(
                exact.total_value >= greedy_value,
                "case {case}: exact {} < greedy {greedy_value}",
                exact.total_value
            );
            // Selected indices are unique and in range.
            let mut seen = std::collections::HashSet::new();
            for i in &exact.selected {
                assert!(*i < items.len(), "case {case}: index out of range");
                assert!(seen.insert(*i), "case {case}: duplicate index {i}");
            }
        }
    }
}
