//! The advisor's output: a human-readable placement report.
//!
//! The paper keeps this report human-readable for two reasons: statically
//! allocated objects cannot be migrated automatically (the developer must act
//! on them), and developers may prefer to edit the code themselves. The same
//! report is what `auto-hbwmalloc` parses at run time.

use crate::memspec::MemorySpec;
use crate::strategy::SelectionStrategy;
use hmsim_callstack::SiteKey;
use hmsim_common::{ByteSize, HmError, HmResult, TierId};

/// One selected object.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionEntry {
    /// Object name.
    pub name: String,
    /// Allocation call-stack key for dynamic objects.
    pub site: Option<SiteKey>,
    /// The tier the object should be placed in.
    pub tier: TierId,
    /// Tier name (for the human-readable rendering).
    pub tier_name: String,
    /// The object's (maximum observed) size.
    pub size: ByteSize,
    /// LLC misses attributed to the object in the profiling run.
    pub llc_misses: u64,
    /// Whether `auto-hbwmalloc` can apply this placement automatically
    /// (dynamic allocations only); static/stack objects are listed for the
    /// developer.
    pub automatic: bool,
}

/// The complete placement recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementReport {
    /// Application the report was generated for.
    pub application: String,
    /// Strategy that produced it.
    pub strategy: SelectionStrategy,
    /// Memory specification it was generated against.
    pub memspec: MemorySpec,
    /// Selected objects (fast tiers only; everything else falls back).
    pub entries: Vec<SelectionEntry>,
    /// Smallest selected dynamic-object size (auto-hbwmalloc's `lb_size`
    /// pre-filter).
    pub lb_size: ByteSize,
    /// Largest selected dynamic-object size (`ub_size`).
    pub ub_size: ByteSize,
}

impl PlacementReport {
    /// Entries that `auto-hbwmalloc` will apply automatically.
    pub fn automatic_entries(&self) -> impl Iterator<Item = &SelectionEntry> {
        self.entries.iter().filter(|e| e.automatic)
    }

    /// Entries the developer must handle manually (static/stack objects).
    pub fn manual_entries(&self) -> impl Iterator<Item = &SelectionEntry> {
        self.entries.iter().filter(|e| !e.automatic)
    }

    /// Total bytes selected for `tier` (page aligned).
    pub fn selected_bytes(&self, tier: TierId) -> ByteSize {
        self.entries
            .iter()
            .filter(|e| e.tier == tier)
            .map(|e| e.size.page_aligned())
            .sum()
    }

    /// Whether the site key of a dynamic allocation is selected; returns the
    /// target tier if so.
    pub fn tier_for_site(&self, site: &SiteKey) -> Option<TierId> {
        self.entries
            .iter()
            .find(|e| e.automatic && e.site.as_ref() == Some(site))
            .map(|e| e.tier)
    }

    /// Render the human-readable report text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# hmem_advisor placement report\n# application: {}\n# strategy: {}\n# lb_size: {}\n# ub_size: {}\n",
            self.application,
            self.strategy,
            self.lb_size.bytes(),
            self.ub_size.bytes()
        ));
        out.push_str("# memory specification:\n");
        for line in self.memspec.to_config_text().lines() {
            out.push_str(&format!("#   {line}\n"));
        }
        for e in &self.entries {
            let auto = if e.automatic { "auto" } else { "manual" };
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                e.tier_name,
                auto,
                e.llc_misses,
                e.size.bytes(),
                e.name.replace('\t', " "),
                e.site.as_ref().map(|s| s.as_str()).unwrap_or("-"),
            ));
        }
        out
    }

    /// Parse a report back from its text rendering. The memory specification
    /// and strategy are restored approximately (enough for `auto-hbwmalloc`,
    /// which only needs the entries and the size bounds).
    pub fn parse(text: &str) -> HmResult<PlacementReport> {
        let mut application = String::from("unknown");
        let mut lb_size = ByteSize::ZERO;
        let mut ub_size = ByteSize::ZERO;
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim();
                if let Some(v) = comment.strip_prefix("application:") {
                    application = v.trim().to_string();
                } else if let Some(v) = comment.strip_prefix("lb_size:") {
                    lb_size = ByteSize::from_bytes(
                        v.trim()
                            .parse()
                            .map_err(|_| HmError::parse_at(lineno, "bad lb_size"))?,
                    );
                } else if let Some(v) = comment.strip_prefix("ub_size:") {
                    ub_size = ByteSize::from_bytes(
                        v.trim()
                            .parse()
                            .map_err(|_| HmError::parse_at(lineno, "bad ub_size"))?,
                    );
                }
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() < 6 {
                return Err(HmError::parse_at(
                    lineno,
                    format!("expected 6 tab-separated fields, got {}", fields.len()),
                ));
            }
            let tier_name = fields[0].to_string();
            let tier = match tier_name.to_ascii_uppercase().as_str() {
                "MCDRAM" | "HBM" => TierId::MCDRAM,
                "DDR" | "DRAM" => TierId::DDR,
                _ => TierId(2),
            };
            entries.push(SelectionEntry {
                tier,
                tier_name,
                automatic: fields[1] == "auto",
                llc_misses: fields[2]
                    .parse()
                    .map_err(|_| HmError::parse_at(lineno, "bad miss count"))?,
                size: ByteSize::from_bytes(
                    fields[3]
                        .parse()
                        .map_err(|_| HmError::parse_at(lineno, "bad size"))?,
                ),
                name: fields[4].to_string(),
                site: (fields[5] != "-").then(|| SiteKey::from_text(fields[5])),
            });
        }
        Ok(PlacementReport {
            application,
            strategy: SelectionStrategy::Misses {
                threshold_percent: 0.0,
            },
            memspec: MemorySpec::knl_budget(ub_size.max(ByteSize::from_mib(16))),
            entries,
            lb_size,
            ub_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PlacementReport {
        PlacementReport {
            application: "miniFE".to_string(),
            strategy: SelectionStrategy::Density,
            memspec: MemorySpec::knl_budget(ByteSize::from_mib(128)),
            entries: vec![
                SelectionEntry {
                    name: "A.values".to_string(),
                    site: Some(SiteKey::from_text(
                        "libc!malloc+0x1|minife!create_matrix+0x8",
                    )),
                    tier: TierId::MCDRAM,
                    tier_name: "MCDRAM".to_string(),
                    size: ByteSize::from_mib(60),
                    llc_misses: 2_000_000,
                    automatic: true,
                },
                SelectionEntry {
                    name: "static_table".to_string(),
                    site: None,
                    tier: TierId::MCDRAM,
                    tier_name: "MCDRAM".to_string(),
                    size: ByteSize::from_mib(20),
                    llc_misses: 400_000,
                    automatic: false,
                },
            ],
            lb_size: ByteSize::from_mib(60),
            ub_size: ByteSize::from_mib(60),
        }
    }

    #[test]
    fn automatic_and_manual_split() {
        let r = report();
        assert_eq!(r.automatic_entries().count(), 1);
        assert_eq!(r.manual_entries().count(), 1);
        assert_eq!(r.selected_bytes(TierId::MCDRAM), ByteSize::from_mib(80));
        assert_eq!(r.selected_bytes(TierId::DDR), ByteSize::ZERO);
    }

    #[test]
    fn tier_for_site_matches_only_automatic_entries() {
        let r = report();
        let site = SiteKey::from_text("libc!malloc+0x1|minife!create_matrix+0x8");
        assert_eq!(r.tier_for_site(&site), Some(TierId::MCDRAM));
        assert_eq!(r.tier_for_site(&SiteKey::from_text("other")), None);
    }

    #[test]
    fn text_round_trip_preserves_entries_and_bounds() {
        let r = report();
        let text = r.to_text();
        let parsed = PlacementReport::parse(&text).unwrap();
        assert_eq!(parsed.application, "miniFE");
        assert_eq!(parsed.lb_size, r.lb_size);
        assert_eq!(parsed.ub_size, r.ub_size);
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].name, "A.values");
        assert_eq!(parsed.entries[0].tier, TierId::MCDRAM);
        assert!(parsed.entries[0].automatic);
        assert_eq!(parsed.entries[0].site, r.entries[0].site);
        assert!(!parsed.entries[1].automatic);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(PlacementReport::parse("MCDRAM\tauto\t1\n").is_err());
        assert!(PlacementReport::parse("MCDRAM\tauto\tx\t1\tname\t-\n").is_err());
    }
}
