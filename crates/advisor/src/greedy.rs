//! The two greedy relaxations of the multiple-knapsack problem.
//!
//! Both run in `O(n log n)` (the sort dominates), which is the "linear
//! computational cost" property the paper relies on to scale to hundreds of
//! objects and multi-gigabyte memory levels.

use hmsim_analysis::ObjectStats;
use hmsim_common::ByteSize;

/// Rank candidate indices by descending LLC-miss count, dropping objects that
/// contribute less than `threshold_percent` of `total_misses`.
pub fn rank_by_misses(
    objects: &[&ObjectStats],
    total_misses: u64,
    threshold_percent: f64,
) -> Vec<usize> {
    let threshold = (threshold_percent.max(0.0) / 100.0) * total_misses as f64;
    let mut order: Vec<usize> = (0..objects.len())
        .filter(|i| {
            let misses = objects[*i].llc_misses as f64;
            misses > 0.0 && misses >= threshold
        })
        .collect();
    order.sort_by(|a, b| {
        objects[*b]
            .llc_misses
            .cmp(&objects[*a].llc_misses)
            .then_with(|| objects[*a].max_size.cmp(&objects[*b].max_size))
            .then_with(|| objects[*a].name.cmp(&objects[*b].name))
    });
    order
}

/// Rank candidate indices by descending miss density (misses per byte).
pub fn rank_by_density(objects: &[&ObjectStats]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..objects.len())
        .filter(|i| objects[*i].llc_misses > 0)
        .collect();
    order.sort_by(|a, b| {
        objects[*b]
            .density()
            .partial_cmp(&objects[*a].density())
            .expect("density is never NaN")
            .then_with(|| objects[*b].llc_misses.cmp(&objects[*a].llc_misses))
            .then_with(|| objects[*a].name.cmp(&objects[*b].name))
    });
    order
}

/// Greedily pack ranked objects into a knapsack of `capacity` (page-granular
/// accounting). Returns the indices packed and the bytes consumed
/// (page-aligned).
pub fn pack(
    objects: &[&ObjectStats],
    ranked: &[usize],
    capacity: Option<ByteSize>,
) -> (Vec<usize>, ByteSize) {
    let mut used = ByteSize::ZERO;
    let mut selected = Vec::new();
    for &idx in ranked {
        let need = objects[idx].max_size.page_aligned();
        let fits = match capacity {
            Some(cap) => used + need <= cap,
            None => true,
        };
        if fits {
            used += need;
            selected.push(idx);
        }
        // Note: like the paper's greedy, we keep scanning after a non-fit so
        // that smaller objects further down the ranking can still use the
        // remaining space.
    }
    (selected, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_analysis::ReportedKind;

    fn obj(name: &str, misses: u64, mib: u64) -> ObjectStats {
        ObjectStats {
            name: name.to_string(),
            site: None,
            kind: ReportedKind::Dynamic,
            max_size: ByteSize::from_mib(mib),
            min_size: ByteSize::from_mib(mib),
            llc_misses: misses,
            samples: misses / 1000,
            allocation_count: 1,
        }
    }

    #[test]
    fn misses_ranking_orders_and_thresholds() {
        let objects = [
            obj("small_hot", 500_000, 1),
            obj("big_hot", 900_000, 100),
            obj("rare", 5_000, 1),
            obj("untouched", 0, 50),
        ];
        let refs: Vec<&ObjectStats> = objects.iter().collect();
        let total: u64 = objects.iter().map(|o| o.llc_misses).sum();

        let no_threshold = rank_by_misses(&refs, total, 0.0);
        assert_eq!(
            no_threshold,
            vec![1, 0, 2],
            "untouched object is never ranked"
        );

        let with_threshold = rank_by_misses(&refs, total, 1.0);
        assert_eq!(
            with_threshold,
            vec![1, 0],
            "rare object filtered by the 1% threshold"
        );
    }

    #[test]
    fn density_ranking_prefers_small_hot_objects() {
        let objects = [obj("big_hot", 900_000, 100), obj("small_hot", 500_000, 1)];
        let refs: Vec<&ObjectStats> = objects.iter().collect();
        let ranked = rank_by_density(&refs);
        assert_eq!(ranked, vec![1, 0]);
    }

    #[test]
    fn pack_respects_capacity_and_skips_to_smaller_objects() {
        let objects = [
            obj("huge", 1_000_000, 200),
            obj("medium", 900_000, 60),
            obj("small", 800_000, 30),
        ];
        let refs: Vec<&ObjectStats> = objects.iter().collect();
        let ranked = vec![0, 1, 2];
        let (selected, used) = pack(&refs, &ranked, Some(ByteSize::from_mib(100)));
        // "huge" does not fit; "medium" and "small" do.
        assert_eq!(selected, vec![1, 2]);
        assert_eq!(used, ByteSize::from_mib(90));
    }

    #[test]
    fn pack_without_capacity_takes_everything() {
        let objects = [obj("a", 10, 1), obj("b", 20, 2)];
        let refs: Vec<&ObjectStats> = objects.iter().collect();
        let (selected, used) = pack(&refs, &[1, 0], None);
        assert_eq!(selected, vec![1, 0]);
        assert_eq!(used, ByteSize::from_mib(3));
    }

    #[test]
    fn pack_accounts_pages_not_raw_bytes() {
        let tiny = ObjectStats {
            max_size: ByteSize::from_bytes(100),
            min_size: ByteSize::from_bytes(100),
            ..obj("tiny", 10, 0)
        };
        let refs = vec![&tiny];
        let (_, used) = pack(&refs, &[0], Some(ByteSize::from_kib(8)));
        assert_eq!(used, ByteSize::from_kib(4), "rounded up to one page");
    }
}
