//! Selection strategies.

use std::fmt;

/// How the advisor ranks candidate objects for promotion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectionStrategy {
    /// Rank by absolute LLC-miss count, skipping objects that contribute less
    /// than `threshold_percent` of the total misses.
    Misses {
        /// Minimum share of total misses (in percent) an object must reach to
        /// be considered.
        threshold_percent: f64,
    },
    /// Rank by miss density (misses per byte).
    Density,
    /// Solve the 0/1 knapsack exactly per tier (dynamic programming); only
    /// practical for small object counts and budgets, provided for
    /// comparison.
    ExactKnapsack,
}

impl SelectionStrategy {
    /// The four strategy configurations evaluated in Figure 4 of the paper.
    pub fn paper_set() -> Vec<SelectionStrategy> {
        vec![
            SelectionStrategy::Density,
            SelectionStrategy::Misses {
                threshold_percent: 0.0,
            },
            SelectionStrategy::Misses {
                threshold_percent: 1.0,
            },
            SelectionStrategy::Misses {
                threshold_percent: 5.0,
            },
        ]
    }

    /// Short label used in figures and CSV output.
    pub fn label(&self) -> String {
        match self {
            SelectionStrategy::Misses { threshold_percent } => {
                format!("Misses({}%)", threshold_percent)
            }
            SelectionStrategy::Density => "Density".to_string(),
            SelectionStrategy::ExactKnapsack => "ExactKnapsack".to_string(),
        }
    }
}

impl fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_figure_4() {
        let set = SelectionStrategy::paper_set();
        assert_eq!(set.len(), 4);
        let labels: Vec<String> = set.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Density", "Misses(0%)", "Misses(1%)", "Misses(5%)"]
        );
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(
            format!(
                "{}",
                SelectionStrategy::Misses {
                    threshold_percent: 5.0
                }
            ),
            "Misses(5%)"
        );
        assert_eq!(
            format!("{}", SelectionStrategy::ExactKnapsack),
            "ExactKnapsack"
        );
    }
}
