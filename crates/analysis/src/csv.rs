//! CSV serialisation of object reports — the hand-off file between the
//! analysis stage (Paramedir) and `hmem_advisor`.

use crate::object_stats::{ObjectReport, ObjectStats, ReportedKind};
use hmsim_callstack::SiteKey;
use hmsim_common::table::{csv_escape, csv_parse_line};
use hmsim_common::{ByteSize, HmError, HmResult};

/// Header line of the report CSV.
pub const CSV_HEADER: &str =
    "name,kind,site,llc_misses,samples,max_size_bytes,min_size_bytes,allocation_count";

/// Serialise a report to CSV.
pub fn write_csv(report: &ObjectReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# application={} total_misses={} unattributed={}\n",
        csv_escape(&report.application),
        report.total_misses,
        report.unattributed_misses
    ));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for o in &report.objects {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            csv_escape(&o.name),
            o.kind.code(),
            csv_escape(o.site.as_ref().map(|s| s.as_str()).unwrap_or("")),
            o.llc_misses,
            o.samples,
            o.max_size.bytes(),
            o.min_size.bytes(),
            o.allocation_count
        ));
    }
    out
}

/// Parse a report from CSV.
pub fn read_csv(text: &str) -> HmResult<ObjectReport> {
    let mut report = ObjectReport::default();
    let mut seen_header = false;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            for kv in meta.split_whitespace() {
                if let Some((k, v)) = kv.split_once('=') {
                    match k {
                        "application" => report.application = v.to_string(),
                        "total_misses" => {
                            report.total_misses = v.parse().map_err(|_| {
                                HmError::parse_at(lineno, format!("bad total_misses {v:?}"))
                            })?
                        }
                        "unattributed" => {
                            report.unattributed_misses = v.parse().map_err(|_| {
                                HmError::parse_at(lineno, format!("bad unattributed {v:?}"))
                            })?
                        }
                        _ => {}
                    }
                }
            }
            continue;
        }
        if !seen_header {
            if !line.starts_with("name,") {
                return Err(HmError::parse_at(lineno, "missing CSV header"));
            }
            seen_header = true;
            continue;
        }
        let fields = csv_parse_line(line);
        if fields.len() < 8 {
            return Err(HmError::parse_at(
                lineno,
                format!("expected 8 fields, got {}", fields.len()),
            ));
        }
        let parse_u64 = |idx: usize| -> HmResult<u64> {
            fields[idx]
                .parse()
                .map_err(|_| HmError::parse_at(lineno, format!("bad integer {:?}", fields[idx])))
        };
        report.objects.push(ObjectStats {
            name: fields[0].clone(),
            kind: ReportedKind::from_code(&fields[1]).ok_or_else(|| {
                HmError::parse_at(lineno, format!("unknown kind {:?}", fields[1]))
            })?,
            site: (!fields[2].is_empty()).then(|| SiteKey::from_text(fields[2].clone())),
            llc_misses: parse_u64(3)?,
            samples: parse_u64(4)?,
            max_size: ByteSize::from_bytes(parse_u64(5)?),
            min_size: ByteSize::from_bytes(parse_u64(6)?),
            allocation_count: parse_u64(7)?,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ObjectReport {
        ObjectReport {
            application: "HPCG".to_string(),
            objects: vec![
                ObjectStats {
                    name: "matrix values, level 0".to_string(),
                    site: Some(SiteKey::from_text("libc!malloc+0x1|app!alloc+0x4")),
                    kind: ReportedKind::Dynamic,
                    max_size: ByteSize::from_mib(128),
                    min_size: ByteSize::from_mib(64),
                    llc_misses: 12_345_678,
                    samples: 321,
                    allocation_count: 4,
                },
                ObjectStats {
                    name: "common_block".to_string(),
                    site: None,
                    kind: ReportedKind::Static,
                    max_size: ByteSize::from_mib(512),
                    min_size: ByteSize::from_mib(512),
                    llc_misses: 42,
                    samples: 1,
                    allocation_count: 1,
                },
            ],
            total_misses: 13_000_000,
            unattributed_misses: 654_280,
        }
    }

    #[test]
    fn csv_round_trip() {
        let original = report();
        let text = write_csv(&original);
        let parsed = read_csv(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn commas_in_names_survive() {
        let text = write_csv(&report());
        let parsed = read_csv(&text).unwrap();
        assert_eq!(parsed.objects[0].name, "matrix values, level 0");
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(read_csv("nonsense\n").is_err());
        let missing_fields = format!("{CSV_HEADER}\nonly,three,fields\n");
        assert!(read_csv(&missing_fields).is_err());
        let bad_kind = format!("{CSV_HEADER}\nx,heap,,1,1,1,1,1\n");
        assert!(read_csv(&bad_kind).is_err());
    }

    #[test]
    fn empty_input_gives_empty_report() {
        let parsed = read_csv("").unwrap();
        assert!(parsed.objects.is_empty());
    }
}
