//! Folding: reconstructing a fine-grained timeline from coarse samples.
//!
//! The BSC Folding technique combines the samples collected across many
//! executions of a repetitive region (e.g. the main solver iteration) into a
//! single synthetic instance with much finer effective resolution. The
//! paper's Figure 5 uses it to show, for SNAP's main iteration, which routine
//! executes, which addresses are referenced and the achieved MIPS over the
//! iteration — revealing that `outer_src_calc` drops in MIPS under the
//! framework because its register spills stay in DDR.

use hmsim_common::{Address, Nanos};
use hmsim_trace::{TraceEvent, TraceFile};

/// One bin of the folded timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldedBin {
    /// Normalised position of the bin centre within the folded region (0..1).
    pub position: f64,
    /// Achieved MIPS in this bin (averaged over instances).
    pub mips: f64,
    /// LLC misses per second in this bin.
    pub miss_rate: f64,
    /// The routine most often active in this bin, if phase markers allow
    /// telling.
    pub dominant_routine: Option<String>,
    /// Sampled addresses falling into this bin (across all instances).
    pub sampled_addresses: Vec<Address>,
}

/// A folded timeline of one repetitive region.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldedTimeline {
    /// Name of the folded region.
    pub region: String,
    /// Number of instances folded together.
    pub instances: usize,
    /// Mean duration of one instance.
    pub mean_duration: Nanos,
    /// The folded bins, in position order.
    pub bins: Vec<FoldedBin>,
}

impl FoldedTimeline {
    /// Fold every execution of phase `region` found in `trace` into `nbins`
    /// bins.
    pub fn fold(trace: &TraceFile, region: &str, nbins: usize) -> FoldedTimeline {
        let nbins = nbins.max(1);
        // 1. Find instances of the region.
        let mut instances: Vec<(Nanos, Nanos)> = Vec::new();
        let mut open: Option<Nanos> = None;
        for e in trace.events() {
            match e {
                TraceEvent::PhaseBegin { time, name } if name == region => open = Some(*time),
                TraceEvent::PhaseEnd { time, name } if name == region => {
                    if let Some(start) = open.take() {
                        if *time > start {
                            instances.push((start, *time));
                        }
                    }
                }
                _ => {}
            }
        }

        let mut bins: Vec<FoldedBinAccum> = (0..nbins).map(|_| FoldedBinAccum::default()).collect();
        let mut total_duration = Nanos::ZERO;

        // 2. Pour events of each instance into normalised bins.
        for (start, end) in &instances {
            let duration = *end - *start;
            total_duration += duration;
            let locate = |t: Nanos| -> Option<usize> {
                if t < *start || t >= *end {
                    return None;
                }
                let frac = (t - *start).nanos() / duration.nanos();
                Some(((frac * nbins as f64) as usize).min(nbins - 1))
            };
            // Routine tracking within this instance: innermost nested phase.
            let mut routine_stack: Vec<String> = Vec::new();
            let mut last_routine_change = *start;
            for e in trace.events() {
                let t = e.time();
                match e {
                    TraceEvent::PhaseBegin { name, time } if name != region => {
                        if let Some(bin_range) =
                            span_bins(last_routine_change, *time, *start, duration, nbins)
                        {
                            if let Some(routine) = routine_stack.last() {
                                for b in bin_range {
                                    bins[b].routine_time(routine, 1.0);
                                }
                            }
                        }
                        routine_stack.push(name.clone());
                        last_routine_change = *time;
                    }
                    TraceEvent::PhaseEnd { name, time } if name != region => {
                        if let Some(bin_range) =
                            span_bins(last_routine_change, *time, *start, duration, nbins)
                        {
                            if let Some(routine) = routine_stack.last() {
                                for b in bin_range {
                                    bins[b].routine_time(routine, 1.0);
                                }
                            }
                        }
                        routine_stack.pop();
                        last_routine_change = *time;
                    }
                    TraceEvent::Sample(s) => {
                        if let Some(b) = locate(t) {
                            bins[b].samples.push(s.address);
                            bins[b].misses += s.weight as f64;
                        }
                    }
                    TraceEvent::Counters(c) => {
                        if let Some(b) = locate(t) {
                            bins[b].instructions += c.instructions as f64;
                            bins[b].counter_misses += c.llc_misses as f64;
                        }
                    }
                    _ => {}
                }
            }
        }

        let instances_count = instances.len();
        let mean_duration = if instances_count > 0 {
            total_duration / instances_count as f64
        } else {
            Nanos::ZERO
        };
        let bin_time = mean_duration / nbins as f64;

        let bins = bins
            .into_iter()
            .enumerate()
            .map(|(i, acc)| {
                let seconds = (bin_time.secs() * instances_count as f64).max(1e-12);
                FoldedBin {
                    position: (i as f64 + 0.5) / nbins as f64,
                    mips: acc.instructions / seconds / 1e6,
                    miss_rate: (acc.misses.max(acc.counter_misses)) / seconds,
                    dominant_routine: acc.dominant_routine(),
                    sampled_addresses: acc.samples,
                }
            })
            .collect();

        FoldedTimeline {
            region: region.to_string(),
            instances: instances_count,
            mean_duration,
            bins,
        }
    }

    /// The bin positions and MIPS values, ready for plotting (Figure 5,
    /// bottom panel).
    pub fn mips_series(&self) -> Vec<(f64, f64)> {
        self.bins.iter().map(|b| (b.position, b.mips)).collect()
    }

    /// The routine active in each bin (Figure 5, top panel).
    pub fn routine_series(&self) -> Vec<(f64, Option<&str>)> {
        self.bins
            .iter()
            .map(|b| (b.position, b.dominant_routine.as_deref()))
            .collect()
    }

    /// Position of the bin with the lowest MIPS (ignoring empty bins).
    pub fn slowest_bin(&self) -> Option<&FoldedBin> {
        self.bins
            .iter()
            .filter(|b| b.mips > 0.0)
            .min_by(|a, b| a.mips.partial_cmp(&b.mips).expect("MIPS not NaN"))
    }
}

fn span_bins(
    from: Nanos,
    to: Nanos,
    start: Nanos,
    duration: Nanos,
    nbins: usize,
) -> Option<std::ops::RangeInclusive<usize>> {
    if to <= from || duration.nanos() <= 0.0 {
        return None;
    }
    let clamp = |t: Nanos| ((t - start).nanos() / duration.nanos()).clamp(0.0, 1.0);
    let a = (clamp(from) * nbins as f64) as usize;
    let b = ((clamp(to) * nbins as f64) as usize).min(nbins - 1);
    (a <= b).then_some(a..=b)
}

#[derive(Clone, Debug, Default)]
struct FoldedBinAccum {
    instructions: f64,
    misses: f64,
    counter_misses: f64,
    samples: Vec<Address>,
    routines: std::collections::HashMap<String, f64>,
}

impl FoldedBinAccum {
    fn routine_time(&mut self, routine: &str, weight: f64) {
        *self.routines.entry(routine.to_string()).or_insert(0.0) += weight;
    }

    fn dominant_routine(&self) -> Option<String> {
        self.routines
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights not NaN"))
            .map(|(name, _)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::ObjectId;
    use hmsim_trace::{CounterSnapshot, SampleRecord, TraceMetadata};

    /// Build a trace with 4 iterations; in each, the routine "slow_kernel"
    /// occupies the middle 40%–60% with far fewer instructions per unit time.
    fn repetitive_trace() -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata::default());
        let iter_len = 100.0; // ms
        for i in 0..4 {
            let base = i as f64 * iter_len;
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(base),
                name: "iteration".to_string(),
            });
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(base + 40.0),
                name: "slow_kernel".to_string(),
            });
            t.push(TraceEvent::PhaseEnd {
                time: Nanos::from_millis(base + 60.0),
                name: "slow_kernel".to_string(),
            });
            // Counter snapshots every 10 ms: 10 per iteration. The middle two
            // (covering 40-60 ms) retire far fewer instructions.
            for s in 0..10 {
                let at = base + 10.0 * s as f64 + 5.0;
                let slow = (40.0..60.0).contains(&(10.0 * s as f64 + 5.0));
                t.push(TraceEvent::Counters(CounterSnapshot {
                    time: Nanos::from_millis(at),
                    instructions: if slow { 2_000_000 } else { 20_000_000 },
                    llc_misses: if slow { 50_000 } else { 5_000 },
                }));
                if slow {
                    t.push(TraceEvent::Sample(SampleRecord {
                        time: Nanos::from_millis(at),
                        address: Address(0x7ffd_0000_1000),
                        object: Some(ObjectId(9)),
                        weight: 1000,
                        latency_cycles: None,
                    }));
                }
            }
            t.push(TraceEvent::PhaseEnd {
                time: Nanos::from_millis(base + iter_len),
                name: "iteration".to_string(),
            });
        }
        t
    }

    #[test]
    fn folding_finds_instances_and_duration() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        assert_eq!(timeline.instances, 4);
        assert!((timeline.mean_duration.millis() - 100.0).abs() < 1e-6);
        assert_eq!(timeline.bins.len(), 10);
    }

    #[test]
    fn mips_dip_appears_in_the_slow_region() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        let series = timeline.mips_series();
        // Bins around position 0.45-0.55 must be the slowest.
        let slowest = timeline.slowest_bin().unwrap();
        assert!(
            (0.4..0.6).contains(&slowest.position),
            "slowest bin at {}",
            slowest.position
        );
        // Fast bins achieve roughly 10x the slow bins' MIPS.
        let fast = series
            .iter()
            .filter(|(p, _)| *p < 0.3)
            .map(|(_, m)| *m)
            .fold(0.0f64, f64::max);
        assert!(
            fast > slowest.mips * 5.0,
            "fast {fast} slow {}",
            slowest.mips
        );
    }

    #[test]
    fn dominant_routine_and_samples_land_in_slow_bins() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        let mid = &timeline.bins[4];
        assert_eq!(mid.dominant_routine.as_deref(), Some("slow_kernel"));
        assert!(!mid.sampled_addresses.is_empty());
        let early = &timeline.bins[0];
        assert!(early.sampled_addresses.is_empty());
        assert!(mid.miss_rate > early.miss_rate);
    }

    #[test]
    fn folding_unknown_region_is_empty() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "nope", 5);
        assert_eq!(timeline.instances, 0);
        assert_eq!(timeline.mean_duration, Nanos::ZERO);
        assert!(timeline.slowest_bin().is_none());
    }
}
