//! Folding: reconstructing a fine-grained timeline from coarse samples.
//!
//! The BSC Folding technique combines the samples collected across many
//! executions of a repetitive region (e.g. the main solver iteration) into a
//! single synthetic instance with much finer effective resolution. The
//! paper's Figure 5 uses it to show, for SNAP's main iteration, which routine
//! executes, which addresses are referenced and the achieved MIPS over the
//! iteration — revealing that `outer_src_calc` drops in MIPS under the
//! framework because its register spills stay in DDR.
//!
//! Folding is stream-native: [`FoldAccumulator`] consumes events one at a
//! time in a single forward pass (O(events) total work, memory bounded by
//! the largest single instance), so it can fold a
//! [`TraceReader`](hmsim_trace::TraceReader) stream directly without ever
//! materialising the trace. [`FoldedTimeline::fold`] and
//! [`FoldedTimeline::fold_stream`] are thin wrappers over it. Events are
//! strictly filtered to each instance's `[start, end)` window — routines
//! executing before/after an instance contribute nothing (they previously
//! leaked into the edge bins).

use hmsim_common::{Address, HmResult, Nanos};
use hmsim_trace::{RankedEvent, TraceEvent, TraceFile};
use std::borrow::Borrow;

/// One bin of the folded timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldedBin {
    /// Normalised position of the bin centre within the folded region (0..1).
    pub position: f64,
    /// Achieved MIPS in this bin (averaged over instances).
    pub mips: f64,
    /// LLC misses per second in this bin.
    pub miss_rate: f64,
    /// The routine most often active in this bin, if phase markers allow
    /// telling.
    pub dominant_routine: Option<String>,
    /// Sampled addresses falling into this bin (across all instances).
    pub sampled_addresses: Vec<Address>,
}

/// A folded timeline of one repetitive region.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldedTimeline {
    /// Name of the folded region.
    pub region: String,
    /// Number of instances folded together.
    pub instances: usize,
    /// Mean duration of one instance.
    pub mean_duration: Nanos,
    /// The folded bins, in position order.
    pub bins: Vec<FoldedBin>,
}

/// The subset of an event the folding pass needs while an instance is open.
/// Buffering this instead of the full event keeps the per-instance window
/// small (no allocation-record names/sites).
enum Buffered {
    RoutineBegin {
        time: Nanos,
        name: String,
    },
    RoutineEnd {
        time: Nanos,
    },
    Sample {
        time: Nanos,
        address: Address,
        weight: u64,
    },
    Counters {
        time: Nanos,
        instructions: u64,
        llc_misses: u64,
    },
}

impl Buffered {
    fn time(&self) -> Nanos {
        match self {
            Buffered::RoutineBegin { time, .. }
            | Buffered::RoutineEnd { time }
            | Buffered::Sample { time, .. }
            | Buffered::Counters { time, .. } => *time,
        }
    }

    fn of(event: &TraceEvent) -> Option<Buffered> {
        match event {
            TraceEvent::PhaseBegin { time, name } => Some(Buffered::RoutineBegin {
                time: *time,
                name: name.clone(),
            }),
            TraceEvent::PhaseEnd { time, .. } => Some(Buffered::RoutineEnd { time: *time }),
            TraceEvent::Sample(s) => Some(Buffered::Sample {
                time: s.time,
                address: s.address,
                weight: s.weight,
            }),
            TraceEvent::Counters(c) => Some(Buffered::Counters {
                time: c.time,
                instructions: c.instructions,
                llc_misses: c.llc_misses,
            }),
            _ => None,
        }
    }
}

struct OpenInstance {
    start: Nanos,
    buffered: Vec<Buffered>,
}

/// Per-rank instance-tracking state: the currently open instance plus the
/// run of events seen while closed that share the latest timestamp. A
/// time-sorted stream can interleave events with the region markers at
/// identical timestamps (the profiler emits counter snapshots exactly at
/// iteration boundaries, before the next `PhaseBegin` in stream order); such
/// events belong to an instance that starts at that same timestamp, so they
/// are kept until the clock moves past them.
#[derive(Default)]
struct RankState {
    open: Option<OpenInstance>,
    pending: Vec<Buffered>,
    pending_time: Option<Nanos>,
}

/// Streaming accumulator behind [`FoldedTimeline::fold`].
///
/// Feed events in time order with [`push`](Self::push) — or, for a merged
/// multi-rank stream, with [`push_ranked`](Self::push_ranked), which tracks
/// each rank's `PhaseBegin`/`PhaseEnd` pairing independently while folding
/// every rank's instances into the same bins. Call
/// [`finish`](Self::finish) to obtain the folded timeline. Each pushed event
/// is examined exactly once on arrival (see
/// [`events_visited`](Self::events_visited)); events inside an open instance
/// are buffered until the instance's `PhaseEnd` fixes its duration, then
/// binned — so the whole fold is one forward pass over the trace instead of
/// one rescan per instance.
pub struct FoldAccumulator {
    region: String,
    nbins: usize,
    bins: Vec<FoldedBinAccum>,
    instances: usize,
    total_duration: Nanos,
    ranks: std::collections::HashMap<u32, RankState>,
    events_visited: u64,
}

impl FoldAccumulator {
    /// Start folding executions of phase `region` into `nbins` bins.
    pub fn new(region: impl Into<String>, nbins: usize) -> Self {
        let nbins = nbins.max(1);
        FoldAccumulator {
            region: region.into(),
            nbins,
            bins: (0..nbins).map(|_| FoldedBinAccum::default()).collect(),
            instances: 0,
            total_duration: Nanos::ZERO,
            ranks: std::collections::HashMap::new(),
            events_visited: 0,
        }
    }

    /// Consume one event of a single-rank stream.
    pub fn push(&mut self, event: &TraceEvent) {
        self.push_ranked(0, event);
    }

    /// Consume one event of the given rank. Instance tracking (open/close of
    /// the folded region) is per rank, so a merged multi-rank stream folds
    /// each rank's iterations correctly instead of mispairing begin/end
    /// markers across ranks; all ranks accumulate into the same bins.
    pub fn push_ranked(&mut self, rank: u32, event: &TraceEvent) {
        self.events_visited += 1;
        let state = self.ranks.entry(rank).or_default();
        let mut to_close: Option<(OpenInstance, Nanos)> = None;
        match event {
            TraceEvent::PhaseBegin { time, name } if *name == self.region => {
                // Seed the new instance with the events that share its start
                // timestamp: they fall inside `[start, end)` even though they
                // preceded the marker in stream order.
                let buffered = if let Some(prev) = state.open.take() {
                    let mut b = prev.buffered;
                    b.retain(|e| e.time() == *time);
                    b
                } else if state.pending_time == Some(*time) {
                    std::mem::take(&mut state.pending)
                } else {
                    Vec::new()
                };
                state.pending.clear();
                state.pending_time = None;
                state.open = Some(OpenInstance {
                    start: *time,
                    buffered,
                });
            }
            TraceEvent::PhaseEnd { time, name } if *name == self.region => {
                if let Some(mut instance) = state.open.take() {
                    // Events stamped exactly at the end fall outside this
                    // instance's `[start, end)` but inside a follow-on
                    // instance beginning at the same timestamp — carry them
                    // over (the buffer is time-ordered, so they form its
                    // tail).
                    let split = instance.buffered.partition_point(|b| b.time() < *time);
                    state.pending = instance.buffered.split_off(split);
                    state.pending_time = Some(*time);
                    if *time > instance.start {
                        to_close = Some((instance, *time));
                    }
                }
            }
            other => {
                if let Some(buffered) = Buffered::of(other) {
                    match state.open.as_mut() {
                        Some(instance) => instance.buffered.push(buffered),
                        None => {
                            // Keep only the run of events at the newest
                            // timestamp — candidates for an instance opening
                            // at exactly that time.
                            if state.pending_time != Some(buffered.time()) {
                                state.pending.clear();
                                state.pending_time = Some(buffered.time());
                            }
                            state.pending.push(buffered);
                        }
                    }
                }
            }
        }
        if let Some((instance, end)) = to_close {
            self.close_instance(instance, end);
        }
    }

    /// Number of events pushed so far. A fold of an n-event trace visits
    /// exactly n events — the regression guard against the old
    /// one-rescan-per-instance behaviour.
    pub fn events_visited(&self) -> u64 {
        self.events_visited
    }

    /// Bin the buffered events of a completed instance `[start, end)`.
    fn close_instance(&mut self, instance: OpenInstance, end: Nanos) {
        let start = instance.start;
        let duration = end - start;
        self.instances += 1;
        self.total_duration += duration;
        let nbins = self.nbins;
        let in_window = |t: Nanos| t >= start && t < end;
        let locate = |t: Nanos| -> Option<usize> {
            if !in_window(t) {
                return None;
            }
            let frac = (t - start).nanos() / duration.nanos();
            Some(((frac * nbins as f64) as usize).min(nbins - 1))
        };

        // Routine tracking within this instance: innermost nested phase. The
        // stack starts empty at the instance boundary and every span is
        // confined to [start, end) by construction.
        let mut routine_stack: Vec<&str> = Vec::new();
        let mut last_routine_change = start;
        for buffered in &instance.buffered {
            match buffered {
                Buffered::RoutineBegin { time, name } => {
                    if !in_window(*time) {
                        continue;
                    }
                    if let Some(routine) = routine_stack.last() {
                        if let Some(range) =
                            span_bins(last_routine_change, *time, start, duration, nbins)
                        {
                            for b in range {
                                self.bins[b].routine_time(routine, 1.0);
                            }
                        }
                    }
                    routine_stack.push(name.as_str());
                    last_routine_change = *time;
                }
                Buffered::RoutineEnd { time } => {
                    if !in_window(*time) {
                        continue;
                    }
                    if let Some(routine) = routine_stack.last() {
                        if let Some(range) =
                            span_bins(last_routine_change, *time, start, duration, nbins)
                        {
                            for b in range {
                                self.bins[b].routine_time(routine, 1.0);
                            }
                        }
                    }
                    routine_stack.pop();
                    last_routine_change = *time;
                }
                Buffered::Sample {
                    time,
                    address,
                    weight,
                } => {
                    if let Some(b) = locate(*time) {
                        self.bins[b].samples.push(*address);
                        self.bins[b].misses += *weight as f64;
                    }
                }
                Buffered::Counters {
                    time,
                    instructions,
                    llc_misses,
                } => {
                    if let Some(b) = locate(*time) {
                        self.bins[b].instructions += *instructions as f64;
                        self.bins[b].counter_misses += *llc_misses as f64;
                    }
                }
            }
        }
    }

    /// Finalise the folded timeline.
    pub fn finish(self) -> FoldedTimeline {
        let nbins = self.nbins;
        let instances = self.instances;
        let mean_duration = if instances > 0 {
            self.total_duration / instances as f64
        } else {
            Nanos::ZERO
        };
        let bin_time = mean_duration / nbins as f64;

        let bins = self
            .bins
            .into_iter()
            .enumerate()
            .map(|(i, acc)| {
                let seconds = (bin_time.secs() * instances as f64).max(1e-12);
                FoldedBin {
                    position: (i as f64 + 0.5) / nbins as f64,
                    mips: acc.instructions / seconds / 1e6,
                    miss_rate: (acc.misses.max(acc.counter_misses)) / seconds,
                    dominant_routine: acc.dominant_routine(),
                    sampled_addresses: acc.samples,
                }
            })
            .collect();

        FoldedTimeline {
            region: self.region,
            instances,
            mean_duration,
            bins,
        }
    }
}

impl FoldedTimeline {
    /// Fold every execution of phase `region` found in `trace` into `nbins`
    /// bins. Single forward pass over the events.
    pub fn fold(trace: &TraceFile, region: &str, nbins: usize) -> FoldedTimeline {
        Self::fold_stream(trace.events(), region, nbins)
    }

    /// Fold an arbitrary infallible event stream without materialising it.
    /// For a fallible source such as a
    /// [`TraceReader`](hmsim_trace::TraceReader), use
    /// [`fold_try_stream`](Self::fold_try_stream); for a merged multi-rank
    /// stream, use [`fold_ranked_stream`](Self::fold_ranked_stream).
    pub fn fold_stream<E: Borrow<TraceEvent>>(
        events: impl IntoIterator<Item = E>,
        region: &str,
        nbins: usize,
    ) -> FoldedTimeline {
        let mut acc = FoldAccumulator::new(region, nbins);
        for e in events {
            acc.push(e.borrow());
        }
        acc.finish()
    }

    /// Fold a fallible event stream — e.g. a
    /// [`TraceReader`](hmsim_trace::TraceReader) streaming an on-disk binary
    /// trace — stopping at the first error.
    pub fn fold_try_stream(
        events: impl IntoIterator<Item = HmResult<TraceEvent>>,
        region: &str,
        nbins: usize,
    ) -> HmResult<FoldedTimeline> {
        let mut acc = FoldAccumulator::new(region, nbins);
        for e in events {
            acc.push(&e?);
        }
        Ok(acc.finish())
    }

    /// Fold a merged multi-rank stream of rank-tagged events (what
    /// [`MergedStream`](hmsim_trace::MergedStream) produces), tracking each
    /// rank's region instances independently and folding them all into the
    /// same bins. Stops at the first stream error.
    pub fn fold_ranked_stream(
        events: impl IntoIterator<Item = HmResult<RankedEvent>>,
        region: &str,
        nbins: usize,
    ) -> HmResult<FoldedTimeline> {
        let mut acc = FoldAccumulator::new(region, nbins);
        for e in events {
            let e = e?;
            acc.push_ranked(e.rank, &e.event);
        }
        Ok(acc.finish())
    }

    /// The bin positions and MIPS values, ready for plotting (Figure 5,
    /// bottom panel).
    pub fn mips_series(&self) -> Vec<(f64, f64)> {
        self.bins.iter().map(|b| (b.position, b.mips)).collect()
    }

    /// The routine active in each bin (Figure 5, top panel).
    pub fn routine_series(&self) -> Vec<(f64, Option<&str>)> {
        self.bins
            .iter()
            .map(|b| (b.position, b.dominant_routine.as_deref()))
            .collect()
    }

    /// Position of the bin with the lowest MIPS (ignoring empty bins).
    pub fn slowest_bin(&self) -> Option<&FoldedBin> {
        self.bins
            .iter()
            .filter(|b| b.mips > 0.0)
            .min_by(|a, b| a.mips.partial_cmp(&b.mips).expect("MIPS not NaN"))
    }
}

fn span_bins(
    from: Nanos,
    to: Nanos,
    start: Nanos,
    duration: Nanos,
    nbins: usize,
) -> Option<std::ops::RangeInclusive<usize>> {
    if to <= from || duration.nanos() <= 0.0 {
        return None;
    }
    let clamp = |t: Nanos| ((t - start).nanos() / duration.nanos()).clamp(0.0, 1.0);
    let a = (clamp(from) * nbins as f64) as usize;
    let b = ((clamp(to) * nbins as f64) as usize).min(nbins - 1);
    (a <= b).then_some(a..=b)
}

#[derive(Clone, Debug, Default)]
struct FoldedBinAccum {
    instructions: f64,
    misses: f64,
    counter_misses: f64,
    samples: Vec<Address>,
    routines: std::collections::HashMap<String, f64>,
}

impl FoldedBinAccum {
    fn routine_time(&mut self, routine: &str, weight: f64) {
        *self.routines.entry(routine.to_string()).or_insert(0.0) += weight;
    }

    fn dominant_routine(&self) -> Option<String> {
        self.routines
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights not NaN"))
            .map(|(name, _)| name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::ObjectId;
    use hmsim_trace::{CounterSnapshot, SampleRecord, TraceMetadata};

    /// Build a trace with 4 iterations; in each, the routine "slow_kernel"
    /// occupies the middle 40%–60% with far fewer instructions per unit time.
    fn repetitive_trace() -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata::default());
        let iter_len = 100.0; // ms
        for i in 0..4 {
            let base = i as f64 * iter_len;
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(base),
                name: "iteration".to_string(),
            });
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(base + 40.0),
                name: "slow_kernel".to_string(),
            });
            t.push(TraceEvent::PhaseEnd {
                time: Nanos::from_millis(base + 60.0),
                name: "slow_kernel".to_string(),
            });
            // Counter snapshots every 10 ms: 10 per iteration. The middle two
            // (covering 40-60 ms) retire far fewer instructions.
            for s in 0..10 {
                let at = base + 10.0 * s as f64 + 5.0;
                let slow = (40.0..60.0).contains(&(10.0 * s as f64 + 5.0));
                t.push(TraceEvent::Counters(CounterSnapshot {
                    time: Nanos::from_millis(at),
                    instructions: if slow { 2_000_000 } else { 20_000_000 },
                    llc_misses: if slow { 50_000 } else { 5_000 },
                }));
                if slow {
                    t.push(TraceEvent::Sample(SampleRecord {
                        time: Nanos::from_millis(at),
                        address: Address(0x7ffd_0000_1000),
                        object: Some(ObjectId(9)),
                        weight: 1000,
                        latency_cycles: None,
                    }));
                }
            }
            t.push(TraceEvent::PhaseEnd {
                time: Nanos::from_millis(base + iter_len),
                name: "iteration".to_string(),
            });
        }
        t
    }

    #[test]
    fn folding_finds_instances_and_duration() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        assert_eq!(timeline.instances, 4);
        assert!((timeline.mean_duration.millis() - 100.0).abs() < 1e-6);
        assert_eq!(timeline.bins.len(), 10);
    }

    #[test]
    fn mips_dip_appears_in_the_slow_region() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        let series = timeline.mips_series();
        // Bins around position 0.45-0.55 must be the slowest.
        let slowest = timeline.slowest_bin().unwrap();
        assert!(
            (0.4..0.6).contains(&slowest.position),
            "slowest bin at {}",
            slowest.position
        );
        // Fast bins achieve roughly 10x the slow bins' MIPS.
        let fast = series
            .iter()
            .filter(|(p, _)| *p < 0.3)
            .map(|(_, m)| *m)
            .fold(0.0f64, f64::max);
        assert!(
            fast > slowest.mips * 5.0,
            "fast {fast} slow {}",
            slowest.mips
        );
    }

    #[test]
    fn dominant_routine_and_samples_land_in_slow_bins() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "iteration", 10);
        let mid = &timeline.bins[4];
        assert_eq!(mid.dominant_routine.as_deref(), Some("slow_kernel"));
        assert!(!mid.sampled_addresses.is_empty());
        let early = &timeline.bins[0];
        assert!(early.sampled_addresses.is_empty());
        assert!(mid.miss_rate > early.miss_rate);
        // The instance-window filter keeps slow_kernel spans from other
        // iterations out of the edge bins entirely.
        assert_eq!(early.dominant_routine, None);
        assert_eq!(timeline.bins[9].dominant_routine, None);
    }

    #[test]
    fn folding_unknown_region_is_empty() {
        let timeline = FoldedTimeline::fold(&repetitive_trace(), "nope", 5);
        assert_eq!(timeline.instances, 0);
        assert_eq!(timeline.mean_duration, Nanos::ZERO);
        assert!(timeline.slowest_bin().is_none());
    }

    /// Regression for the instance-window bug: with asymmetric iterations and
    /// a routine running entirely *between* them, the old implementation
    /// rescanned the whole trace per instance and clamped out-of-window
    /// routine spans into bin 0 / the last bin, so "ghost" became the
    /// dominant routine of the edge bins. Events must be filtered to
    /// `[start, end)`.
    #[test]
    fn routines_outside_the_instance_window_do_not_pollute_edge_bins() {
        let mut t = TraceFile::new(TraceMetadata::default());
        // A routine that runs entirely before the first instance...
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(0.0),
            name: "ghost".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(50.0),
            name: "ghost".to_string(),
        });
        // ...a first, short iteration with a real routine in its middle...
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(100.0),
            name: "iteration".to_string(),
        });
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(120.0),
            name: "kernel".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(140.0),
            name: "kernel".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(150.0),
            name: "iteration".to_string(),
        });
        // ...another out-of-instance routine in the gap...
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(160.0),
            name: "ghost".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(190.0),
            name: "ghost".to_string(),
        });
        // ...and a second, 4x longer iteration (asymmetric on purpose).
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(200.0),
            name: "iteration".to_string(),
        });
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(280.0),
            name: "kernel".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(360.0),
            name: "kernel".to_string(),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(400.0),
            name: "iteration".to_string(),
        });

        let timeline = FoldedTimeline::fold(&t, "iteration", 5);
        assert_eq!(timeline.instances, 2);
        for bin in &timeline.bins {
            assert_ne!(
                bin.dominant_routine.as_deref(),
                Some("ghost"),
                "out-of-window routine leaked into bin at {}",
                bin.position
            );
        }
        // The real routine still dominates the middle: instance 1 has kernel
        // over [0.4, 0.8] of its window, instance 2 over [0.4, 0.8] too.
        assert_eq!(timeline.bins[2].dominant_routine.as_deref(), Some("kernel"));
        // And the edge bins saw no routine at all.
        assert_eq!(timeline.bins[0].dominant_routine, None);
    }

    /// The profiler stamps counter snapshots exactly at iteration
    /// boundaries, and stream order can place them before the `PhaseEnd` /
    /// `PhaseBegin` markers sharing that timestamp. Such an event belongs to
    /// the *next* instance's bin 0 (`t == start`), and the streaming fold
    /// must bin it there just like the old two-pass window filter did.
    #[test]
    fn boundary_timestamp_events_land_in_the_next_instances_first_bin() {
        let mut t = TraceFile::new(TraceMetadata::default());
        for i in 0..3 {
            let start = Nanos::from_millis(i as f64 * 100.0);
            let end = Nanos::from_millis((i + 1) as f64 * 100.0);
            t.push(TraceEvent::PhaseBegin {
                time: start,
                name: "iteration".to_string(),
            });
            // The boundary snapshot: stamped at `end`, pushed before the
            // markers (what Profiler::record_interval + sort_by_time yield).
            t.push(TraceEvent::Counters(CounterSnapshot {
                time: end,
                instructions: 8_000_000,
                llc_misses: 1_000,
            }));
            t.push(TraceEvent::PhaseEnd {
                time: end,
                name: "iteration".to_string(),
            });
        }
        let timeline = FoldedTimeline::fold(&t, "iteration", 10);
        assert_eq!(timeline.instances, 3);
        // Iterations 1 and 2 each start at the previous one's end timestamp
        // and inherit its boundary snapshot into bin 0.
        assert!(
            timeline.bins[0].mips > 0.0,
            "boundary snapshot lost: {:?}",
            timeline.mips_series()
        );
        assert!(timeline.bins[1..].iter().all(|b| b.mips == 0.0));
    }

    /// The fold is a single forward pass: an n-event trace is visited exactly
    /// n times, independent of how many instances it contains (the old code
    /// visited instances × n events).
    #[test]
    fn fold_visits_each_event_exactly_once() {
        let trace = repetitive_trace();
        let mut acc = FoldAccumulator::new("iteration", 10);
        for e in trace.events() {
            acc.push(e);
        }
        assert_eq!(acc.events_visited(), trace.len() as u64);
        let timeline = acc.finish();
        assert_eq!(timeline.instances, 4);
        assert_eq!(timeline, FoldedTimeline::fold(&trace, "iteration", 10));
    }

    #[test]
    fn fold_stream_matches_fold() {
        let trace = repetitive_trace();
        let streamed = FoldedTimeline::fold_stream(trace.events().iter().cloned(), "iteration", 10);
        assert_eq!(streamed, FoldedTimeline::fold(&trace, "iteration", 10));
    }
}
