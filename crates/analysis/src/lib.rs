//! # hmsim-analysis
//!
//! The Paramedir analogue: step 2 of the paper's framework.
//!
//! Given a trace produced by the profiler, this crate computes, for every
//! application data object, "(1) the cost of the memory accesses, and (2) the
//! size of the object" (paper §III, step 2). The cost is approximated by the
//! number of LLC misses attributed to the object (sample weights summed);
//! dynamically-allocated objects are identified by their allocation
//! call-stack, and when one site allocates repeatedly (a loop), the report
//! carries the *maximum* requested size observed for that site.
//!
//! The result is an [`ObjectReport`] that can be written to / read from a CSV
//! file, exactly the hand-off format between Paramedir and `hmem_advisor`,
//! plus a [`folding`] module reproducing the coarse-grained performance
//! timeline of the paper's Figure 5.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyzer;
pub mod csv;
pub mod folding;
pub mod object_stats;

pub use analyzer::{analyze_stream, analyze_trace, analyze_try_stream, ObjectStatsBuilder};
pub use folding::{FoldAccumulator, FoldedBin, FoldedTimeline};
pub use object_stats::{ObjectReport, ObjectStats, ReportedKind};
