//! Trace analysis: attribute samples to objects and aggregate per-site
//! statistics.
//!
//! The analysis is stream-native: [`ObjectStatsBuilder`] consumes one event
//! at a time in a single forward pass, so it can run over an in-memory
//! [`TraceFile`], a [`TraceReader`](hmsim_trace::TraceReader) streaming an
//! on-disk binary trace, or a merged multi-rank stream, all with identical
//! results. [`analyze_trace`] and [`analyze_stream`] are thin wrappers.

use crate::object_stats::{ObjectReport, ObjectStats, ReportedKind};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, AddressRange, ByteSize, HmResult, ObjectId};
use hmsim_trace::{ObjectClass, TraceEvent, TraceFile};
use std::borrow::Borrow;
use std::collections::HashMap;

#[derive(Clone)]
struct LiveObject {
    key: GroupKey,
    range: AddressRange,
}

/// Objects are grouped by allocation site (dynamic) or by name (static and
/// stack), matching Paramedir's behaviour of collapsing repeated allocations
/// from the same call-stack into one reported object.
#[derive(Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Site(SiteKey),
    Name(String),
}

struct Group {
    name: String,
    site: Option<SiteKey>,
    kind: ReportedKind,
    max_size: ByteSize,
    min_size: ByteSize,
    llc_misses: u64,
    samples: u64,
    allocation_count: u64,
}

/// Streaming per-object aggregation: push events one at a time, then
/// [`finish`](Self::finish) into an [`ObjectReport`].
///
/// Sample attribution prefers the object id recorded by the profiler; samples
/// lacking one are matched against the address ranges of objects live at the
/// sample's timestamp (which is how the real Extrae/Paramedir pipeline works,
/// since PEBS only reports an address).
pub struct ObjectStatsBuilder {
    application: String,
    groups: HashMap<GroupKey, Group>,
    by_id: HashMap<ObjectId, LiveObject>,
    // Live address index (linear scan on fallback attribution is fine at the
    // trace sizes the paper reports: tens of thousands of samples).
    live: Vec<(AddressRange, GroupKey)>,
    total_misses: u64,
    unattributed: u64,
    events_seen: u64,
}

impl ObjectStatsBuilder {
    /// Start a report for the named application.
    pub fn new(application: impl Into<String>) -> Self {
        ObjectStatsBuilder {
            application: application.into(),
            groups: HashMap::new(),
            by_id: HashMap::new(),
            live: Vec::new(),
            total_misses: 0,
            unattributed: 0,
            events_seen: 0,
        }
    }

    /// Consume one event.
    pub fn push(&mut self, event: &TraceEvent) {
        self.events_seen += 1;
        match event {
            TraceEvent::Alloc(a) => {
                let (key, kind) = match (a.class, &a.site) {
                    (ObjectClass::Dynamic, Some(site)) => {
                        (GroupKey::Site(site.clone()), ReportedKind::Dynamic)
                    }
                    (ObjectClass::Dynamic, None) => {
                        (GroupKey::Name(a.name.clone()), ReportedKind::Dynamic)
                    }
                    (ObjectClass::Static, _) => {
                        (GroupKey::Name(a.name.clone()), ReportedKind::Static)
                    }
                    (ObjectClass::Stack, _) => {
                        (GroupKey::Name(a.name.clone()), ReportedKind::Stack)
                    }
                };
                let range = AddressRange::new(a.address, a.size);
                let group = self.groups.entry(key.clone()).or_insert_with(|| Group {
                    name: a.name.clone(),
                    site: a.site.clone(),
                    kind,
                    max_size: ByteSize::ZERO,
                    min_size: ByteSize::from_bytes(u64::MAX),
                    llc_misses: 0,
                    samples: 0,
                    allocation_count: 0,
                });
                group.allocation_count += 1;
                group.max_size = group.max_size.max(a.size);
                group.min_size = group.min_size.min(a.size);
                self.by_id.insert(
                    a.object,
                    LiveObject {
                        key: key.clone(),
                        range,
                    },
                );
                self.live.push((range, key));
            }
            TraceEvent::Free { object, .. } => {
                if let Some(obj) = self.by_id.remove(object) {
                    self.live.retain(|(range, _)| *range != obj.range);
                }
            }
            TraceEvent::Sample(s) => {
                self.total_misses += s.weight;
                let key = match s.object.and_then(|id| self.by_id.get(&id)) {
                    Some(obj) => Some(obj.key.clone()),
                    None => lookup_by_address(&self.live, s.address),
                };
                match key {
                    Some(key) => {
                        if let Some(group) = self.groups.get_mut(&key) {
                            group.llc_misses += s.weight;
                            group.samples += 1;
                        } else {
                            self.unattributed += s.weight;
                        }
                    }
                    None => self.unattributed += s.weight,
                }
            }
            _ => {}
        }
    }

    /// Events consumed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Finalise the per-object report (sorted by descending miss count).
    pub fn finish(self) -> ObjectReport {
        let mut report = ObjectReport {
            application: self.application,
            objects: self
                .groups
                .into_values()
                .map(|g| ObjectStats {
                    name: g.name,
                    site: g.site,
                    kind: g.kind,
                    max_size: g.max_size,
                    min_size: if g.min_size.bytes() == u64::MAX {
                        ByteSize::ZERO
                    } else {
                        g.min_size
                    },
                    llc_misses: g.llc_misses,
                    samples: g.samples,
                    allocation_count: g.allocation_count,
                })
                .collect(),
            total_misses: self.total_misses,
            unattributed_misses: self.unattributed,
        };
        report.sort_by_misses();
        report
    }
}

/// Analyse an in-memory trace into a per-object report (single forward pass
/// over [`ObjectStatsBuilder`]).
pub fn analyze_trace(trace: &TraceFile) -> ObjectReport {
    analyze_stream(trace.metadata.application.clone(), trace.events())
}

/// Analyse any infallible event stream (e.g. an iterator over in-memory
/// events, or a merged multi-rank stream with the events extracted) without
/// materialising it. For a fallible source such as a
/// [`TraceReader`](hmsim_trace::TraceReader), use [`analyze_try_stream`].
pub fn analyze_stream<E: Borrow<TraceEvent>>(
    application: impl Into<String>,
    events: impl IntoIterator<Item = E>,
) -> ObjectReport {
    let mut builder = ObjectStatsBuilder::new(application);
    for e in events {
        builder.push(e.borrow());
    }
    builder.finish()
}

/// Analyse a fallible event stream — e.g. a
/// [`TraceReader`](hmsim_trace::TraceReader) streaming an on-disk binary
/// trace — stopping at the first error.
pub fn analyze_try_stream(
    application: impl Into<String>,
    events: impl IntoIterator<Item = HmResult<TraceEvent>>,
) -> HmResult<ObjectReport> {
    let mut builder = ObjectStatsBuilder::new(application);
    for e in events {
        builder.push(&e?);
    }
    Ok(builder.finish())
}

fn lookup_by_address(live: &[(AddressRange, GroupKey)], addr: Address) -> Option<GroupKey> {
    live.iter()
        .find(|(range, _)| range.contains(addr))
        .map(|(_, key)| key.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::Nanos;
    use hmsim_trace::{AllocationRecord, SampleRecord, TraceMetadata};

    #[allow(clippy::too_many_arguments)]
    fn alloc(
        t: &mut TraceFile,
        id: u32,
        name: &str,
        class: ObjectClass,
        site: Option<&str>,
        start: u64,
        size: ByteSize,
        time_ms: f64,
    ) {
        t.push(TraceEvent::Alloc(AllocationRecord {
            time: Nanos::from_millis(time_ms),
            object: ObjectId(id),
            class,
            name: name.to_string(),
            site: site.map(SiteKey::from_text),
            address: Address(start),
            size,
        }));
    }

    fn sample(t: &mut TraceFile, addr: u64, obj: Option<u32>, weight: u64, time_ms: f64) {
        t.push(TraceEvent::Sample(SampleRecord {
            time: Nanos::from_millis(time_ms),
            address: Address(addr),
            object: obj.map(ObjectId),
            weight,
            latency_cycles: None,
        }));
    }

    #[test]
    fn samples_are_attributed_and_sorted() {
        let mut t = TraceFile::new(TraceMetadata::default());
        alloc(
            &mut t,
            0,
            "matrix",
            ObjectClass::Dynamic,
            Some("app!m+0x1"),
            0x100000,
            ByteSize::from_mib(8),
            0.0,
        );
        alloc(
            &mut t,
            1,
            "vector",
            ObjectClass::Dynamic,
            Some("app!v+0x2"),
            0x900000,
            ByteSize::from_mib(1),
            0.0,
        );
        for i in 0..9 {
            sample(&mut t, 0x100000 + i * 64, Some(0), 1000, 1.0 + i as f64);
        }
        sample(&mut t, 0x900040, Some(1), 1000, 10.0);
        let report = analyze_trace(&t);
        assert_eq!(report.objects.len(), 2);
        assert_eq!(report.objects[0].name, "matrix");
        assert_eq!(report.objects[0].llc_misses, 9000);
        assert_eq!(report.objects[0].samples, 9);
        assert_eq!(report.objects[1].llc_misses, 1000);
        assert_eq!(report.total_misses, 10_000);
        assert_eq!(report.unattributed_misses, 0);
    }

    #[test]
    fn address_fallback_attribution_works_without_object_ids() {
        let mut t = TraceFile::new(TraceMetadata::default());
        alloc(
            &mut t,
            0,
            "grid",
            ObjectClass::Dynamic,
            Some("app!g+0x1"),
            0x200000,
            ByteSize::from_mib(4),
            0.0,
        );
        sample(&mut t, 0x200000 + 4096, None, 500, 1.0);
        sample(&mut t, 0xdead0000, None, 500, 2.0);
        let report = analyze_trace(&t);
        assert_eq!(report.objects[0].llc_misses, 500);
        assert_eq!(report.unattributed_misses, 500);
        assert_eq!(report.total_misses, 1000);
    }

    #[test]
    fn repeated_allocations_from_one_site_report_max_size() {
        let mut t = TraceFile::new(TraceMetadata::default());
        // A loop allocating/freeing from the same site with growing sizes.
        for (i, mib) in [1u64, 8, 4].iter().enumerate() {
            let id = i as u32;
            alloc(
                &mut t,
                id,
                "workbuf",
                ObjectClass::Dynamic,
                Some("app!loop_alloc+0x10"),
                0x300000 + i as u64 * 0x100_0000,
                ByteSize::from_mib(*mib),
                i as f64,
            );
            t.push(TraceEvent::Free {
                time: Nanos::from_millis(i as f64 + 0.5),
                object: ObjectId(id),
                address: Address(0x300000 + i as u64 * 0x100_0000),
            });
        }
        let report = analyze_trace(&t);
        assert_eq!(report.objects.len(), 1, "one site -> one reported object");
        let o = &report.objects[0];
        assert_eq!(o.allocation_count, 3);
        assert_eq!(o.max_size, ByteSize::from_mib(8));
        assert_eq!(o.min_size, ByteSize::from_mib(1));
    }

    #[test]
    fn static_objects_group_by_name_and_are_not_promotable() {
        let mut t = TraceFile::new(TraceMetadata::default());
        alloc(
            &mut t,
            0,
            "common_u",
            ObjectClass::Static,
            None,
            0x600000,
            ByteSize::from_mib(64),
            0.0,
        );
        sample(&mut t, 0x600000 + 100, Some(0), 2000, 1.0);
        let report = analyze_trace(&t);
        assert_eq!(report.objects[0].kind, ReportedKind::Static);
        assert!(!report.objects[0].promotable());
        assert_eq!(report.objects[0].llc_misses, 2000);
    }

    #[test]
    fn samples_after_free_are_unattributed() {
        let mut t = TraceFile::new(TraceMetadata::default());
        alloc(
            &mut t,
            0,
            "temp",
            ObjectClass::Dynamic,
            Some("app!t+0x1"),
            0x400000,
            ByteSize::from_mib(1),
            0.0,
        );
        t.push(TraceEvent::Free {
            time: Nanos::from_millis(5.0),
            object: ObjectId(0),
            address: Address(0x400000),
        });
        sample(&mut t, 0x400100, None, 700, 6.0);
        let report = analyze_trace(&t);
        assert_eq!(report.unattributed_misses, 700);
        assert_eq!(report.objects[0].llc_misses, 0);
    }

    #[test]
    fn empty_trace_gives_empty_report() {
        let report = analyze_trace(&TraceFile::new(TraceMetadata::default()));
        assert!(report.objects.is_empty());
        assert_eq!(report.total_misses, 0);
    }
}
