//! Per-object statistics and the report consumed by the advisor.

use hmsim_callstack::SiteKey;
use hmsim_common::ByteSize;

/// Object kind as reported to the advisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReportedKind {
    /// Statically allocated variable (cannot be promoted automatically).
    Static,
    /// Dynamically allocated object (promotable by `auto-hbwmalloc`).
    Dynamic,
    /// Stack storage (cannot be promoted automatically).
    Stack,
}

impl ReportedKind {
    /// Short code used in the CSV format.
    pub fn code(self) -> &'static str {
        match self {
            ReportedKind::Static => "static",
            ReportedKind::Dynamic => "dynamic",
            ReportedKind::Stack => "stack",
        }
    }

    /// Parse the CSV code.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "static" => Some(ReportedKind::Static),
            "dynamic" => Some(ReportedKind::Dynamic),
            "stack" => Some(ReportedKind::Stack),
            _ => None,
        }
    }
}

/// Aggregated statistics of one data object (one allocation *site* for
/// dynamic objects, one named variable for static/stack ones).
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectStats {
    /// Human-readable name (variable name or site label).
    pub name: String,
    /// Allocation call-stack key, for dynamic objects.
    pub site: Option<SiteKey>,
    /// Object kind.
    pub kind: ReportedKind,
    /// Maximum requested size observed for this site/variable.
    pub max_size: ByteSize,
    /// Smallest requested size observed (used by `auto-hbwmalloc` to derive
    /// its lb_size/ub_size fast filters).
    pub min_size: ByteSize,
    /// LLC misses attributed to the object (sample weights summed).
    pub llc_misses: u64,
    /// Raw PEBS samples attributed to the object.
    pub samples: u64,
    /// Number of distinct allocations observed for this site.
    pub allocation_count: u64,
}

impl ObjectStats {
    /// Profit density: misses per byte — the ranking key of the advisor's
    /// *Density* strategy.
    pub fn density(&self) -> f64 {
        if self.max_size.is_zero() {
            0.0
        } else {
            self.llc_misses as f64 / self.max_size.bytes() as f64
        }
    }

    /// Whether the automatic framework can promote this object.
    pub fn promotable(&self) -> bool {
        self.kind == ReportedKind::Dynamic
    }
}

/// The full per-object report for one profiled run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObjectReport {
    /// Application the report belongs to.
    pub application: String,
    /// Per-object statistics, sorted by descending LLC misses.
    pub objects: Vec<ObjectStats>,
    /// Total LLC misses represented in the trace (including unattributed).
    pub total_misses: u64,
    /// Misses that could not be attributed to any object.
    pub unattributed_misses: u64,
}

impl ObjectReport {
    /// Sort objects by descending miss count (the advisor expects this).
    pub fn sort_by_misses(&mut self) {
        self.objects.sort_by(|a, b| {
            b.llc_misses
                .cmp(&a.llc_misses)
                .then_with(|| a.name.cmp(&b.name))
        });
    }

    /// The fraction of total misses attributed to each object, aligned with
    /// `objects`.
    pub fn miss_fractions(&self) -> Vec<f64> {
        let total = self.total_misses.max(1) as f64;
        self.objects
            .iter()
            .map(|o| o.llc_misses as f64 / total)
            .collect()
    }

    /// Look up an object by name.
    pub fn by_name(&self, name: &str) -> Option<&ObjectStats> {
        self.objects.iter().find(|o| o.name == name)
    }

    /// Total size of all reported objects (max sizes summed).
    pub fn total_size(&self) -> ByteSize {
        self.objects.iter().map(|o| o.max_size).sum()
    }

    /// Only the promotable (dynamic) objects.
    pub fn promotable(&self) -> impl Iterator<Item = &ObjectStats> {
        self.objects.iter().filter(|o| o.promotable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, kind: ReportedKind, misses: u64, mib: u64) -> ObjectStats {
        ObjectStats {
            name: name.to_string(),
            site: None,
            kind,
            max_size: ByteSize::from_mib(mib),
            min_size: ByteSize::from_mib(mib),
            llc_misses: misses,
            samples: misses / 1000,
            allocation_count: 1,
        }
    }

    #[test]
    fn density_ranks_small_hot_objects_higher() {
        let hot_small = stats("a", ReportedKind::Dynamic, 1_000_000, 10);
        let hot_large = stats("b", ReportedKind::Dynamic, 1_000_000, 100);
        assert!(hot_small.density() > hot_large.density());
        let empty = stats("c", ReportedKind::Dynamic, 10, 0);
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    fn report_sorting_and_fractions() {
        let mut r = ObjectReport {
            application: "x".to_string(),
            objects: vec![
                stats("cold", ReportedKind::Dynamic, 100, 1),
                stats("hot", ReportedKind::Dynamic, 900, 1),
            ],
            total_misses: 1000,
            unattributed_misses: 0,
        };
        r.sort_by_misses();
        assert_eq!(r.objects[0].name, "hot");
        let fr = r.miss_fractions();
        assert!((fr[0] - 0.9).abs() < 1e-12);
        assert_eq!(r.by_name("cold").unwrap().llc_misses, 100);
        assert_eq!(r.total_size(), ByteSize::from_mib(2));
    }

    #[test]
    fn promotable_filters_static_and_stack() {
        let r = ObjectReport {
            application: "x".to_string(),
            objects: vec![
                stats("d", ReportedKind::Dynamic, 10, 1),
                stats("s", ReportedKind::Static, 20, 1),
                stats("k", ReportedKind::Stack, 30, 1),
            ],
            total_misses: 60,
            unattributed_misses: 0,
        };
        let names: Vec<&str> = r.promotable().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["d"]);
        assert!(!r.objects[1].promotable());
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            ReportedKind::Static,
            ReportedKind::Dynamic,
            ReportedKind::Stack,
        ] {
            assert_eq!(ReportedKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ReportedKind::from_code("heap"), None);
    }
}
