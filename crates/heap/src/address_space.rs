//! Layout of the simulated process virtual address space.
//!
//! The space is carved into fixed, non-overlapping regions mirroring a Linux
//! process image: static data (`.data`/`.bss`), the thread stacks, and one
//! heap arena per memory tier (glibc's DDR heap and memkind's MCDRAM heap
//! live in different parts of the address space, which is how the profiler
//! can tell them apart by address alone).

use hmsim_common::{Address, AddressRange, ByteSize, HmError, HmResult, TierId};

/// Kind of an address-space region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Statically allocated data (`.data`, `.bss`, Fortran COMMON blocks).
    Static,
    /// Thread stacks (automatic variables, register spill slots).
    Stack,
    /// The dynamic heap arena backed by the given tier.
    Heap(TierId),
}

/// One contiguous region of the simulated address space.
#[derive(Clone, Debug)]
struct Region {
    kind: RegionKind,
    range: AddressRange,
    /// Bump cursor used when carving object ranges out of static/stack
    /// regions (heap regions are managed by the free-list allocators).
    cursor: u64,
}

/// The full address-space layout of one simulated process.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    regions: Vec<Region>,
}

impl AddressSpace {
    /// Base of the static data region.
    pub const STATIC_BASE: u64 = 0x0000_0060_0000;
    /// Base of the stack region (grows upwards in the model for simplicity).
    pub const STACK_BASE: u64 = 0x7ffd_0000_0000;
    /// Base of the DDR heap arena.
    pub const DDR_HEAP_BASE: u64 = 0x7f10_0000_0000;
    /// Base of the MCDRAM (memkind) heap arena.
    pub const MCDRAM_HEAP_BASE: u64 = 0x7e10_0000_0000;
    /// Base used for heaps of additional tiers (NVM, …), spaced 1 TiB apart.
    pub const EXTRA_HEAP_BASE: u64 = 0x7c10_0000_0000;

    /// Create a layout with the given region capacities.
    pub fn new(
        static_size: ByteSize,
        stack_size: ByteSize,
        heap_tiers: &[(TierId, ByteSize)],
    ) -> HmResult<AddressSpace> {
        let mut regions = vec![
            Region {
                kind: RegionKind::Static,
                range: AddressRange::new(Address(Self::STATIC_BASE), static_size),
                cursor: 0,
            },
            Region {
                kind: RegionKind::Stack,
                range: AddressRange::new(Address(Self::STACK_BASE), stack_size),
                cursor: 0,
            },
        ];
        for (i, (tier, size)) in heap_tiers.iter().enumerate() {
            let base = match *tier {
                TierId::DDR => Self::DDR_HEAP_BASE,
                TierId::MCDRAM => Self::MCDRAM_HEAP_BASE,
                _ => Self::EXTRA_HEAP_BASE + (i as u64) * (1 << 40),
            };
            regions.push(Region {
                kind: RegionKind::Heap(*tier),
                range: AddressRange::new(Address(base), *size),
                cursor: 0,
            });
        }
        // Verify no overlaps.
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                if a.range.overlaps(&b.range) {
                    return Err(HmError::Config(format!(
                        "address-space regions overlap: {:?} and {:?}",
                        a.kind, b.kind
                    )));
                }
            }
        }
        Ok(AddressSpace { regions })
    }

    /// A layout sized for the KNL node used in the paper: 2 GiB static,
    /// 512 MiB of stacks, heap arenas matching the tier capacities.
    pub fn knl_default() -> AddressSpace {
        AddressSpace::new(
            ByteSize::from_gib(2),
            ByteSize::from_mib(512),
            &[
                (TierId::DDR, ByteSize::from_gib(96)),
                (TierId::MCDRAM, ByteSize::from_gib(16)),
            ],
        )
        .expect("default layout is consistent")
    }

    /// The full range of a region.
    pub fn region(&self, kind: RegionKind) -> Option<AddressRange> {
        self.regions
            .iter()
            .find(|r| r.kind == kind)
            .map(|r| r.range)
    }

    /// Which region an address belongs to.
    pub fn region_of(&self, addr: Address) -> Option<RegionKind> {
        self.regions
            .iter()
            .find(|r| r.range.contains(addr))
            .map(|r| r.kind)
    }

    /// Carve a new sub-range out of the static or stack region (bump
    /// allocation; static/automatic variables are never freed individually).
    pub fn carve(&mut self, kind: RegionKind, size: ByteSize) -> HmResult<AddressRange> {
        if matches!(kind, RegionKind::Heap(_)) {
            return Err(HmError::InvalidState(
                "heap regions are managed by the tier allocators, not carved".into(),
            ));
        }
        let region = self
            .regions
            .iter_mut()
            .find(|r| r.kind == kind)
            .ok_or_else(|| HmError::NotFound(format!("region {kind:?}")))?;
        let aligned = size.page_aligned();
        if region.cursor + aligned.bytes() > region.range.len.bytes() {
            return Err(HmError::OutOfMemory {
                tier: format!("{kind:?}"),
                requested: aligned.bytes(),
                available: region.range.len.bytes() - region.cursor,
            });
        }
        let start = region.range.start.offset(region.cursor);
        region.cursor += aligned.bytes();
        Ok(AddressRange::new(start, size))
    }

    /// Bytes already carved from a region.
    pub fn carved(&self, kind: RegionKind) -> ByteSize {
        self.regions
            .iter()
            .find(|r| r.kind == kind)
            .map(|r| ByteSize::from_bytes(r.cursor))
            .unwrap_or(ByteSize::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_has_all_regions() {
        let a = AddressSpace::knl_default();
        assert!(a.region(RegionKind::Static).is_some());
        assert!(a.region(RegionKind::Stack).is_some());
        assert!(a.region(RegionKind::Heap(TierId::DDR)).is_some());
        assert!(a.region(RegionKind::Heap(TierId::MCDRAM)).is_some());
    }

    #[test]
    fn regions_do_not_overlap_and_classify_addresses() {
        let a = AddressSpace::knl_default();
        let ddr = a.region(RegionKind::Heap(TierId::DDR)).unwrap();
        let mc = a.region(RegionKind::Heap(TierId::MCDRAM)).unwrap();
        assert!(!ddr.overlaps(&mc));
        assert_eq!(a.region_of(ddr.start), Some(RegionKind::Heap(TierId::DDR)));
        assert_eq!(
            a.region_of(mc.start),
            Some(RegionKind::Heap(TierId::MCDRAM))
        );
        assert_eq!(a.region_of(Address(0x10)), None);
    }

    #[test]
    fn carving_static_ranges_bumps_cursor() {
        let mut a = AddressSpace::knl_default();
        let r1 = a.carve(RegionKind::Static, ByteSize::from_mib(1)).unwrap();
        let r2 = a.carve(RegionKind::Static, ByteSize::from_mib(2)).unwrap();
        assert!(!r1.overlaps(&r2));
        assert_eq!(a.region_of(r1.start), Some(RegionKind::Static));
        assert_eq!(a.carved(RegionKind::Static), ByteSize::from_mib(3));
    }

    #[test]
    fn carving_beyond_capacity_fails() {
        let mut a = AddressSpace::new(
            ByteSize::from_mib(1),
            ByteSize::from_mib(1),
            &[(TierId::DDR, ByteSize::from_mib(8))],
        )
        .unwrap();
        assert!(a.carve(RegionKind::Static, ByteSize::from_mib(2)).is_err());
        assert!(a
            .carve(RegionKind::Heap(TierId::DDR), ByteSize::from_kib(4))
            .is_err());
    }
}
