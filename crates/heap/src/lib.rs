//! # hmsim-heap
//!
//! The simulated process memory substrate: a virtual address space carved
//! into static/stack/per-tier-heap regions, real free-list allocators with
//! capacity caps standing in for glibc malloc and memkind's `hbw_malloc`,
//! a registry of live data objects (what Extrae's allocation instrumentation
//! sees), and the process-level heap façade that `auto-hbwmalloc` interposes
//! on.
//!
//! Everything placement-related is reflected into an `hmsim-machine`
//! [`hmsim_machine::PageTable`] so that both execution engines know which
//! tier serves which page.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod address_space;
pub mod freelist;
pub mod object;
pub mod process_heap;
pub mod registry;
pub mod tier_alloc;

pub use address_space::{AddressSpace, RegionKind};
pub use freelist::FreeListAllocator;
pub use object::{DataObject, ObjectKind};
pub use process_heap::ProcessHeap;
pub use registry::LiveObjectRegistry;
pub use tier_alloc::{AllocCostModel, TierAllocStats, TierAllocator};
