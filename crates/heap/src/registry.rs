//! Registry of live data objects.
//!
//! This is the data structure behind Extrae's address-to-object correlation:
//! it "registers the allocated address range through the returned pointer and
//! the size of the allocation" and later matches sampled addresses "against
//! the previously allocated object's address ranges" (paper §III, step 1).

use crate::object::DataObject;
use hmsim_common::{Address, ByteSize, HmError, HmResult, ObjectId};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Live-object registry with address-range lookup.
#[derive(Clone, Debug, Default)]
pub struct LiveObjectRegistry {
    /// Objects by id (live and historical).
    objects: HashMap<ObjectId, DataObject>,
    /// Live objects ordered by start address (for range lookup).
    by_start: BTreeMap<u64, ObjectId>,
    next_id: u32,
}

impl LiveObjectRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the next object id.
    pub fn next_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Register a new live object. Fails if its range overlaps a live object.
    pub fn insert(&mut self, object: DataObject) -> HmResult<()> {
        if self.find_containing(object.range.start).is_some() {
            return Err(HmError::InvalidState(format!(
                "object {} overlaps a live allocation at {}",
                object.name, object.range.start
            )));
        }
        self.by_start.insert(object.range.start.value(), object.id);
        self.objects.insert(object.id, object);
        Ok(())
    }

    /// Mark the live object starting at `addr` as freed at time `freed_at`
    /// and remove it from the address index. Returns its id and size.
    pub fn remove_by_start(
        &mut self,
        addr: Address,
        freed_at: hmsim_common::Nanos,
    ) -> HmResult<(ObjectId, ByteSize)> {
        let id = self
            .by_start
            .remove(&addr.value())
            .ok_or(HmError::UnknownAddress(addr.value()))?;
        let obj = self.objects.get_mut(&id).expect("indexed object exists");
        obj.freed_at = Some(freed_at);
        Ok((id, obj.size()))
    }

    /// Find the *live* object whose range contains `addr`.
    pub fn find_containing(&self, addr: Address) -> Option<&DataObject> {
        // Candidate: the live object with the greatest start <= addr.
        let (_, id) = self.by_start.range(..=addr.value()).next_back()?;
        let obj = self.objects.get(id)?;
        obj.range.contains(addr).then_some(obj)
    }

    /// Get an object (live or historical) by id.
    pub fn get(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.get(&id)
    }

    /// Record that the *live* object `id` now resides in `tier` (the page
    /// migration itself is the heap's job; this keeps the metadata in sync).
    pub fn set_tier(&mut self, id: ObjectId, tier: hmsim_common::TierId) -> HmResult<()> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or_else(|| HmError::NotFound(format!("{id:?}")))?;
        if obj.freed_at.is_some() {
            return Err(HmError::InvalidState(format!(
                "object {} ({id:?}) was already freed",
                obj.name
            )));
        }
        obj.tier = tier;
        Ok(())
    }

    /// All objects ever registered (live and freed), in id order.
    pub fn all(&self) -> Vec<&DataObject> {
        let mut v: Vec<&DataObject> = self.objects.values().collect();
        v.sort_by_key(|o| o.id);
        v
    }

    /// All currently live objects.
    pub fn live(&self) -> Vec<&DataObject> {
        self.by_start
            .values()
            .filter_map(|id| self.objects.get(id))
            .collect()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.by_start.len()
    }

    /// Total size of live objects.
    pub fn live_bytes(&self) -> ByteSize {
        self.live().iter().map(|o| o.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;
    use hmsim_common::{AddressRange, Nanos, TierId};

    fn make(reg: &mut LiveObjectRegistry, start: u64, size_kib: u64) -> ObjectId {
        let id = reg.next_id();
        reg.insert(DataObject {
            id,
            name: format!("obj{start:x}"),
            kind: ObjectKind::Dynamic,
            site: None,
            range: AddressRange::new(Address(start), ByteSize::from_kib(size_kib)),
            tier: TierId::DDR,
            allocated_at: Nanos::ZERO,
            freed_at: None,
        })
        .unwrap();
        id
    }

    #[test]
    fn containing_lookup_finds_the_right_object() {
        let mut reg = LiveObjectRegistry::new();
        let a = make(&mut reg, 0x10000, 4);
        let b = make(&mut reg, 0x20000, 8);
        assert_eq!(reg.find_containing(Address(0x10000)).unwrap().id, a);
        assert_eq!(reg.find_containing(Address(0x10fff)).unwrap().id, a);
        assert!(reg.find_containing(Address(0x11000)).is_none());
        assert_eq!(reg.find_containing(Address(0x21000)).unwrap().id, b);
        assert!(reg.find_containing(Address(0x9000)).is_none());
        assert_eq!(reg.live_count(), 2);
        assert_eq!(reg.live_bytes(), ByteSize::from_kib(12));
    }

    #[test]
    fn remove_marks_freed_and_unindexes() {
        let mut reg = LiveObjectRegistry::new();
        let a = make(&mut reg, 0x10000, 4);
        let (removed, size) = reg
            .remove_by_start(Address(0x10000), Nanos::from_millis(3.0))
            .unwrap();
        assert_eq!(removed, a);
        assert_eq!(size, ByteSize::from_kib(4));
        assert!(reg.find_containing(Address(0x10000)).is_none());
        // The historical record survives with its free timestamp.
        let hist = reg.get(a).unwrap();
        assert_eq!(hist.freed_at, Some(Nanos::from_millis(3.0)));
        assert_eq!(reg.all().len(), 1);
        assert_eq!(reg.live_count(), 0);
    }

    #[test]
    fn removing_unknown_address_fails() {
        let mut reg = LiveObjectRegistry::new();
        assert!(reg.remove_by_start(Address(0x999), Nanos::ZERO).is_err());
    }

    #[test]
    fn address_reuse_after_free_is_allowed() {
        let mut reg = LiveObjectRegistry::new();
        make(&mut reg, 0x10000, 4);
        reg.remove_by_start(Address(0x10000), Nanos::ZERO).unwrap();
        let b = make(&mut reg, 0x10000, 8);
        assert_eq!(reg.find_containing(Address(0x10400)).unwrap().id, b);
        assert_eq!(reg.all().len(), 2, "history keeps both generations");
    }
}
