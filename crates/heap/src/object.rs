//! Data-object metadata.
//!
//! A *data object* is one allocation the framework can reason about: a
//! dynamically allocated buffer (identified by its allocation call-stack), a
//! static variable (identified by its symbol name) or an automatic/stack
//! region. Only dynamic objects can be promoted by `auto-hbwmalloc`; static
//! and stack objects can only move to MCDRAM wholesale via `numactl -p 1` or
//! implicitly via cache mode — a distinction that drives several of the
//! paper's results (BT, CGPOP, SNAP).

use hmsim_callstack::SiteKey;
use hmsim_common::{AddressRange, ByteSize, Nanos, ObjectId, TierId};

/// How a data object was created.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Statically allocated (`.data`/`.bss`/COMMON); named, never freed.
    Static,
    /// Dynamically allocated through malloc/new/allocate; keyed by call-stack.
    Dynamic,
    /// Automatic (stack) storage, including register spill slots.
    Stack,
}

impl ObjectKind {
    /// Whether the interposition library can redirect this object to another
    /// tier (only dynamic allocations can be intercepted).
    pub fn promotable(self) -> bool {
        matches!(self, ObjectKind::Dynamic)
    }
}

/// One live (or historical) data object of the simulated process.
#[derive(Clone, Debug)]
pub struct DataObject {
    /// Unique id of this allocation instance.
    pub id: ObjectId,
    /// Human-readable name: the variable name for static objects, a label
    /// derived from the allocation site for dynamic ones.
    pub name: String,
    /// How the object was created.
    pub kind: ObjectKind,
    /// Allocation call-stack key (dynamic objects only).
    pub site: Option<SiteKey>,
    /// The address range the object occupies.
    pub range: AddressRange,
    /// The tier its pages currently live in.
    pub tier: TierId,
    /// Allocation timestamp.
    pub allocated_at: Nanos,
    /// Deallocation timestamp, if it has been freed.
    pub freed_at: Option<Nanos>,
}

impl DataObject {
    /// Size of the object.
    pub fn size(&self) -> ByteSize {
        self.range.len
    }

    /// Whether the object is still live at time `t`.
    pub fn live_at(&self, t: Nanos) -> bool {
        t >= self.allocated_at && self.freed_at.map(|f| t < f).unwrap_or(true)
    }

    /// Whether this object can be promoted by the interposition library.
    pub fn promotable(&self) -> bool {
        self.kind.promotable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::Address;

    fn obj(kind: ObjectKind) -> DataObject {
        DataObject {
            id: ObjectId(1),
            name: "x".to_string(),
            kind,
            site: None,
            range: AddressRange::new(Address(0x1000), ByteSize::from_kib(64)),
            tier: TierId::DDR,
            allocated_at: Nanos::from_millis(10.0),
            freed_at: Some(Nanos::from_millis(50.0)),
        }
    }

    #[test]
    fn only_dynamic_objects_are_promotable() {
        assert!(ObjectKind::Dynamic.promotable());
        assert!(!ObjectKind::Static.promotable());
        assert!(!ObjectKind::Stack.promotable());
        assert!(obj(ObjectKind::Dynamic).promotable());
        assert!(!obj(ObjectKind::Static).promotable());
    }

    #[test]
    fn liveness_window() {
        let o = obj(ObjectKind::Dynamic);
        assert!(!o.live_at(Nanos::from_millis(5.0)));
        assert!(o.live_at(Nanos::from_millis(10.0)));
        assert!(o.live_at(Nanos::from_millis(49.9)));
        assert!(!o.live_at(Nanos::from_millis(50.0)));

        let mut forever = obj(ObjectKind::Static);
        forever.freed_at = None;
        assert!(forever.live_at(Nanos::from_secs(100.0)));
    }

    #[test]
    fn size_matches_range() {
        assert_eq!(obj(ObjectKind::Dynamic).size(), ByteSize::from_kib(64));
    }
}
