//! First-fit free-list allocator with coalescing.
//!
//! Each memory tier's heap arena is managed by one of these. It hands out
//! address ranges from a fixed arena, merges adjacent free blocks on `free`,
//! and tracks usage statistics. The goal is behavioural fidelity (addresses
//! are stable, reuse happens, fragmentation exists) rather than raw speed.

use hmsim_common::{Address, AddressRange, ByteSize, HighWaterMark, HmError, HmResult};
use std::collections::BTreeMap;

/// Allocation granularity (16 bytes, glibc-like minimum alignment).
const MIN_ALIGN: u64 = 16;

/// A free-list allocator over one contiguous arena.
#[derive(Clone, Debug)]
pub struct FreeListAllocator {
    arena: AddressRange,
    /// Free blocks keyed by start address → length.
    free: BTreeMap<u64, u64>,
    /// Live blocks keyed by start address → length (needed to validate and
    /// size `free()` calls, like malloc's hidden header).
    live: BTreeMap<u64, u64>,
    hwm: HighWaterMark,
    allocations: u64,
    frees: u64,
    failed: u64,
}

impl FreeListAllocator {
    /// Create an allocator owning `arena`.
    pub fn new(arena: AddressRange) -> Self {
        let mut free = BTreeMap::new();
        free.insert(arena.start.value(), arena.len.bytes());
        FreeListAllocator {
            arena,
            free,
            live: BTreeMap::new(),
            hwm: HighWaterMark::new(),
            allocations: 0,
            frees: 0,
            failed: 0,
        }
    }

    /// The arena this allocator manages.
    pub fn arena(&self) -> AddressRange {
        self.arena
    }

    /// Round a request up to the allocation granularity.
    fn rounded(size: ByteSize) -> u64 {
        size.bytes().max(1).next_multiple_of(MIN_ALIGN)
    }

    /// Allocate `size` bytes (first-fit). Returns the range actually
    /// reserved (length equals the requested size; internal rounding is
    /// hidden, like malloc).
    pub fn alloc(&mut self, size: ByteSize) -> HmResult<AddressRange> {
        self.alloc_aligned(size, MIN_ALIGN)
    }

    /// Allocate with an explicit power-of-two alignment (posix_memalign).
    pub fn alloc_aligned(&mut self, size: ByteSize, align: u64) -> HmResult<AddressRange> {
        let align = align.max(MIN_ALIGN);
        if !align.is_power_of_two() {
            return Err(HmError::Config(format!(
                "alignment {align} is not a power of two"
            )));
        }
        let need = Self::rounded(size);
        // First fit over free blocks that can satisfy size after aligning.
        let candidate = self.free.iter().find_map(|(&start, &len)| {
            let aligned_start = start.next_multiple_of(align);
            let pad = aligned_start - start;
            (len >= pad + need).then_some((start, len, aligned_start, pad))
        });
        let (block_start, block_len, aligned_start, pad) = match candidate {
            Some(c) => c,
            None => {
                self.failed += 1;
                return Err(HmError::OutOfMemory {
                    tier: "arena".to_string(),
                    requested: need,
                    available: self.free_bytes().bytes(),
                });
            }
        };
        self.free.remove(&block_start);
        if pad > 0 {
            self.free.insert(block_start, pad);
        }
        let remainder = block_len - pad - need;
        if remainder > 0 {
            self.free.insert(aligned_start + need, remainder);
        }
        self.live.insert(aligned_start, need);
        self.hwm.grow(ByteSize::from_bytes(need));
        self.allocations += 1;
        Ok(AddressRange::new(Address(aligned_start), size))
    }

    /// Free a previously allocated block by its start address. Returns the
    /// number of bytes released.
    pub fn free(&mut self, addr: Address) -> HmResult<ByteSize> {
        let start = addr.value();
        let len = self
            .live
            .remove(&start)
            .ok_or(HmError::UnknownAddress(start))?;
        self.hwm.shrink(ByteSize::from_bytes(len));
        self.frees += 1;
        // Insert and coalesce with neighbours.
        let mut new_start = start;
        let mut new_len = len;
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                new_start = prev_start;
                new_len += prev_len;
            }
        }
        if let Some((&next_start, &next_len)) = self.free.range(start + len..).next() {
            if start + len == next_start {
                self.free.remove(&next_start);
                new_len += next_len;
            }
        }
        self.free.insert(new_start, new_len);
        Ok(ByteSize::from_bytes(len))
    }

    /// Whether `addr` is the start of a live allocation.
    pub fn owns(&self, addr: Address) -> bool {
        self.live.contains_key(&addr.value())
    }

    /// The size recorded for a live allocation.
    pub fn size_of(&self, addr: Address) -> Option<ByteSize> {
        self.live
            .get(&addr.value())
            .map(|l| ByteSize::from_bytes(*l))
    }

    /// Bytes currently allocated (after internal rounding).
    pub fn used_bytes(&self) -> ByteSize {
        self.hwm.current()
    }

    /// Peak bytes ever allocated.
    pub fn hwm(&self) -> ByteSize {
        self.hwm.peak()
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.free.values().sum())
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Number of distinct free blocks (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Total successful allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total frees.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Allocation failures (requests that did not fit).
    pub fn failures(&self) -> u64 {
        self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(size_kib: u64) -> FreeListAllocator {
        FreeListAllocator::new(AddressRange::new(
            Address(0x1000_0000),
            ByteSize::from_kib(size_kib),
        ))
    }

    #[test]
    fn alloc_free_roundtrip_restores_capacity() {
        let mut a = arena(64);
        let total_free = a.free_bytes();
        let r = a.alloc(ByteSize::from_kib(4)).unwrap();
        assert!(a.owns(r.start));
        assert_eq!(a.size_of(r.start), Some(ByteSize::from_kib(4)));
        assert_eq!(a.live_count(), 1);
        a.free(r.start).unwrap();
        assert_eq!(a.free_bytes(), total_free);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.fragments(), 1, "coalescing must restore a single block");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = arena(64);
        let mut ranges = Vec::new();
        for i in 1..=10u64 {
            ranges.push(a.alloc(ByteSize::from_bytes(i * 100)).unwrap());
        }
        for (i, r1) in ranges.iter().enumerate() {
            for r2 in &ranges[i + 1..] {
                assert!(!r1.overlaps(r2), "{r1:?} overlaps {r2:?}");
            }
        }
    }

    #[test]
    fn free_coalesces_with_both_neighbours() {
        let mut a = arena(64);
        let r1 = a.alloc(ByteSize::from_kib(1)).unwrap();
        let r2 = a.alloc(ByteSize::from_kib(1)).unwrap();
        let r3 = a.alloc(ByteSize::from_kib(1)).unwrap();
        a.free(r1.start).unwrap();
        a.free(r3.start).unwrap();
        // Freeing the middle block must merge all three plus the tail.
        a.free(r2.start).unwrap();
        assert_eq!(a.fragments(), 1);
    }

    #[test]
    fn out_of_memory_reports_failure() {
        let mut a = arena(8);
        assert!(a.alloc(ByteSize::from_kib(4)).is_ok());
        let err = a.alloc(ByteSize::from_kib(16));
        assert!(matches!(err, Err(HmError::OutOfMemory { .. })));
        assert_eq!(a.failures(), 1);
    }

    #[test]
    fn double_free_is_rejected() {
        let mut a = arena(16);
        let r = a.alloc(ByteSize::from_kib(1)).unwrap();
        a.free(r.start).unwrap();
        assert!(matches!(a.free(r.start), Err(HmError::UnknownAddress(_))));
        assert!(matches!(
            a.free(Address(0x42)),
            Err(HmError::UnknownAddress(_))
        ));
    }

    #[test]
    fn aligned_allocation_respects_alignment() {
        let mut a = arena(64);
        // Misalign the arena cursor first.
        let _ = a.alloc(ByteSize::from_bytes(24)).unwrap();
        let r = a.alloc_aligned(ByteSize::from_kib(1), 4096).unwrap();
        assert_eq!(r.start.value() % 4096, 0);
        assert!(
            a.alloc_aligned(ByteSize::from_kib(1), 100).is_err(),
            "non power of two"
        );
    }

    #[test]
    fn hwm_tracks_peak_usage() {
        let mut a = arena(64);
        let r1 = a.alloc(ByteSize::from_kib(8)).unwrap();
        let r2 = a.alloc(ByteSize::from_kib(8)).unwrap();
        a.free(r1.start).unwrap();
        let _r3 = a.alloc(ByteSize::from_kib(2)).unwrap();
        assert_eq!(a.hwm(), ByteSize::from_kib(16));
        assert_eq!(a.used_bytes(), ByteSize::from_kib(10));
        a.free(r2.start).unwrap();
        assert_eq!(a.allocations(), 3);
        assert_eq!(a.frees(), 2);
    }

    #[test]
    fn freed_space_is_reused() {
        let mut a = arena(8);
        let r1 = a.alloc(ByteSize::from_kib(4)).unwrap();
        a.free(r1.start).unwrap();
        let r2 = a.alloc(ByteSize::from_kib(4)).unwrap();
        assert_eq!(r1.start, r2.start, "first-fit must reuse the freed block");
    }
}
