//! The process-level heap façade.
//!
//! `ProcessHeap` glues together the address-space layout, one
//! [`TierAllocator`] per memory tier, the live-object registry and a
//! machine-level page table. It is the thing `auto-hbwmalloc` interposes on:
//! every simulated `malloc`/`free` flows through here, and placement is
//! reflected into the page table so the execution engines charge the right
//! tier.

use crate::address_space::{AddressSpace, RegionKind};
use crate::object::{DataObject, ObjectKind};
use crate::registry::LiveObjectRegistry;
use crate::tier_alloc::{AllocCostModel, TierAllocStats, TierAllocator};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, AddressRange, ByteSize, HmError, HmResult, Nanos, ObjectId, TierId};
use hmsim_machine::{MachineConfig, PageTable};

/// The simulated process heap: allocators, live objects and page placement.
#[derive(Clone, Debug)]
pub struct ProcessHeap {
    address_space: AddressSpace,
    allocators: Vec<TierAllocator>,
    registry: LiveObjectRegistry,
    page_table: PageTable,
    /// Net bytes migrated into (positive) or out of (negative) each tier,
    /// indexed by tier id. A tier allocator's `used_bytes` tracks where
    /// objects were *allocated*; this overlay tracks where their pages
    /// currently *reside* after [`migrate_object`](Self::migrate_object)
    /// calls, so capacity enforcement sees the physical occupancy.
    migration_delta: Vec<i64>,
}

impl ProcessHeap {
    /// Build a heap for the given machine: a glibc-like allocator over the
    /// DDR arena and a memkind-like allocator over the MCDRAM arena (plus one
    /// generic allocator per any additional tier).
    pub fn new(machine: &MachineConfig) -> HmResult<ProcessHeap> {
        let tiers: Vec<(TierId, ByteSize)> =
            machine.tiers.iter().map(|t| (t.id, t.capacity)).collect();
        let address_space =
            AddressSpace::new(ByteSize::from_gib(2), ByteSize::from_mib(512), &tiers)?;
        let mut allocators = Vec::new();
        for (tier, _) in &tiers {
            let arena = address_space
                .region(RegionKind::Heap(*tier))
                .ok_or_else(|| HmError::NotFound(format!("heap region for {tier:?}")))?;
            // Page placement (where the object lands) is orthogonal to which
            // allocator *API* served the call: `numactl -p 1` places glibc
            // allocations in MCDRAM without paying memkind's costs. The
            // extra cost of going through memkind/hbw_malloc is therefore
            // charged by the interposition layers (auto-hbwmalloc, autohbw)
            // on top of the base cost modelled here.
            let name = if *tier == TierId::MCDRAM {
                "mcdram-arena"
            } else if *tier == TierId::DDR {
                "glibc"
            } else {
                "generic"
            };
            let cost = AllocCostModel::glibc();
            allocators.push(TierAllocator::new(*tier, name, arena, cost));
        }
        Ok(ProcessHeap {
            address_space,
            allocators,
            registry: LiveObjectRegistry::new(),
            page_table: PageTable::new(TierId::DDR),
            migration_delta: Vec::new(),
        })
    }

    /// Apply a capacity cap to one tier's allocator (the per-rank MCDRAM
    /// budget of the experiments).
    pub fn set_capacity_cap(&mut self, tier: TierId, cap: ByteSize) -> HmResult<()> {
        let alloc = self
            .allocator_mut(tier)
            .ok_or_else(|| HmError::NotFound(format!("allocator for {tier:?}")))?;
        *alloc = alloc.clone().with_capacity_cap(cap);
        Ok(())
    }

    /// The allocator serving `tier`.
    pub fn allocator(&self, tier: TierId) -> Option<&TierAllocator> {
        self.allocators.iter().find(|a| a.tier() == tier)
    }

    fn allocator_mut(&mut self, tier: TierId) -> Option<&mut TierAllocator> {
        self.allocators.iter_mut().find(|a| a.tier() == tier)
    }

    /// Whether an allocation of `size` bytes currently fits in `tier`,
    /// counting both the allocator's arena accounting *and* bytes migrated
    /// into the tier from elsewhere (physical residency).
    pub fn fits(&self, tier: TierId, size: ByteSize) -> bool {
        let Some(alloc) = self.allocator(tier) else {
            return false;
        };
        if !alloc.fits(size) {
            return false;
        }
        match alloc.capacity_cap() {
            Some(cap) => self.tier_occupancy(tier) + size <= cap,
            None => true,
        }
    }

    /// Dynamically allocate `size` bytes in `tier`, registering the object
    /// and mapping its pages. Returns the object id, its range and the CPU
    /// cost of the allocator call. The capacity check sees migrated-in
    /// residency, so a tier cannot be overcommitted through malloc while
    /// migrated objects occupy it.
    pub fn malloc(
        &mut self,
        size: ByteSize,
        tier: TierId,
        name: impl Into<String>,
        site: Option<SiteKey>,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        if !self.fits(tier, size) {
            let occupancy = self.tier_occupancy(tier);
            let alloc = self
                .allocator_mut(tier)
                .ok_or_else(|| HmError::NotFound(format!("allocator for {tier:?}")))?;
            // Route through the allocator so its `rejected` statistic counts
            // the request even when the overflow is migrated-in residency the
            // allocator itself cannot see.
            alloc.note_rejected();
            return Err(HmError::OutOfMemory {
                tier: alloc.name().to_string(),
                requested: size.bytes(),
                available: alloc
                    .capacity_cap()
                    .map(|c| c.saturating_sub(occupancy).bytes())
                    .unwrap_or(0),
            });
        }
        let alloc = self
            .allocator_mut(tier)
            .ok_or_else(|| HmError::NotFound(format!("allocator for {tier:?}")))?;
        let (range, cost) = alloc.alloc(size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Dynamic,
            site,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range, cost))
    }

    /// Free the dynamic allocation starting at `addr`. Returns the freed
    /// size and the CPU cost of the call.
    pub fn free(&mut self, addr: Address, now: Nanos) -> HmResult<(ByteSize, Nanos)> {
        // The owning arena identifies the object's home tier (migration moves
        // pages, never addresses).
        let home = self
            .allocators
            .iter()
            .find(|a| a.owns(addr))
            .map(|a| a.tier())
            .ok_or(HmError::UnknownAddress(addr.value()))?;
        let alloc = self.allocator_mut(home).expect("tier found above");
        let (size, cost) = alloc.free(addr)?;
        let (id, _) = self.registry.remove_by_start(addr, now)?;
        // If the object had been migrated away from its home tier, unwind the
        // residency overlay so the destination tier's capacity is released.
        if let Some(current) = self.registry.get(id).map(|o| o.tier) {
            if current != home {
                self.shift_migration_delta(current, home, size);
            }
        }
        self.page_table.unmap_range(AddressRange::new(addr, size));
        Ok((size, cost))
    }

    /// Reallocate: allocate a new block in the same tier, free the old one.
    /// (Contents are not modelled.) Returns the new object id and range plus
    /// the combined CPU cost.
    ///
    /// "Same tier" means the tier the object's pages currently live in: a
    /// migrated object re-homes into its current tier's arena, exactly like
    /// a real `realloc` of `move_pages`-migrated memory would return fresh
    /// pages on the preferred node. The free unwinds the migration overlay
    /// and the new allocation is capacity-checked against it, so occupancy
    /// accounting stays exact across the transition.
    pub fn realloc(
        &mut self,
        addr: Address,
        new_size: ByteSize,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        let old = self
            .registry
            .find_containing(addr)
            .ok_or(HmError::UnknownAddress(addr.value()))?;
        let tier = old.tier;
        let name = old.name.clone();
        let site = old.site.clone();
        let (_, free_cost) = self.free(addr, now)?;
        let (id, range, alloc_cost) = self.malloc(new_size, tier, name, site, now)?;
        Ok((id, range, free_cost + alloc_cost))
    }

    /// Register a static (named) variable, carving it from the static region
    /// and mapping its pages to `tier` (DDR normally; MCDRAM under
    /// `numactl -p 1`).
    pub fn define_static(
        &mut self,
        name: impl Into<String>,
        size: ByteSize,
        tier: TierId,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange)> {
        let range = self.address_space.carve(RegionKind::Static, size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Static,
            site: None,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range))
    }

    /// Register a stack (automatic) region, e.g. per-thread stacks or the
    /// register-spill area of a hot routine.
    pub fn define_stack(
        &mut self,
        name: impl Into<String>,
        size: ByteSize,
        tier: TierId,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange)> {
        let range = self.address_space.carve(RegionKind::Stack, size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Stack,
            site: None,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range))
    }

    fn delta_slot(&mut self, tier: TierId) -> &mut i64 {
        let idx = tier.index();
        if idx >= self.migration_delta.len() {
            self.migration_delta.resize(idx + 1, 0);
        }
        &mut self.migration_delta[idx]
    }

    fn shift_migration_delta(&mut self, from: TierId, to: TierId, size: ByteSize) {
        *self.delta_slot(from) -= size.bytes() as i64;
        *self.delta_slot(to) += size.bytes() as i64;
    }

    /// Bytes physically resident in `tier` right now: what its allocator
    /// handed out, adjusted by the net effect of object migrations. (Objects
    /// placed in a tier without going through its allocator — statics under
    /// `numactl -p 1` — are outside both terms, mirroring how the capacity
    /// cap has always been enforced.)
    pub fn tier_occupancy(&self, tier: TierId) -> ByteSize {
        let allocated = self
            .allocator(tier)
            .map(|a| a.used_bytes().bytes() as i64)
            .unwrap_or(0);
        let delta = self.migration_delta.get(tier.index()).copied().unwrap_or(0);
        ByteSize::from_bytes((allocated + delta).max(0) as u64)
    }

    /// Whether `tier` can physically absorb `size` migrated bytes under its
    /// capacity cap. Tiers without a cap (DDR) always admit migrations: the
    /// move consumes no arena address space, only physical residency.
    pub fn migration_admits(&self, tier: TierId, size: ByteSize) -> bool {
        let Some(alloc) = self.allocator(tier) else {
            return false;
        };
        match alloc.capacity_cap() {
            Some(cap) => self.tier_occupancy(tier) + size <= cap,
            None => true,
        }
    }

    /// Move every page of a live object to another tier (what `numactl`-style
    /// policies or the online migration runtime do). Enforces the destination
    /// tier's capacity cap: a move that does not fit fails with
    /// [`HmError::OutOfMemory`] and leaves the placement, the page table and
    /// the occupancy accounting untouched. Returns the bytes moved
    /// ([`ByteSize::ZERO`] when the object already lives in `tier`).
    pub fn migrate_object(&mut self, id: ObjectId, tier: TierId) -> HmResult<ByteSize> {
        let obj = self
            .registry
            .get(id)
            .ok_or_else(|| HmError::NotFound(format!("{id:?}")))?;
        if obj.freed_at.is_some() {
            return Err(HmError::InvalidState(format!(
                "cannot migrate freed object {} ({id:?})",
                obj.name
            )));
        }
        let from = obj.tier;
        let range = obj.range;
        let size = obj.size();
        if from == tier {
            return Ok(ByteSize::ZERO);
        }
        if !self.migration_admits(tier, size) {
            let (name, available) = self
                .allocator(tier)
                .map(|a| {
                    let avail = a
                        .capacity_cap()
                        .unwrap_or(ByteSize::ZERO)
                        .saturating_sub(self.tier_occupancy(tier));
                    (a.name().to_string(), avail.bytes())
                })
                .unwrap_or_else(|| (format!("{tier:?}"), 0));
            return Err(HmError::OutOfMemory {
                tier: name,
                requested: size.bytes(),
                available,
            });
        }
        self.page_table.map_range(range, tier);
        self.registry.set_tier(id, tier)?;
        self.shift_migration_delta(from, tier, size);
        Ok(size)
    }

    /// The live-object registry.
    pub fn registry(&self) -> &LiveObjectRegistry {
        &self.registry
    }

    /// The page table reflecting current placement.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The address-space layout.
    pub fn address_space(&self) -> &AddressSpace {
        &self.address_space
    }

    /// Statistics of the allocator serving `tier`.
    pub fn stats(&self, tier: TierId) -> Option<TierAllocStats> {
        self.allocator(tier).map(|a| a.stats())
    }

    /// Total live bytes across all tiers (dynamic allocations only).
    pub fn live_dynamic_bytes(&self) -> ByteSize {
        self.allocators.iter().map(|a| a.used_bytes()).sum()
    }

    /// Total live bytes including static and stack objects.
    pub fn working_set(&self) -> ByteSize {
        self.registry.live_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_machine::MachineConfig;

    fn heap() -> ProcessHeap {
        ProcessHeap::new(&MachineConfig::knl_7250()).unwrap()
    }

    #[test]
    fn malloc_registers_object_and_maps_pages() {
        let mut h = heap();
        let (id, range, cost) = h
            .malloc(
                ByteSize::from_mib(8),
                TierId::MCDRAM,
                "matrix",
                Some(SiteKey::from_text("app!alloc_matrix+0x10")),
                Nanos::ZERO,
            )
            .unwrap();
        assert!(cost.nanos() > 0.0);
        assert_eq!(h.registry().get(id).unwrap().tier, TierId::MCDRAM);
        assert_eq!(h.page_table().tier_of(range.start), TierId::MCDRAM);
        assert_eq!(
            h.registry()
                .find_containing(range.start.offset(4096))
                .unwrap()
                .id,
            id
        );
        assert_eq!(h.live_dynamic_bytes(), ByteSize::from_mib(8));
    }

    #[test]
    fn free_unmaps_and_unregisters() {
        let mut h = heap();
        let (_, range, _) = h
            .malloc(
                ByteSize::from_mib(4),
                TierId::MCDRAM,
                "buf",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (size, _) = h.free(range.start, Nanos::from_millis(1.0)).unwrap();
        assert_eq!(size, ByteSize::from_mib(4));
        assert!(h.registry().find_containing(range.start).is_none());
        assert_eq!(
            h.page_table().tier_of(range.start),
            TierId::DDR,
            "falls back to default"
        );
        assert!(
            h.free(range.start, Nanos::ZERO).is_err(),
            "double free rejected"
        );
    }

    #[test]
    fn capacity_cap_forces_fallback_decisions() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(32))
            .unwrap();
        assert!(h.fits(TierId::MCDRAM, ByteSize::from_mib(32)));
        h.malloc(
            ByteSize::from_mib(30),
            TierId::MCDRAM,
            "a",
            None,
            Nanos::ZERO,
        )
        .unwrap();
        assert!(!h.fits(TierId::MCDRAM, ByteSize::from_mib(8)));
        assert!(h
            .malloc(
                ByteSize::from_mib(8),
                TierId::MCDRAM,
                "b",
                None,
                Nanos::ZERO
            )
            .is_err());
        // DDR still accepts it.
        assert!(h
            .malloc(ByteSize::from_mib(8), TierId::DDR, "b", None, Nanos::ZERO)
            .is_ok());
        assert_eq!(h.stats(TierId::MCDRAM).unwrap().rejected, 1);
    }

    #[test]
    fn static_and_stack_objects_are_not_promotable_but_can_be_placed() {
        let mut h = heap();
        let (sid, srange) = h
            .define_static(
                "common_block",
                ByteSize::from_mib(100),
                TierId::MCDRAM,
                Nanos::ZERO,
            )
            .unwrap();
        let (kid, krange) = h
            .define_stack(
                "omp_stacks",
                ByteSize::from_mib(16),
                TierId::DDR,
                Nanos::ZERO,
            )
            .unwrap();
        assert!(!h.registry().get(sid).unwrap().promotable());
        assert!(!h.registry().get(kid).unwrap().promotable());
        assert_eq!(h.page_table().tier_of(srange.start), TierId::MCDRAM);
        assert_eq!(h.page_table().tier_of(krange.start), TierId::DDR);
        assert_eq!(h.working_set(), ByteSize::from_mib(116));
        assert_eq!(h.live_dynamic_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn migrate_object_remaps_pages() {
        let mut h = heap();
        let (id, range) = h
            .define_static("grid", ByteSize::from_mib(10), TierId::DDR, Nanos::ZERO)
            .unwrap();
        let moved = h.migrate_object(id, TierId::MCDRAM).unwrap();
        assert_eq!(moved, ByteSize::from_mib(10));
        assert_eq!(
            h.page_table()
                .tier_of(range.start.offset(range.len.bytes() - 1)),
            TierId::MCDRAM
        );
        assert_eq!(h.registry().get(id).unwrap().tier, TierId::MCDRAM);
        assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::from_mib(10));
        // Migrating to the tier it already lives in is a free no-op.
        assert_eq!(
            h.migrate_object(id, TierId::MCDRAM).unwrap(),
            ByteSize::ZERO
        );
        assert!(h.migrate_object(ObjectId(999), TierId::DDR).is_err());
    }

    #[test]
    fn migration_into_full_tier_fails_without_corrupting_accounting() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(32))
            .unwrap();
        // Fill MCDRAM with a native allocation, leaving 8 MiB headroom.
        h.malloc(
            ByteSize::from_mib(24),
            TierId::MCDRAM,
            "resident",
            None,
            Nanos::ZERO,
        )
        .unwrap();
        let (big_id, big_range, _) = h
            .malloc(
                ByteSize::from_mib(16),
                TierId::DDR,
                "too_big",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let occupancy_before = h.tier_occupancy(TierId::MCDRAM);
        let mapped_before = h.page_table().mapped_bytes(TierId::MCDRAM);
        let err = h.migrate_object(big_id, TierId::MCDRAM).unwrap_err();
        assert!(matches!(err, HmError::OutOfMemory { .. }), "{err}");
        // Nothing moved: placement, page table and occupancy are untouched.
        assert_eq!(h.registry().get(big_id).unwrap().tier, TierId::DDR);
        assert_eq!(h.page_table().tier_of(big_range.start), TierId::DDR);
        assert_eq!(h.tier_occupancy(TierId::MCDRAM), occupancy_before);
        assert_eq!(h.page_table().mapped_bytes(TierId::MCDRAM), mapped_before);
        // A smaller object still fits in the 8 MiB headroom afterwards.
        let (small_id, _, _) = h
            .malloc(
                ByteSize::from_mib(4),
                TierId::DDR,
                "fits",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(
            h.migrate_object(small_id, TierId::MCDRAM).unwrap(),
            ByteSize::from_mib(4)
        );
        assert_eq!(
            h.tier_occupancy(TierId::MCDRAM),
            occupancy_before + ByteSize::from_mib(4)
        );
    }

    #[test]
    fn re_migration_back_restores_mapping_and_leaks_nothing() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(16))
            .unwrap();
        let (id, range, _) = h
            .malloc(
                ByteSize::from_mib(8),
                TierId::DDR,
                "ping",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let ddr_mapped = h.page_table().mapped_bytes(TierId::DDR);
        // Round-trip repeatedly: the occupancy overlay must not drift, or the
        // runtime's hysteresis loop would slowly wedge the fast tier shut.
        for _ in 0..10 {
            h.migrate_object(id, TierId::MCDRAM).unwrap();
            assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::from_mib(8));
            h.migrate_object(id, TierId::DDR).unwrap();
            assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::ZERO);
        }
        // Original page mapping is fully restored.
        for page in range.pages() {
            assert_eq!(h.page_table().tier_of_page(page), TierId::DDR);
        }
        assert_eq!(h.page_table().mapped_bytes(TierId::DDR), ddr_mapped);
        assert_eq!(h.registry().get(id).unwrap().tier, TierId::DDR);
    }

    #[test]
    fn malloc_cannot_overcommit_a_tier_holding_migrated_objects() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(32))
            .unwrap();
        let (id, _, _) = h
            .malloc(
                ByteSize::from_mib(24),
                TierId::DDR,
                "migrant",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        h.migrate_object(id, TierId::MCDRAM).unwrap();
        // The MCDRAM allocator's own arena is empty, but 24 MiB of migrated
        // residency occupies the tier: a 16 MiB native allocation must be
        // refused (and counted as rejected), an 8 MiB one still fits.
        assert!(!h.fits(TierId::MCDRAM, ByteSize::from_mib(16)));
        assert!(matches!(
            h.malloc(
                ByteSize::from_mib(16),
                TierId::MCDRAM,
                "native",
                None,
                Nanos::ZERO
            ),
            Err(HmError::OutOfMemory { .. })
        ));
        assert_eq!(h.stats(TierId::MCDRAM).unwrap().rejected, 1);
        h.malloc(
            ByteSize::from_mib(8),
            TierId::MCDRAM,
            "native",
            None,
            Nanos::ZERO,
        )
        .unwrap();
        assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::from_mib(32));
    }

    #[test]
    fn realloc_of_a_migrated_object_rehomes_with_exact_accounting() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(16))
            .unwrap();
        let (id, range, _) = h
            .malloc(
                ByteSize::from_mib(8),
                TierId::DDR,
                "growing",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        h.migrate_object(id, TierId::MCDRAM).unwrap();
        let (new_id, new_range, _) = h
            .realloc(range.start, ByteSize::from_mib(12), Nanos::from_millis(1.0))
            .unwrap();
        // The replacement re-homes into the MCDRAM arena; the old block's
        // migrated residency is unwound, so occupancy is exactly the new
        // allocation — no double counting, no leak.
        let obj = h.registry().get(new_id).unwrap();
        assert_eq!(obj.tier, TierId::MCDRAM);
        assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::from_mib(12));
        assert_eq!(h.page_table().tier_of(new_range.start), TierId::MCDRAM);
        // And a realloc that busts the cap fails instead of overcommitting.
        assert!(h
            .realloc(new_range.start, ByteSize::from_mib(24), Nanos::ZERO)
            .is_err());
    }

    #[test]
    fn freeing_a_migrated_object_releases_fast_tier_occupancy() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(16))
            .unwrap();
        let (id, range, _) = h
            .malloc(
                ByteSize::from_mib(12),
                TierId::DDR,
                "hot_then_dead",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        h.migrate_object(id, TierId::MCDRAM).unwrap();
        assert!(!h.migration_admits(TierId::MCDRAM, ByteSize::from_mib(8)));
        h.free(range.start, Nanos::from_millis(1.0)).unwrap();
        assert_eq!(h.tier_occupancy(TierId::MCDRAM), ByteSize::ZERO);
        assert!(h.migration_admits(TierId::MCDRAM, ByteSize::from_mib(8)));
        // A freed object can no longer be migrated.
        assert!(matches!(
            h.migrate_object(id, TierId::DDR),
            Err(HmError::InvalidState(_))
        ));
    }

    #[test]
    fn realloc_preserves_tier_and_identity_lineage() {
        let mut h = heap();
        let (_, range, _) = h
            .malloc(
                ByteSize::from_mib(2),
                TierId::MCDRAM,
                "growing",
                Some(SiteKey::from_text("app!grow+0x4")),
                Nanos::ZERO,
            )
            .unwrap();
        let (new_id, new_range, cost) = h
            .realloc(range.start, ByteSize::from_mib(4), Nanos::from_millis(2.0))
            .unwrap();
        assert!(cost.nanos() > 0.0);
        let obj = h.registry().get(new_id).unwrap();
        assert_eq!(obj.tier, TierId::MCDRAM);
        assert_eq!(obj.name, "growing");
        assert_eq!(obj.size(), ByteSize::from_mib(4));
        assert_eq!(h.page_table().tier_of(new_range.start), TierId::MCDRAM);
    }

    #[test]
    fn realloc_of_unknown_address_fails() {
        let mut h = heap();
        assert!(h
            .realloc(Address(0xdead), ByteSize::from_kib(4), Nanos::ZERO)
            .is_err());
    }
}
