//! The process-level heap façade.
//!
//! `ProcessHeap` glues together the address-space layout, one
//! [`TierAllocator`] per memory tier, the live-object registry and a
//! machine-level page table. It is the thing `auto-hbwmalloc` interposes on:
//! every simulated `malloc`/`free` flows through here, and placement is
//! reflected into the page table so the execution engines charge the right
//! tier.

use crate::address_space::{AddressSpace, RegionKind};
use crate::object::{DataObject, ObjectKind};
use crate::registry::LiveObjectRegistry;
use crate::tier_alloc::{AllocCostModel, TierAllocStats, TierAllocator};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, AddressRange, ByteSize, HmError, HmResult, Nanos, ObjectId, TierId};
use hmsim_machine::{MachineConfig, PageTable};

/// The simulated process heap: allocators, live objects and page placement.
#[derive(Clone, Debug)]
pub struct ProcessHeap {
    address_space: AddressSpace,
    allocators: Vec<TierAllocator>,
    registry: LiveObjectRegistry,
    page_table: PageTable,
}

impl ProcessHeap {
    /// Build a heap for the given machine: a glibc-like allocator over the
    /// DDR arena and a memkind-like allocator over the MCDRAM arena (plus one
    /// generic allocator per any additional tier).
    pub fn new(machine: &MachineConfig) -> HmResult<ProcessHeap> {
        let tiers: Vec<(TierId, ByteSize)> =
            machine.tiers.iter().map(|t| (t.id, t.capacity)).collect();
        let address_space =
            AddressSpace::new(ByteSize::from_gib(2), ByteSize::from_mib(512), &tiers)?;
        let mut allocators = Vec::new();
        for (tier, _) in &tiers {
            let arena = address_space
                .region(RegionKind::Heap(*tier))
                .ok_or_else(|| HmError::NotFound(format!("heap region for {tier:?}")))?;
            // Page placement (where the object lands) is orthogonal to which
            // allocator *API* served the call: `numactl -p 1` places glibc
            // allocations in MCDRAM without paying memkind's costs. The
            // extra cost of going through memkind/hbw_malloc is therefore
            // charged by the interposition layers (auto-hbwmalloc, autohbw)
            // on top of the base cost modelled here.
            let name = if *tier == TierId::MCDRAM {
                "mcdram-arena"
            } else if *tier == TierId::DDR {
                "glibc"
            } else {
                "generic"
            };
            let cost = AllocCostModel::glibc();
            allocators.push(TierAllocator::new(*tier, name, arena, cost));
        }
        Ok(ProcessHeap {
            address_space,
            allocators,
            registry: LiveObjectRegistry::new(),
            page_table: PageTable::new(TierId::DDR),
        })
    }

    /// Apply a capacity cap to one tier's allocator (the per-rank MCDRAM
    /// budget of the experiments).
    pub fn set_capacity_cap(&mut self, tier: TierId, cap: ByteSize) -> HmResult<()> {
        let alloc = self
            .allocator_mut(tier)
            .ok_or_else(|| HmError::NotFound(format!("allocator for {tier:?}")))?;
        *alloc = alloc.clone().with_capacity_cap(cap);
        Ok(())
    }

    /// The allocator serving `tier`.
    pub fn allocator(&self, tier: TierId) -> Option<&TierAllocator> {
        self.allocators.iter().find(|a| a.tier() == tier)
    }

    fn allocator_mut(&mut self, tier: TierId) -> Option<&mut TierAllocator> {
        self.allocators.iter_mut().find(|a| a.tier() == tier)
    }

    /// Whether an allocation of `size` bytes currently fits in `tier`.
    pub fn fits(&self, tier: TierId, size: ByteSize) -> bool {
        self.allocator(tier).map(|a| a.fits(size)).unwrap_or(false)
    }

    /// Dynamically allocate `size` bytes in `tier`, registering the object
    /// and mapping its pages. Returns the object id, its range and the CPU
    /// cost of the allocator call.
    pub fn malloc(
        &mut self,
        size: ByteSize,
        tier: TierId,
        name: impl Into<String>,
        site: Option<SiteKey>,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        let alloc = self
            .allocator_mut(tier)
            .ok_or_else(|| HmError::NotFound(format!("allocator for {tier:?}")))?;
        let (range, cost) = alloc.alloc(size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Dynamic,
            site,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range, cost))
    }

    /// Free the dynamic allocation starting at `addr`. Returns the freed
    /// size and the CPU cost of the call.
    pub fn free(&mut self, addr: Address, now: Nanos) -> HmResult<(ByteSize, Nanos)> {
        let tier = self
            .allocators
            .iter()
            .find(|a| a.owns(addr))
            .map(|a| a.tier())
            .ok_or(HmError::UnknownAddress(addr.value()))?;
        let alloc = self.allocator_mut(tier).expect("tier found above");
        let (size, cost) = alloc.free(addr)?;
        let (_, _) = self.registry.remove_by_start(addr, now)?;
        self.page_table.unmap_range(AddressRange::new(addr, size));
        Ok((size, cost))
    }

    /// Reallocate: allocate a new block in the same tier, free the old one.
    /// (Contents are not modelled.) Returns the new object id and range plus
    /// the combined CPU cost.
    pub fn realloc(
        &mut self,
        addr: Address,
        new_size: ByteSize,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        let old = self
            .registry
            .find_containing(addr)
            .ok_or(HmError::UnknownAddress(addr.value()))?;
        let tier = old.tier;
        let name = old.name.clone();
        let site = old.site.clone();
        let (_, free_cost) = self.free(addr, now)?;
        let (id, range, alloc_cost) = self.malloc(new_size, tier, name, site, now)?;
        Ok((id, range, free_cost + alloc_cost))
    }

    /// Register a static (named) variable, carving it from the static region
    /// and mapping its pages to `tier` (DDR normally; MCDRAM under
    /// `numactl -p 1`).
    pub fn define_static(
        &mut self,
        name: impl Into<String>,
        size: ByteSize,
        tier: TierId,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange)> {
        let range = self.address_space.carve(RegionKind::Static, size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Static,
            site: None,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range))
    }

    /// Register a stack (automatic) region, e.g. per-thread stacks or the
    /// register-spill area of a hot routine.
    pub fn define_stack(
        &mut self,
        name: impl Into<String>,
        size: ByteSize,
        tier: TierId,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange)> {
        let range = self.address_space.carve(RegionKind::Stack, size)?;
        let id = self.registry.next_id();
        self.registry.insert(DataObject {
            id,
            name: name.into(),
            kind: ObjectKind::Stack,
            site: None,
            range,
            tier,
            allocated_at: now,
            freed_at: None,
        })?;
        self.page_table.map_range(range, tier);
        Ok((id, range))
    }

    /// Move every page of an existing object to another tier (what
    /// `numactl`-style policies or a migrating runtime would do).
    pub fn migrate_object(&mut self, id: ObjectId, tier: TierId) -> HmResult<()> {
        let obj = self
            .registry
            .get(id)
            .ok_or_else(|| HmError::NotFound(format!("{id:?}")))?;
        let range = obj.range;
        self.page_table.map_range(range, tier);
        Ok(())
    }

    /// The live-object registry.
    pub fn registry(&self) -> &LiveObjectRegistry {
        &self.registry
    }

    /// The page table reflecting current placement.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The address-space layout.
    pub fn address_space(&self) -> &AddressSpace {
        &self.address_space
    }

    /// Statistics of the allocator serving `tier`.
    pub fn stats(&self, tier: TierId) -> Option<TierAllocStats> {
        self.allocator(tier).map(|a| a.stats())
    }

    /// Total live bytes across all tiers (dynamic allocations only).
    pub fn live_dynamic_bytes(&self) -> ByteSize {
        self.allocators.iter().map(|a| a.used_bytes()).sum()
    }

    /// Total live bytes including static and stack objects.
    pub fn working_set(&self) -> ByteSize {
        self.registry.live_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_machine::MachineConfig;

    fn heap() -> ProcessHeap {
        ProcessHeap::new(&MachineConfig::knl_7250()).unwrap()
    }

    #[test]
    fn malloc_registers_object_and_maps_pages() {
        let mut h = heap();
        let (id, range, cost) = h
            .malloc(
                ByteSize::from_mib(8),
                TierId::MCDRAM,
                "matrix",
                Some(SiteKey::from_text("app!alloc_matrix+0x10")),
                Nanos::ZERO,
            )
            .unwrap();
        assert!(cost.nanos() > 0.0);
        assert_eq!(h.registry().get(id).unwrap().tier, TierId::MCDRAM);
        assert_eq!(h.page_table().tier_of(range.start), TierId::MCDRAM);
        assert_eq!(
            h.registry()
                .find_containing(range.start.offset(4096))
                .unwrap()
                .id,
            id
        );
        assert_eq!(h.live_dynamic_bytes(), ByteSize::from_mib(8));
    }

    #[test]
    fn free_unmaps_and_unregisters() {
        let mut h = heap();
        let (_, range, _) = h
            .malloc(
                ByteSize::from_mib(4),
                TierId::MCDRAM,
                "buf",
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (size, _) = h.free(range.start, Nanos::from_millis(1.0)).unwrap();
        assert_eq!(size, ByteSize::from_mib(4));
        assert!(h.registry().find_containing(range.start).is_none());
        assert_eq!(
            h.page_table().tier_of(range.start),
            TierId::DDR,
            "falls back to default"
        );
        assert!(
            h.free(range.start, Nanos::ZERO).is_err(),
            "double free rejected"
        );
    }

    #[test]
    fn capacity_cap_forces_fallback_decisions() {
        let mut h = heap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(32))
            .unwrap();
        assert!(h.fits(TierId::MCDRAM, ByteSize::from_mib(32)));
        h.malloc(
            ByteSize::from_mib(30),
            TierId::MCDRAM,
            "a",
            None,
            Nanos::ZERO,
        )
        .unwrap();
        assert!(!h.fits(TierId::MCDRAM, ByteSize::from_mib(8)));
        assert!(h
            .malloc(
                ByteSize::from_mib(8),
                TierId::MCDRAM,
                "b",
                None,
                Nanos::ZERO
            )
            .is_err());
        // DDR still accepts it.
        assert!(h
            .malloc(ByteSize::from_mib(8), TierId::DDR, "b", None, Nanos::ZERO)
            .is_ok());
        assert_eq!(h.stats(TierId::MCDRAM).unwrap().rejected, 1);
    }

    #[test]
    fn static_and_stack_objects_are_not_promotable_but_can_be_placed() {
        let mut h = heap();
        let (sid, srange) = h
            .define_static(
                "common_block",
                ByteSize::from_mib(100),
                TierId::MCDRAM,
                Nanos::ZERO,
            )
            .unwrap();
        let (kid, krange) = h
            .define_stack(
                "omp_stacks",
                ByteSize::from_mib(16),
                TierId::DDR,
                Nanos::ZERO,
            )
            .unwrap();
        assert!(!h.registry().get(sid).unwrap().promotable());
        assert!(!h.registry().get(kid).unwrap().promotable());
        assert_eq!(h.page_table().tier_of(srange.start), TierId::MCDRAM);
        assert_eq!(h.page_table().tier_of(krange.start), TierId::DDR);
        assert_eq!(h.working_set(), ByteSize::from_mib(116));
        assert_eq!(h.live_dynamic_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn migrate_object_remaps_pages() {
        let mut h = heap();
        let (id, range) = h
            .define_static("grid", ByteSize::from_mib(10), TierId::DDR, Nanos::ZERO)
            .unwrap();
        h.migrate_object(id, TierId::MCDRAM).unwrap();
        assert_eq!(
            h.page_table()
                .tier_of(range.start.offset(range.len.bytes() - 1)),
            TierId::MCDRAM
        );
        assert!(h.migrate_object(ObjectId(999), TierId::DDR).is_err());
    }

    #[test]
    fn realloc_preserves_tier_and_identity_lineage() {
        let mut h = heap();
        let (_, range, _) = h
            .malloc(
                ByteSize::from_mib(2),
                TierId::MCDRAM,
                "growing",
                Some(SiteKey::from_text("app!grow+0x4")),
                Nanos::ZERO,
            )
            .unwrap();
        let (new_id, new_range, cost) = h
            .realloc(range.start, ByteSize::from_mib(4), Nanos::from_millis(2.0))
            .unwrap();
        assert!(cost.nanos() > 0.0);
        let obj = h.registry().get(new_id).unwrap();
        assert_eq!(obj.tier, TierId::MCDRAM);
        assert_eq!(obj.name, "growing");
        assert_eq!(obj.size(), ByteSize::from_mib(4));
        assert_eq!(h.page_table().tier_of(new_range.start), TierId::MCDRAM);
    }

    #[test]
    fn realloc_of_unknown_address_fails() {
        let mut h = heap();
        assert!(h
            .realloc(Address(0xdead), ByteSize::from_kib(4), Nanos::ZERO)
            .is_err());
    }
}
