//! Per-tier allocators with capacity caps, statistics and allocation-cost
//! models.
//!
//! One `TierAllocator` stands in for glibc malloc (DDR) and another for
//! memkind's `hbw_malloc` (MCDRAM). Besides handing out address ranges it
//! models the *CPU cost* of each allocation call, including the anomaly the
//! paper observed: "allocations ranging from 1 to 2 Mbytes through memkind
//! are more expensive than regular allocations" — the effect that makes
//! `autohbw` a net loss on LULESH.

use crate::freelist::FreeListAllocator;
use hmsim_common::{Address, AddressRange, ByteSize, HmResult, Nanos, TierId};

/// Cost model for one allocator's malloc/free calls.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllocCostModel {
    /// Fixed cost of a small allocation.
    pub base: Nanos,
    /// Additional cost per MiB requested (page faulting / arena growth).
    pub per_mib: Nanos,
    /// Extra penalty applied to allocations in the anomaly window.
    pub anomaly_penalty: Nanos,
    /// Anomaly window lower bound (inclusive).
    pub anomaly_lo: ByteSize,
    /// Anomaly window upper bound (exclusive).
    pub anomaly_hi: ByteSize,
}

impl AllocCostModel {
    /// glibc-like cost model: cheap, no anomaly.
    pub fn glibc() -> Self {
        AllocCostModel {
            base: Nanos(120.0),
            per_mib: Nanos(650.0),
            anomaly_penalty: Nanos::ZERO,
            anomaly_lo: ByteSize::ZERO,
            anomaly_hi: ByteSize::ZERO,
        }
    }

    /// memkind-like cost model with the 1–2 MiB anomaly reported in §IV-C of
    /// the paper ("allocations ranging from 1 to 2 Mbytes through memkind are
    /// more expensive than regular allocations"). The penalty is calibrated
    /// so that LULESH-style per-iteration churn through memkind costs the
    /// ~8 % the paper measured for the autohbw baseline.
    pub fn memkind() -> Self {
        AllocCostModel {
            base: Nanos(450.0),
            per_mib: Nanos(900.0),
            anomaly_penalty: Nanos(5_000_000.0),
            anomaly_lo: ByteSize::from_mib(1),
            anomaly_hi: ByteSize::from_mib(2),
        }
    }

    /// Cost of allocating `size` bytes under this model.
    pub fn alloc_cost(&self, size: ByteSize) -> Nanos {
        let mut cost = self.base + self.per_mib * size.mib();
        if size >= self.anomaly_lo && size < self.anomaly_hi && !self.anomaly_hi.is_zero() {
            cost += self.anomaly_penalty;
        }
        cost
    }

    /// Cost of freeing an allocation of `size` bytes (roughly half the
    /// allocation base cost, independent of size).
    pub fn free_cost(&self, _size: ByteSize) -> Nanos {
        self.base * 0.5
    }
}

/// Statistics kept by one tier allocator — the metrics `auto-hbwmalloc`
/// reports "upon user request … the number of allocations, the average
/// allocation size, the observed High-Water Mark and whether any variable did
/// not fit into memory due to user size limitations".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TierAllocStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Frees.
    pub frees: u64,
    /// Requests rejected because they exceeded the capacity cap.
    pub rejected: u64,
    /// Total bytes requested by successful allocations.
    pub total_requested: u64,
    /// High-water mark of live bytes.
    pub hwm: u64,
    /// Accumulated allocator CPU time (alloc + free costs).
    pub cpu_time_ns: f64,
}

impl TierAllocStats {
    /// Average size of successful allocations.
    pub fn average_size(&self) -> ByteSize {
        match self.total_requested.checked_div(self.allocations) {
            Some(avg) => ByteSize::from_bytes(avg),
            None => ByteSize::ZERO,
        }
    }
}

/// An allocator bound to one memory tier, with an optional capacity cap below
/// the tier's physical size (the per-rank MCDRAM budget of the experiments).
#[derive(Clone, Debug)]
pub struct TierAllocator {
    tier: TierId,
    name: String,
    freelist: FreeListAllocator,
    /// Cap on live bytes (the advisor/auto-hbwmalloc budget); `None` means
    /// only the arena size limits allocations.
    capacity_cap: Option<ByteSize>,
    cost_model: AllocCostModel,
    stats: TierAllocStats,
}

impl TierAllocator {
    /// Create an allocator for `tier` over `arena`.
    pub fn new(
        tier: TierId,
        name: impl Into<String>,
        arena: AddressRange,
        cost_model: AllocCostModel,
    ) -> Self {
        TierAllocator {
            tier,
            name: name.into(),
            freelist: FreeListAllocator::new(arena),
            capacity_cap: None,
            cost_model,
            stats: TierAllocStats::default(),
        }
    }

    /// Apply a capacity cap (live bytes will never exceed it).
    pub fn with_capacity_cap(mut self, cap: ByteSize) -> Self {
        self.capacity_cap = Some(cap);
        self
    }

    /// The tier this allocator serves.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// The allocator's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The capacity cap, if any.
    pub fn capacity_cap(&self) -> Option<ByteSize> {
        self.capacity_cap
    }

    /// Whether an allocation of `size` would fit under the cap right now
    /// (Algorithm 1 line 12, `alloc→FITS(size)`).
    pub fn fits(&self, size: ByteSize) -> bool {
        match self.capacity_cap {
            Some(cap) => self.freelist.used_bytes() + size <= cap,
            None => size <= self.freelist.free_bytes(),
        }
    }

    /// Allocate `size` bytes. On success returns the range and the CPU cost
    /// of the call; a request that does not fit is counted as rejected.
    pub fn alloc(&mut self, size: ByteSize) -> HmResult<(AddressRange, Nanos)> {
        if !self.fits(size) {
            self.stats.rejected += 1;
            return Err(hmsim_common::HmError::OutOfMemory {
                tier: self.name.clone(),
                requested: size.bytes(),
                available: self
                    .capacity_cap
                    .map(|c| c.saturating_sub(self.freelist.used_bytes()).bytes())
                    .unwrap_or(self.freelist.free_bytes().bytes()),
            });
        }
        let range = match self.freelist.alloc(size) {
            Ok(r) => r,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        let cost = self.cost_model.alloc_cost(size);
        self.stats.allocations += 1;
        self.stats.total_requested += size.bytes();
        self.stats.hwm = self.stats.hwm.max(self.freelist.used_bytes().bytes());
        self.stats.cpu_time_ns += cost.nanos();
        Ok((range, cost))
    }

    /// Count a request the heap façade rejected before reaching the arena
    /// (e.g. migrated-in residency filled the tier's capacity cap).
    pub(crate) fn note_rejected(&mut self) {
        self.stats.rejected += 1;
    }

    /// Free the allocation starting at `addr`; returns its size and the CPU
    /// cost of the call.
    pub fn free(&mut self, addr: Address) -> HmResult<(ByteSize, Nanos)> {
        let size = self.freelist.free(addr)?;
        let cost = self.cost_model.free_cost(size);
        self.stats.frees += 1;
        self.stats.cpu_time_ns += cost.nanos();
        Ok((size, cost))
    }

    /// Whether this allocator owns the allocation starting at `addr`.
    pub fn owns(&self, addr: Address) -> bool {
        self.freelist.owns(addr)
    }

    /// Live bytes currently allocated.
    pub fn used_bytes(&self) -> ByteSize {
        self.freelist.used_bytes()
    }

    /// Peak live bytes.
    pub fn hwm(&self) -> ByteSize {
        ByteSize::from_bytes(self.stats.hwm)
    }

    /// The statistics block.
    pub fn stats(&self) -> TierAllocStats {
        self.stats
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> AllocCostModel {
        self.cost_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcdram_alloc(cap_mib: u64) -> TierAllocator {
        TierAllocator::new(
            TierId::MCDRAM,
            "memkind/hbw",
            AddressRange::new(Address(0x7e10_0000_0000), ByteSize::from_gib(16)),
            AllocCostModel::memkind(),
        )
        .with_capacity_cap(ByteSize::from_mib(cap_mib))
    }

    #[test]
    fn capacity_cap_limits_live_bytes() {
        let mut a = mcdram_alloc(64);
        assert!(a.fits(ByteSize::from_mib(64)));
        let (r1, _) = a.alloc(ByteSize::from_mib(40)).unwrap();
        assert!(!a.fits(ByteSize::from_mib(32)));
        assert!(a.alloc(ByteSize::from_mib(32)).is_err());
        assert_eq!(a.stats().rejected, 1);
        // After freeing, the space can be used again.
        a.free(r1.start).unwrap();
        assert!(a.alloc(ByteSize::from_mib(60)).is_ok());
    }

    #[test]
    fn memkind_anomaly_makes_1_to_2_mib_expensive() {
        let m = AllocCostModel::memkind();
        let below = m.alloc_cost(ByteSize::from_kib(512));
        let inside = m.alloc_cost(ByteSize::from_mib(1) + ByteSize::from_kib(512));
        let above = m.alloc_cost(ByteSize::from_mib(4));
        assert!(inside > below * 10.0);
        assert!(inside.nanos() > above.nanos(), "anomaly window dominates");
        // glibc has no such anomaly.
        let g = AllocCostModel::glibc();
        assert!(g.alloc_cost(ByteSize::from_mib(1) + ByteSize::from_kib(512)) < inside);
    }

    #[test]
    fn stats_accumulate() {
        let mut a = mcdram_alloc(256);
        let (r1, c1) = a.alloc(ByteSize::from_mib(10)).unwrap();
        let (_r2, c2) = a.alloc(ByteSize::from_mib(30)).unwrap();
        let (_, cf) = a.free(r1.start).unwrap();
        let s = a.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.average_size(), ByteSize::from_mib(20));
        assert_eq!(a.hwm(), ByteSize::from_mib(40));
        assert_eq!(a.used_bytes(), ByteSize::from_mib(30));
        let expected = c1.nanos() + c2.nanos() + cf.nanos();
        assert!((s.cpu_time_ns - expected).abs() < 1e-6);
    }

    #[test]
    fn uncapped_allocator_limited_only_by_arena() {
        let mut a = TierAllocator::new(
            TierId::DDR,
            "glibc",
            AddressRange::new(Address(0x7f10_0000_0000), ByteSize::from_mib(8)),
            AllocCostModel::glibc(),
        );
        assert!(a.fits(ByteSize::from_mib(8)));
        assert!(!a.fits(ByteSize::from_mib(9)));
        assert!(a.alloc(ByteSize::from_mib(4)).is_ok());
        assert!(a.alloc(ByteSize::from_mib(5)).is_err());
    }

    #[test]
    fn ownership_is_tracked() {
        let mut a = mcdram_alloc(64);
        let (r, _) = a.alloc(ByteSize::from_mib(1)).unwrap();
        assert!(a.owns(r.start));
        assert!(!a.owns(Address(0x1234)));
    }
}
