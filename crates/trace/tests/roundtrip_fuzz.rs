//! DetRng-driven round-trip fuzzing of both serialisation formats.
//!
//! Random traces — including hostile names full of separators, escape
//! characters and control characters — must survive text→parse and
//! binary→read identically, event for event and metadata field for metadata
//! field.

use hmsim_callstack::SiteKey;
use hmsim_common::{Address, ByteSize, DetRng, Nanos, ObjectId};
use hmsim_trace::{
    binary, format, AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent,
    TraceFile, TraceMetadata, TraceReader,
};

/// Fragments chosen to break naive escaping: field separators, the escape
/// character, partial escape sequences, header syntax, whitespace and
/// line-break controls, unicode.
const HOSTILE_FRAGMENTS: &[&str] = &[
    ":", "%", "%3A", "%0", " ", "\t", "\n", "\r", "\r\n", "=", "#", "app=x", "::", "100%", "é✓",
    "名前", "A:1:2",
];

fn random_name(rng: &mut DetRng) -> String {
    let mut name = String::new();
    let pieces = rng.uniform_range(0, 6);
    for _ in 0..pieces {
        if rng.chance(0.5) {
            name.push_str(
                HOSTILE_FRAGMENTS[rng.uniform_range(0, HOSTILE_FRAGMENTS.len() as u64) as usize],
            );
        } else {
            for _ in 0..rng.uniform_range(1, 8) {
                name.push((b'a' + rng.uniform_range(0, 26) as u8) as char);
            }
        }
    }
    name
}

fn random_site(rng: &mut DetRng) -> Option<SiteKey> {
    if rng.chance(0.4) {
        return None;
    }
    let depth = rng.uniform_range(1, 4);
    let frames: Vec<String> = (0..depth)
        .map(|i| {
            format!(
                "mod{}!{}+0x{:x}",
                i,
                random_name(rng),
                rng.uniform_range(0, 1 << 16)
            )
        })
        .collect();
    Some(SiteKey::from_text(frames.join("|")))
}

fn random_event(rng: &mut DetRng, time: Nanos) -> TraceEvent {
    match rng.uniform_range(0, 6) {
        0 => TraceEvent::Alloc(AllocationRecord {
            time,
            object: ObjectId(rng.uniform_range(0, 100) as u32),
            class: match rng.uniform_range(0, 3) {
                0 => ObjectClass::Static,
                1 => ObjectClass::Dynamic,
                _ => ObjectClass::Stack,
            },
            name: random_name(rng),
            site: random_site(rng),
            address: Address(rng.uniform_range(0, u64::MAX / 2)),
            size: ByteSize::from_bytes(rng.uniform_range(0, 1 << 40)),
        }),
        1 => TraceEvent::Free {
            time,
            object: ObjectId(rng.uniform_range(0, 100) as u32),
            address: Address(rng.uniform_range(0, u64::MAX / 2)),
        },
        2 => TraceEvent::Sample(SampleRecord {
            time,
            address: Address(rng.uniform_range(0, u64::MAX / 2)),
            object: rng
                .chance(0.5)
                .then(|| ObjectId(rng.uniform_range(0, 100) as u32)),
            weight: rng.uniform_range(1, 100_000),
            latency_cycles: rng.chance(0.5).then(|| rng.uniform_range(0, 5_000) as u32),
        }),
        3 => TraceEvent::PhaseBegin {
            time,
            name: random_name(rng),
        },
        4 => TraceEvent::PhaseEnd {
            time,
            name: random_name(rng),
        },
        _ => TraceEvent::Counters(CounterSnapshot {
            time,
            instructions: rng.uniform_range(0, u64::MAX / 2),
            llc_misses: rng.uniform_range(0, 1 << 40),
        }),
    }
}

fn random_trace(rng: &mut DetRng) -> TraceFile {
    let mut t = TraceFile::new(TraceMetadata {
        application: random_name(rng),
        ranks: rng.uniform_range(1, 128) as u32,
        threads_per_rank: rng.uniform_range(1, 16) as u32,
        sampling_period: rng.uniform_range(1, 100_000),
        min_alloc_size: rng.uniform_range(0, 1 << 20),
        rank: rng.uniform_range(0, 128) as u32,
    });
    let events = rng.uniform_range(0, 200);
    let mut clock = 0.0f64;
    for _ in 0..events {
        clock += rng.uniform() * 1e6;
        t.push(random_event(rng, Nanos(clock)));
    }
    t
}

#[test]
fn random_traces_survive_text_round_trip() {
    let mut rng = DetRng::new(0xF0221).derive("text-roundtrip");
    for case in 0..50 {
        let original = random_trace(&mut rng);
        let text = format::write_text(&original);
        let parsed = format::read_text(&text)
            .unwrap_or_else(|e| panic!("case {case}: text parse failed: {e}"));
        assert_eq!(parsed.metadata, original.metadata, "case {case} metadata");
        assert_eq!(parsed.events(), original.events(), "case {case} events");
    }
}

#[test]
fn random_traces_survive_binary_round_trip() {
    let mut rng = DetRng::new(0xF0221).derive("binary-roundtrip");
    for case in 0..50 {
        let original = random_trace(&mut rng);
        let bytes = binary::write_binary(&original);
        let back = binary::read_binary(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: binary read failed: {e}"));
        assert_eq!(back.metadata, original.metadata, "case {case} metadata");
        assert_eq!(back.events(), original.events(), "case {case} events");
    }
}

#[test]
fn text_and_binary_agree_with_each_other() {
    let mut rng = DetRng::new(0xF0221).derive("cross-format");
    for _ in 0..20 {
        let original = random_trace(&mut rng);
        let via_text = format::read_text(&format::write_text(&original)).unwrap();
        let via_binary = binary::read_binary(&binary::write_binary(&original)).unwrap();
        assert_eq!(via_text.events(), via_binary.events());
        assert_eq!(via_text.metadata, via_binary.metadata);
    }
}

#[test]
fn streaming_reader_with_tiny_chunks_matches_materialised_read() {
    let mut rng = DetRng::new(0xF0221).derive("tiny-chunks");
    for _ in 0..10 {
        let original = random_trace(&mut rng);
        let mut w = hmsim_trace::BinaryWriter::with_chunk_capacity(
            Vec::new(),
            &original.metadata,
            rng.uniform_range(1, 256) as usize,
        )
        .unwrap();
        for e in original.events() {
            w.push(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        let streamed: Vec<TraceEvent> = TraceReader::new(bytes.as_slice())
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(streamed.as_slice(), original.events());
    }
}
