//! K-way merge of per-rank trace streams into one logical multi-rank stream.
//!
//! The paper's Figure-4 grid simulates multi-rank MPI runs, but a
//! [`TraceFile`](crate::TraceFile) describes a single rank. This module
//! time-orders any number of per-rank event streams (in-memory traces or
//! [`TraceReader`](crate::binary::TraceReader)s over files) into one merged
//! stream of [`RankedEvent`]s — the analogue of Extrae's trace-merging step
//! that combines `TRACE.mpits` pieces into the final Paraver trace.
//!
//! The merge is streaming: it holds one lookahead event per input, so merging
//! `k` on-disk traces needs O(k) memory regardless of trace length. Ordering
//! is deterministic: events are emitted by ascending timestamp, ties broken
//! by rank and then by the events' order within their stream.

use crate::event::TraceEvent;
use hmsim_common::HmResult;
use std::collections::BinaryHeap;

/// One event of a merged multi-rank stream, tagged with its origin rank.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedEvent {
    /// The MPI rank whose trace produced the event.
    pub rank: u32,
    /// The event itself.
    pub event: TraceEvent,
}

struct HeapEntry {
    time_bits: u64,
    rank: u32,
    seq: u64,
    stream: usize,
    event: TraceEvent,
}

impl HeapEntry {
    /// `BinaryHeap` is a max-heap; order entries so the *earliest* event is
    /// the greatest. `f64::total_cmp` keys make the order total and
    /// deterministic (timestamps are non-negative, so the bit order matches
    /// the numeric order).
    fn sort_key(
        &self,
    ) -> (
        std::cmp::Reverse<u64>,
        std::cmp::Reverse<u32>,
        std::cmp::Reverse<u64>,
    ) {
        (
            std::cmp::Reverse(self.time_bits),
            std::cmp::Reverse(self.rank),
            std::cmp::Reverse(self.seq),
        )
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.sort_key() == other.sort_key()
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

/// A streaming k-way merge over per-rank event streams.
///
/// Construct with [`MergedStream::new`] from `(rank, stream)` pairs, where
/// each stream yields `HmResult<TraceEvent>` in non-decreasing time order
/// (what [`TraceReader`](crate::binary::TraceReader) produces and what the
/// profiler writes). The first stream error is yielded and the merge stops.
pub struct MergedStream<I: Iterator<Item = HmResult<TraceEvent>>> {
    streams: Vec<I>,
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
    /// A refill error waiting to be yielded *after* the already-popped valid
    /// event it was discovered alongside.
    deferred_error: Option<hmsim_common::HmError>,
    failed: bool,
}

impl<I: Iterator<Item = HmResult<TraceEvent>>> MergedStream<I> {
    /// Build a merge over `(rank, stream)` pairs.
    pub fn new(inputs: Vec<(u32, I)>) -> HmResult<Self> {
        let mut merged = MergedStream {
            streams: Vec::with_capacity(inputs.len()),
            heap: BinaryHeap::with_capacity(inputs.len()),
            next_seq: 0,
            deferred_error: None,
            failed: false,
        };
        let mut ranks = Vec::with_capacity(inputs.len());
        for (rank, stream) in inputs {
            merged.streams.push(stream);
            ranks.push(rank);
        }
        for (idx, rank) in ranks.into_iter().enumerate() {
            merged.refill(idx, rank)?;
        }
        Ok(merged)
    }

    /// Pull the next event of stream `idx` into the heap, if any.
    fn refill(&mut self, idx: usize, rank: u32) -> HmResult<()> {
        if let Some(item) = self.streams[idx].next() {
            let event = item?;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(HeapEntry {
                time_bits: event.time().nanos().to_bits(),
                rank,
                seq,
                stream: idx,
                event,
            });
        }
        Ok(())
    }
}

impl<I: Iterator<Item = HmResult<TraceEvent>>> Iterator for MergedStream<I> {
    type Item = HmResult<RankedEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if let Some(e) = self.deferred_error.take() {
            self.failed = true;
            return Some(Err(e));
        }
        let entry = self.heap.pop()?;
        if let Err(e) = self.refill(entry.stream, entry.rank) {
            // Emit the valid event first; the error surfaces on the next
            // call so no readable event is lost.
            self.deferred_error = Some(e);
        }
        Some(Ok(RankedEvent {
            rank: entry.rank,
            event: entry.event,
        }))
    }
}

/// Merge in-memory per-rank traces (each tagged with its metadata `rank`)
/// into one time-ordered `Vec` of ranked events.
pub fn merge_traces(traces: &[crate::TraceFile]) -> Vec<RankedEvent> {
    let inputs: Vec<(u32, _)> = traces
        .iter()
        .map(|t| (t.metadata.rank, t.events().iter().cloned().map(Ok)))
        .collect();
    MergedStream::new(inputs)
        .expect("in-memory streams cannot fail")
        .map(|e| e.expect("in-memory streams cannot fail"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_file::{TraceFile, TraceMetadata};
    use hmsim_common::Nanos;

    fn rank_trace(rank: u32, times: &[f64]) -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata {
            rank,
            ranks: 4,
            ..Default::default()
        });
        for (i, ms) in times.iter().enumerate() {
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(*ms),
                name: format!("r{rank}e{i}"),
            });
        }
        t
    }

    #[test]
    fn merge_is_time_ordered_across_ranks() {
        let traces = vec![
            rank_trace(0, &[1.0, 4.0, 9.0]),
            rank_trace(1, &[2.0, 3.0, 10.0]),
            rank_trace(2, &[0.5, 6.0]),
        ];
        let merged = merge_traces(&traces);
        assert_eq!(merged.len(), 8);
        assert!(merged
            .windows(2)
            .all(|w| w[0].event.time() <= w[1].event.time()));
        let ranks: Vec<u32> = merged.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![2, 0, 1, 1, 0, 2, 0, 1]);
    }

    #[test]
    fn ties_break_by_rank_deterministically() {
        let traces = vec![
            rank_trace(1, &[5.0, 5.0]),
            rank_trace(0, &[5.0]),
            rank_trace(3, &[5.0]),
        ];
        let merged = merge_traces(&traces);
        let ranks: Vec<u32> = merged.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, vec![0, 1, 1, 3], "rank then stream order");
    }

    #[test]
    fn merging_binary_streams_matches_in_memory_merge() {
        let traces = vec![
            rank_trace(0, &[1.0, 3.0]),
            rank_trace(1, &[2.0]),
            rank_trace(2, &[0.1, 4.0]),
            rank_trace(3, &[2.5]),
        ];
        let files: Vec<Vec<u8>> = traces.iter().map(crate::binary::write_binary).collect();
        let inputs: Vec<(u32, _)> = files
            .iter()
            .zip(&traces)
            .map(|(bytes, t)| {
                (
                    t.metadata.rank,
                    crate::binary::TraceReader::new(bytes.as_slice()).unwrap(),
                )
            })
            .collect();
        let streamed: Vec<RankedEvent> = MergedStream::new(inputs)
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(streamed, merge_traces(&traces));
    }

    /// A stream error must not swallow the valid event popped alongside it:
    /// everything decodable is emitted before the error surfaces.
    #[test]
    fn stream_error_is_deferred_until_after_the_last_valid_event() {
        let good = rank_trace(0, &[1.0, 3.0]);
        let bad = rank_trace(1, &[2.0, 4.0]);
        // One event per chunk so truncation hits between decodable events.
        let good_bytes = crate::binary::write_binary(&good);
        let mut w =
            crate::binary::BinaryWriter::with_chunk_capacity(Vec::new(), &bad.metadata, 1).unwrap();
        for e in bad.events() {
            w.push(e).unwrap();
        }
        let mut bad_bytes = w.finish().unwrap();
        bad_bytes.truncate(bad_bytes.len() - 20);

        let merged = MergedStream::new(vec![
            (
                0,
                crate::binary::TraceReader::new(good_bytes.as_slice()).unwrap(),
            ),
            (
                1,
                crate::binary::TraceReader::new(bad_bytes.as_slice()).unwrap(),
            ),
        ])
        .unwrap();
        let items: Vec<HmResult<RankedEvent>> = merged.collect();
        let ok_times: Vec<f64> = items
            .iter()
            .filter_map(|i| i.as_ref().ok().map(|e| e.event.time().millis()))
            .collect();
        assert!(
            ok_times.starts_with(&[1.0, 2.0]),
            "valid events before the error were lost: {ok_times:?}"
        );
        assert!(items.last().unwrap().is_err(), "error must surface");
    }

    #[test]
    fn empty_inputs_yield_empty_merge() {
        assert!(merge_traces(&[]).is_empty());
        assert!(merge_traces(&[rank_trace(0, &[])]).is_empty());
    }
}
