//! Line-oriented text serialisation of traces.
//!
//! The format is a simplified analogue of Paraver's `.prv`: a `#`-prefixed
//! header with the metadata, then one record per line with colon-separated
//! fields. Field contents that may contain colons (site keys, names) are
//! percent-escaped; the escape set also covers `%`, space and the
//! line-breaking controls `\n`, `\r` and `\t`, so arbitrary names round-trip
//! exactly. Parse errors carry the offending 1-based line number.
//!
//! For large traces prefer the chunked binary format in [`crate::binary`],
//! which parses an order of magnitude faster and streams without
//! materialising the file (see `BENCH_trace.json`).
//!
//! ```text
//! #hmsim-trace app=HPCG ranks=64 threads=4 period=37589 minalloc=4096 rank=0
//! A:<time_ns>:<object>:<class>:<address>:<size>:<name>:<site>
//! F:<time_ns>:<object>:<address>
//! S:<time_ns>:<address>:<object|->:<weight>:<latency|->
//! B:<time_ns>:<phase name>
//! E:<time_ns>:<phase name>
//! C:<time_ns>:<instructions>:<llc_misses>
//! ```

use crate::event::{AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent};
use crate::trace_file::{TraceFile, TraceMetadata};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, ByteSize, HmError, HmResult, Nanos, ObjectId};
use std::fmt::Write as _;

/// Percent-escape the characters that would corrupt the line format: the
/// field separator, the escape character itself, spaces (header fields are
/// whitespace-split) and every line-break/whitespace control character —
/// `\n` obviously, but also `\r` (silently eaten by `str::lines` at line
/// ends) and `\t`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            ':' => out.push_str("%3A"),
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '\t' => out.push_str("%09"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '%' {
            let hex: String = chars.by_ref().take(2).collect();
            match hex.as_str() {
                "3A" | "3a" => out.push(':'),
                "25" => out.push('%'),
                "20" => out.push(' '),
                "0A" | "0a" => out.push('\n'),
                "0D" | "0d" => out.push('\r'),
                "09" => out.push('\t'),
                other => {
                    out.push('%');
                    out.push_str(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Serialise a trace to the text format.
pub fn write_text(trace: &TraceFile) -> String {
    let m = &trace.metadata;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#hmsim-trace app={} ranks={} threads={} period={} minalloc={} rank={}",
        escape(&m.application),
        m.ranks,
        m.threads_per_rank,
        m.sampling_period,
        m.min_alloc_size,
        m.rank
    );
    for e in trace.events() {
        match e {
            TraceEvent::Alloc(a) => {
                let _ = writeln!(
                    out,
                    "A:{}:{}:{}:{}:{}:{}:{}",
                    a.time.nanos(),
                    a.object.index(),
                    a.class.code(),
                    a.address.value(),
                    a.size.bytes(),
                    escape(&a.name),
                    escape(a.site.as_ref().map(|s| s.as_str()).unwrap_or("-")),
                );
            }
            TraceEvent::Free {
                time,
                object,
                address,
            } => {
                let _ = writeln!(
                    out,
                    "F:{}:{}:{}",
                    time.nanos(),
                    object.index(),
                    address.value()
                );
            }
            TraceEvent::Sample(s) => {
                let _ = writeln!(
                    out,
                    "S:{}:{}:{}:{}:{}",
                    s.time.nanos(),
                    s.address.value(),
                    s.object
                        .map(|o| o.index().to_string())
                        .unwrap_or_else(|| "-".to_string()),
                    s.weight,
                    s.latency_cycles
                        .map(|l| l.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            TraceEvent::PhaseBegin { time, name } => {
                let _ = writeln!(out, "B:{}:{}", time.nanos(), escape(name));
            }
            TraceEvent::PhaseEnd { time, name } => {
                let _ = writeln!(out, "E:{}:{}", time.nanos(), escape(name));
            }
            TraceEvent::Counters(c) => {
                let _ = writeln!(
                    out,
                    "C:{}:{}:{}",
                    c.time.nanos(),
                    c.instructions,
                    c.llc_misses
                );
            }
        }
    }
    out
}

fn parse_f64(s: &str, line: usize) -> HmResult<f64> {
    s.parse()
        .map_err(|_| HmError::parse_at(line, format!("invalid number {s:?}")))
}

fn parse_u64(s: &str, line: usize) -> HmResult<u64> {
    s.parse()
        .map_err(|_| HmError::parse_at(line, format!("invalid integer {s:?}")))
}

/// Parse a trace from the text format.
pub fn read_text(text: &str) -> HmResult<TraceFile> {
    let mut metadata = TraceMetadata::default();
    let mut trace: Option<TraceFile> = None;
    let mut events: Vec<TraceEvent> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('#') {
            for kv in header.split_whitespace().skip(1) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| HmError::parse_at(lineno, format!("bad header field {kv:?}")))?;
                match k {
                    "app" => metadata.application = unescape(v),
                    "ranks" => metadata.ranks = parse_u64(v, lineno)? as u32,
                    "threads" => metadata.threads_per_rank = parse_u64(v, lineno)? as u32,
                    "period" => metadata.sampling_period = parse_u64(v, lineno)?,
                    "minalloc" => metadata.min_alloc_size = parse_u64(v, lineno)?,
                    "rank" => metadata.rank = parse_u64(v, lineno)? as u32,
                    _ => {}
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split(':').collect();
        let kind = fields[0];
        let need = |n: usize| -> HmResult<()> {
            if fields.len() < n {
                Err(HmError::parse_at(
                    lineno,
                    format!("record {kind:?} needs {n} fields, got {}", fields.len()),
                ))
            } else {
                Ok(())
            }
        };
        let event = match kind {
            "A" => {
                need(8)?;
                let site_text = unescape(fields[7]);
                TraceEvent::Alloc(AllocationRecord {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    object: ObjectId(parse_u64(fields[2], lineno)? as u32),
                    class: ObjectClass::from_code(fields[3]).ok_or_else(|| {
                        HmError::parse_at(lineno, format!("unknown object class {:?}", fields[3]))
                    })?,
                    address: Address(parse_u64(fields[4], lineno)?),
                    size: ByteSize::from_bytes(parse_u64(fields[5], lineno)?),
                    name: unescape(fields[6]),
                    site: (site_text != "-").then(|| SiteKey::from_text(site_text)),
                })
            }
            "F" => {
                need(4)?;
                TraceEvent::Free {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    object: ObjectId(parse_u64(fields[2], lineno)? as u32),
                    address: Address(parse_u64(fields[3], lineno)?),
                }
            }
            "S" => {
                need(6)?;
                TraceEvent::Sample(SampleRecord {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    address: Address(parse_u64(fields[2], lineno)?),
                    object: if fields[3] == "-" {
                        None
                    } else {
                        Some(ObjectId(parse_u64(fields[3], lineno)? as u32))
                    },
                    weight: parse_u64(fields[4], lineno)?,
                    latency_cycles: if fields[5] == "-" {
                        None
                    } else {
                        Some(parse_u64(fields[5], lineno)? as u32)
                    },
                })
            }
            "B" => {
                need(3)?;
                TraceEvent::PhaseBegin {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    name: unescape(fields[2]),
                }
            }
            "E" => {
                need(3)?;
                TraceEvent::PhaseEnd {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    name: unescape(fields[2]),
                }
            }
            "C" => {
                need(4)?;
                TraceEvent::Counters(CounterSnapshot {
                    time: Nanos(parse_f64(fields[1], lineno)?),
                    instructions: parse_u64(fields[2], lineno)?,
                    llc_misses: parse_u64(fields[3], lineno)?,
                })
            }
            other => {
                return Err(HmError::parse_at(
                    lineno,
                    format!("unknown record type {other:?}"),
                ))
            }
        };
        events.push(event);
        if trace.is_none() {
            trace = Some(TraceFile::new(metadata.clone()));
        }
    }

    let mut t = TraceFile::new(metadata);
    for e in events {
        t.push(e);
    }
    let _ = trace;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata {
            application: "HPCG: test".to_string(),
            ranks: 64,
            threads_per_rank: 4,
            sampling_period: 37_589,
            min_alloc_size: 4096,
            rank: 3,
        });
        t.push(TraceEvent::PhaseBegin {
            time: Nanos(1000.0),
            name: "CG: iteration".to_string(),
        });
        t.push(TraceEvent::Alloc(AllocationRecord {
            time: Nanos(1500.0),
            object: ObjectId(7),
            class: ObjectClass::Dynamic,
            name: "matrix values".to_string(),
            site: Some(SiteKey::from_text(
                "libc.so.6!malloc+0x1d|app!alloc_matrix+0x40",
            )),
            address: Address(0x7f10_0000_0000),
            size: ByteSize::from_mib(128),
        }));
        t.push(TraceEvent::Sample(SampleRecord {
            time: Nanos(2000.0),
            address: Address(0x7f10_0000_4000),
            object: Some(ObjectId(7)),
            weight: 37_589,
            latency_cycles: Some(312),
        }));
        t.push(TraceEvent::Counters(CounterSnapshot {
            time: Nanos(2500.0),
            instructions: 1_000_000,
            llc_misses: 4242,
        }));
        t.push(TraceEvent::Free {
            time: Nanos(3000.0),
            object: ObjectId(7),
            address: Address(0x7f10_0000_0000),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos(3100.0),
            name: "CG: iteration".to_string(),
        });
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_trace();
        let text = write_text(&original);
        let parsed = read_text(&text).unwrap();
        assert_eq!(parsed.metadata, original.metadata);
        assert_eq!(parsed.events(), original.events());
    }

    #[test]
    fn escaping_handles_colons_and_percent() {
        assert_eq!(unescape(&escape("a:b%c")), "a:b%c");
        assert_eq!(escape("a:b"), "a%3Ab");
        let original = sample_trace();
        let text = write_text(&original);
        // The phase name with a colon must not add extra fields.
        assert!(text
            .lines()
            .any(|l| l.starts_with("B:") && l.matches(':').count() == 2));
    }

    /// Regression: `\r` and `\t` in names used to pass through unescaped —
    /// a trailing `\r` is swallowed by `str::lines` on re-read and an
    /// embedded one corrupts the record framing.
    #[test]
    fn carriage_returns_and_tabs_in_names_survive_round_trip() {
        let hostile = [
            "name with \r return",
            "trailing\r",
            "\rleading",
            "tab\tseparated",
            "all\r\n\tof it %3A",
        ];
        let mut t = TraceFile::new(TraceMetadata {
            application: "evil\rapp\tname".to_string(),
            ..Default::default()
        });
        for (i, name) in hostile.iter().enumerate() {
            t.push(TraceEvent::PhaseBegin {
                time: Nanos(i as f64),
                name: name.to_string(),
            });
            t.push(TraceEvent::PhaseEnd {
                time: Nanos(i as f64 + 0.5),
                name: name.to_string(),
            });
        }
        let text = write_text(&t);
        // The escaped output must be exactly one physical line per record.
        assert_eq!(text.lines().count(), 1 + 2 * hostile.len());
        let parsed = read_text(&text).unwrap();
        assert_eq!(parsed.metadata.application, "evil\rapp\tname");
        assert_eq!(parsed.events(), t.events());
    }

    #[test]
    fn parse_errors_point_at_the_offending_line() {
        // Line 4 is the broken one (header, record, blank, bad record).
        let text = "#hmsim-trace app=x ranks=1 threads=1 period=1 minalloc=1 rank=0\n\
                    B:1:ok\n\
                    \n\
                    S:2:3:-:-:notanumber:-\n";
        match read_text(text).unwrap_err() {
            HmError::Parse { line, .. } => assert_eq!(line, Some(4)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn header_is_parsed() {
        let parsed = read_text(&write_text(&sample_trace())).unwrap();
        assert_eq!(parsed.metadata.application, "HPCG: test");
        assert_eq!(parsed.metadata.ranks, 64);
        assert_eq!(parsed.metadata.rank, 3);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad = "#hmsim-trace app=x ranks=1 threads=1 period=1 minalloc=1 rank=0\nZ:1:2\n";
        let err = read_text(bad).unwrap_err();
        match err {
            HmError::Parse { line, .. } => assert_eq!(line, Some(2)),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(read_text("A:1:2\n").is_err(), "truncated record must fail");
        assert!(read_text("S:1:2:3:notanumber:-\n").is_err());
    }

    #[test]
    fn empty_input_yields_empty_trace_with_defaults() {
        let t = read_text("").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.metadata.sampling_period, 37_589);
    }
}
