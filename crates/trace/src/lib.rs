//! # hmsim-trace
//!
//! The trace-file substrate standing in for Extrae's Paraver traces.
//!
//! A trace is a time-ordered sequence of events describing one simulated
//! process execution: dynamic-memory allocations and deallocations (with
//! their call-stacks and sizes), static-variable definitions, PEBS samples of
//! LLC misses (with the referenced address and, when the object is known, the
//! object it falls in), phase begin/end markers and periodic performance-
//! counter snapshots. The analysis stage (`hmsim-analysis`, our Paramedir)
//! consumes these traces; the profiler (`hmsim-profiler`, our Extrae)
//! produces them.
//!
//! Traces exist in three representations:
//!
//! * **In memory** as a [`TraceFile`] — convenient for tests and small runs.
//! * **Text** (`.prv`-like, [`mod@format`]): one record per line with
//!   colon-separated, percent-escaped fields and a `#` header. Human-readable
//!   interchange format.
//! * **Binary** ([`binary`]): a compact chunked record format with a
//!   buffered [`BinaryWriter`] and a streaming [`TraceReader`] that iterates
//!   events while holding one chunk in memory — the out-of-core capture
//!   format, sized for traces that do not fit in RAM.
//!
//! Per-rank streams can be combined with [`merge`]: a k-way, O(ranks)-memory
//! merge that time-orders events from any number of rank traces into one
//! logical multi-rank stream of [`RankedEvent`]s, mirroring Extrae's
//! `.mpits` merge step.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod event;
pub mod filter;
pub mod format;
pub mod merge;
pub mod summary;
pub mod trace_file;

pub use binary::{read_binary, write_binary, write_binary_to, BinaryWriter, TraceReader};
pub use event::{AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent};
pub use filter::EventFilter;
pub use merge::{merge_traces, MergedStream, RankedEvent};
pub use summary::TraceSummary;
pub use trace_file::{TraceFile, TraceMetadata};
