//! # hmsim-trace
//!
//! The trace-file substrate standing in for Extrae's Paraver traces.
//!
//! A trace is a time-ordered sequence of events describing one simulated
//! process execution: dynamic-memory allocations and deallocations (with
//! their call-stacks and sizes), static-variable definitions, PEBS samples of
//! LLC misses (with the referenced address and, when the object is known, the
//! object it falls in), phase begin/end markers and periodic performance-
//! counter snapshots. The analysis stage (`hmsim-analysis`, our Paramedir)
//! consumes these traces; the profiler (`hmsim-profiler`, our Extrae)
//! produces them.
//!
//! Traces can be kept in memory or serialised to a simple line-oriented text
//! format reminiscent of Paraver's `.prv` files (`record-type:time:fields…`
//! with a `#` header), implemented in [`format`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod filter;
pub mod format;
pub mod summary;
pub mod trace_file;

pub use event::{AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent};
pub use filter::EventFilter;
pub use summary::TraceSummary;
pub use trace_file::{TraceFile, TraceMetadata};
