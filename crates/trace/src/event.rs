//! Trace event model.

use hmsim_callstack::SiteKey;
use hmsim_common::{Address, ByteSize, Nanos, ObjectId};

/// Classification of the data object an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// Statically allocated variable.
    Static,
    /// Dynamically allocated object.
    Dynamic,
    /// Automatic (stack) storage.
    Stack,
}

impl ObjectClass {
    /// Short code used in the text format.
    pub fn code(self) -> &'static str {
        match self {
            ObjectClass::Static => "S",
            ObjectClass::Dynamic => "D",
            ObjectClass::Stack => "K",
        }
    }

    /// Parse from the short code.
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "S" => Some(ObjectClass::Static),
            "D" => Some(ObjectClass::Dynamic),
            "K" => Some(ObjectClass::Stack),
            _ => None,
        }
    }
}

/// An allocation (or static/stack definition) record.
#[derive(Clone, Debug, PartialEq)]
pub struct AllocationRecord {
    /// Event timestamp.
    pub time: Nanos,
    /// Object id assigned by the heap.
    pub object: ObjectId,
    /// Object classification.
    pub class: ObjectClass,
    /// Human-readable object name (static variable name or site label).
    pub name: String,
    /// Allocation call-stack (dynamic objects only).
    pub site: Option<SiteKey>,
    /// Start address of the object.
    pub address: Address,
    /// Requested size.
    pub size: ByteSize,
}

/// One PEBS sample of an LLC miss.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleRecord {
    /// Sample timestamp.
    pub time: Nanos,
    /// The referenced address captured by PEBS.
    pub address: Address,
    /// The live object containing the address at sampling time, if any
    /// (Extrae resolves this by matching against registered ranges).
    pub object: Option<ObjectId>,
    /// Number of LLC misses represented by this sample (the sampling period).
    pub weight: u64,
    /// Access latency in cycles when the PMU provides it (Xeon, not KNL).
    pub latency_cycles: Option<u32>,
}

/// A periodic performance-counter snapshot (used by the Folding timeline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CounterSnapshot {
    /// Snapshot timestamp.
    pub time: Nanos,
    /// Instructions retired since the previous snapshot.
    pub instructions: u64,
    /// LLC misses since the previous snapshot.
    pub llc_misses: u64,
}

/// One trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Memory allocation or static/stack definition.
    Alloc(AllocationRecord),
    /// Memory deallocation.
    Free {
        /// Event timestamp.
        time: Nanos,
        /// Object being freed.
        object: ObjectId,
        /// Its start address.
        address: Address,
    },
    /// PEBS sample.
    Sample(SampleRecord),
    /// Entry into a named phase (function/kernel/iteration).
    PhaseBegin {
        /// Event timestamp.
        time: Nanos,
        /// Phase name.
        name: String,
    },
    /// Exit from a named phase.
    PhaseEnd {
        /// Event timestamp.
        time: Nanos,
        /// Phase name.
        name: String,
    },
    /// Periodic counter snapshot.
    Counters(CounterSnapshot),
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn time(&self) -> Nanos {
        match self {
            TraceEvent::Alloc(a) => a.time,
            TraceEvent::Free { time, .. } => *time,
            TraceEvent::Sample(s) => s.time,
            TraceEvent::PhaseBegin { time, .. } => *time,
            TraceEvent::PhaseEnd { time, .. } => *time,
            TraceEvent::Counters(c) => c.time,
        }
    }

    /// Whether this is a sample event.
    pub fn is_sample(&self) -> bool {
        matches!(self, TraceEvent::Sample(_))
    }

    /// Whether this is an allocation event.
    pub fn is_alloc(&self) -> bool {
        matches!(self, TraceEvent::Alloc(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_class_codes_round_trip() {
        for c in [
            ObjectClass::Static,
            ObjectClass::Dynamic,
            ObjectClass::Stack,
        ] {
            assert_eq!(ObjectClass::from_code(c.code()), Some(c));
        }
        assert_eq!(ObjectClass::from_code("X"), None);
    }

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::PhaseBegin {
            time: Nanos::from_millis(5.0),
            name: "iter".to_string(),
        };
        assert_eq!(e.time(), Nanos::from_millis(5.0));
        assert!(!e.is_sample());
        assert!(!e.is_alloc());

        let s = TraceEvent::Sample(SampleRecord {
            time: Nanos::from_millis(6.0),
            address: Address(0x100),
            object: None,
            weight: 37_589,
            latency_cycles: None,
        });
        assert!(s.is_sample());
    }
}
