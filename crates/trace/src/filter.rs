//! Event filtering, the moral equivalent of Paraver configuration files.

use crate::event::TraceEvent;
use crate::trace_file::TraceFile;
use hmsim_common::Nanos;

/// A composable filter over trace events.
#[derive(Clone, Debug, Default)]
pub struct EventFilter {
    from: Option<Nanos>,
    until: Option<Nanos>,
    samples_only: bool,
    allocations_only: bool,
    phase: Option<String>,
}

impl EventFilter {
    /// A filter that accepts every event.
    pub fn all() -> Self {
        Self::default()
    }

    /// Keep only events at or after `t`.
    pub fn from(mut self, t: Nanos) -> Self {
        self.from = Some(t);
        self
    }

    /// Keep only events strictly before `t`.
    pub fn until(mut self, t: Nanos) -> Self {
        self.until = Some(t);
        self
    }

    /// Keep only PEBS samples.
    pub fn samples_only(mut self) -> Self {
        self.samples_only = true;
        self
    }

    /// Keep only allocation records.
    pub fn allocations_only(mut self) -> Self {
        self.allocations_only = true;
        self
    }

    /// Keep only events inside executions of the named phase.
    pub fn within_phase(mut self, name: impl Into<String>) -> Self {
        self.phase = Some(name.into());
        self
    }

    fn accepts_kind(&self, e: &TraceEvent) -> bool {
        if self.samples_only && !e.is_sample() {
            return false;
        }
        if self.allocations_only && !e.is_alloc() {
            return false;
        }
        true
    }

    fn accepts_time(&self, e: &TraceEvent) -> bool {
        let t = e.time();
        if let Some(from) = self.from {
            if t < from {
                return false;
            }
        }
        if let Some(until) = self.until {
            if t >= until {
                return false;
            }
        }
        true
    }

    /// Apply the filter to a trace, returning the selected events in order.
    pub fn apply<'a>(&self, trace: &'a TraceFile) -> Vec<&'a TraceEvent> {
        match &self.phase {
            None => trace
                .events()
                .iter()
                .filter(|e| self.accepts_time(e) && self.accepts_kind(e))
                .collect(),
            Some(phase) => {
                let mut depth = 0usize;
                let mut out = Vec::new();
                for e in trace.events() {
                    match e {
                        TraceEvent::PhaseBegin { name, .. } if name == phase => depth += 1,
                        TraceEvent::PhaseEnd { name, .. } if name == phase => {
                            depth = depth.saturating_sub(1)
                        }
                        _ => {
                            if depth > 0 && self.accepts_time(e) && self.accepts_kind(e) {
                                out.push(e);
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SampleRecord;
    use crate::trace_file::TraceMetadata;
    use hmsim_common::Address;

    fn trace() -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata::default());
        t.push(TraceEvent::PhaseBegin {
            time: Nanos(0.0),
            name: "outer".to_string(),
        });
        for i in 0..10u64 {
            t.push(TraceEvent::Sample(SampleRecord {
                time: Nanos(100.0 * i as f64 + 10.0),
                address: Address(0x1000 + i),
                object: None,
                weight: 1,
                latency_cycles: None,
            }));
        }
        t.push(TraceEvent::PhaseEnd {
            time: Nanos(2000.0),
            name: "outer".to_string(),
        });
        t.push(TraceEvent::Sample(SampleRecord {
            time: Nanos(2500.0),
            address: Address(0x9999),
            object: None,
            weight: 1,
            latency_cycles: None,
        }));
        t
    }

    #[test]
    fn time_window_filter() {
        let t = trace();
        let selected = EventFilter::all()
            .from(Nanos(200.0))
            .until(Nanos(600.0))
            .samples_only()
            .apply(&t);
        assert_eq!(selected.len(), 4);
        assert!(selected
            .iter()
            .all(|e| e.time() >= Nanos(200.0) && e.time() < Nanos(600.0)));
    }

    #[test]
    fn kind_filters() {
        let t = trace();
        assert_eq!(EventFilter::all().samples_only().apply(&t).len(), 11);
        assert_eq!(EventFilter::all().allocations_only().apply(&t).len(), 0);
        assert_eq!(EventFilter::all().apply(&t).len(), t.len());
    }

    #[test]
    fn phase_filter_excludes_outside_events() {
        let t = trace();
        let inside = EventFilter::all()
            .within_phase("outer")
            .samples_only()
            .apply(&t);
        assert_eq!(inside.len(), 10, "sample at t=2500 is outside the phase");
        let none = EventFilter::all().within_phase("does_not_exist").apply(&t);
        assert!(none.is_empty());
    }
}
