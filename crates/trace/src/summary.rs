//! Whole-trace summary statistics (the numbers reported per application in
//! Table I of the paper: allocations per second, samples per process, …).

use crate::event::TraceEvent;
use crate::trace_file::TraceFile;
use hmsim_common::{ByteSize, Nanos};

/// Aggregate statistics of one trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Allocation records.
    pub allocations: usize,
    /// Deallocation records.
    pub frees: usize,
    /// PEBS samples.
    pub samples: usize,
    /// Trace duration.
    pub duration: Nanos,
    /// Allocations per second of traced execution.
    pub allocations_per_second: f64,
    /// Samples per second of traced execution.
    pub samples_per_second: f64,
    /// Total bytes requested by the recorded allocations.
    pub allocated_bytes: ByteSize,
    /// Total LLC misses represented by the samples (samples × weight).
    pub sampled_misses: u64,
}

impl TraceSummary {
    /// Compute the summary of a trace.
    pub fn of(trace: &TraceFile) -> TraceSummary {
        let mut allocations = 0usize;
        let mut frees = 0usize;
        let mut samples = 0usize;
        let mut allocated_bytes = ByteSize::ZERO;
        let mut sampled_misses = 0u64;
        for e in trace.events() {
            match e {
                TraceEvent::Alloc(a) => {
                    allocations += 1;
                    allocated_bytes += a.size;
                }
                TraceEvent::Free { .. } => frees += 1,
                TraceEvent::Sample(s) => {
                    samples += 1;
                    sampled_misses += s.weight;
                }
                _ => {}
            }
        }
        let duration = trace.duration();
        let secs = duration.secs();
        let rate = |count: usize| if secs > 0.0 { count as f64 / secs } else { 0.0 };
        TraceSummary {
            events: trace.len(),
            allocations,
            frees,
            samples,
            duration,
            allocations_per_second: rate(allocations),
            samples_per_second: rate(samples),
            allocated_bytes,
            sampled_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AllocationRecord, ObjectClass, SampleRecord};
    use crate::trace_file::TraceMetadata;
    use hmsim_common::{Address, ObjectId};

    #[test]
    fn summary_counts_and_rates() {
        let mut t = TraceFile::new(TraceMetadata::default());
        for i in 0..4u64 {
            t.push(TraceEvent::Alloc(AllocationRecord {
                time: Nanos::from_secs(i as f64 * 0.5),
                object: ObjectId(i as u32),
                class: ObjectClass::Dynamic,
                name: format!("obj{i}"),
                site: None,
                address: Address(0x1000 * (i + 1)),
                size: ByteSize::from_mib(1),
            }));
        }
        t.push(TraceEvent::Free {
            time: Nanos::from_secs(1.9),
            object: ObjectId(0),
            address: Address(0x1000),
        });
        for i in 0..8u64 {
            t.push(TraceEvent::Sample(SampleRecord {
                time: Nanos::from_secs(i as f64 * 0.25),
                address: Address(0x1000),
                object: None,
                weight: 37_589,
                latency_cycles: None,
            }));
        }
        t.sort_by_time();
        let s = TraceSummary::of(&t);
        assert_eq!(s.allocations, 4);
        assert_eq!(s.frees, 1);
        assert_eq!(s.samples, 8);
        assert_eq!(s.allocated_bytes, ByteSize::from_mib(4));
        assert_eq!(s.sampled_misses, 8 * 37_589);
        assert!((s.duration.secs() - 1.9).abs() < 1e-9);
        assert!((s.allocations_per_second - 4.0 / 1.9).abs() < 1e-9);
        assert!((s.samples_per_second - 8.0 / 1.9).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_summary_is_zero() {
        let t = TraceFile::new(TraceMetadata::default());
        let s = TraceSummary::of(&t);
        assert_eq!(s.events, 0);
        assert_eq!(s.allocations_per_second, 0.0);
        assert_eq!(s.sampled_misses, 0);
    }
}
