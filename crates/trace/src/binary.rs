//! Compact chunked binary serialisation of traces.
//!
//! The text format of [`crate::format`] is convenient for eyeballing but
//! costs a full parse of every decimal field; real Extrae emits binary
//! intermediate traces precisely because capture must keep up with the
//! application. This module provides the binary analogue:
//!
//! ```text
//! [magic "HMTB"][version u16]
//! [metadata: app len+bytes, ranks u32, threads u32, period u64,
//!            minalloc u64, rank u32]
//! chunk*  where chunk = [payload_len u32][event_count u32][payload]
//! [terminator: payload_len = 0, event_count = 0]
//! ```
//!
//! All integers are little-endian; timestamps are the raw `f64` nanosecond
//! bits, so round-trips are bit-exact. Events are grouped into chunks of
//! roughly [`DEFAULT_CHUNK_BYTES`] so the writer performs one `write` per
//! chunk (not per event) and the reader holds one chunk in memory at a time —
//! [`TraceReader`] streams events without ever materialising the file.
//!
//! Per-event payload, led by a tag byte:
//!
//! | tag | record | fields |
//! |---|---|---|
//! | `1` | Alloc | time f64, object u32, class u8, address u64, size u64, name str, site opt-str |
//! | `2` | Free | time f64, object u32, address u64 |
//! | `3` | Sample | time f64, address u64, object opt-u32, weight u64, latency opt-u32 |
//! | `4` | PhaseBegin | time f64, name str |
//! | `5` | PhaseEnd | time f64, name str |
//! | `6` | Counters | time f64, instructions u64, llc_misses u64 |
//!
//! where `str` is `[len u32][utf8 bytes]` and `opt-*` is a presence byte
//! followed by the value when present.

use crate::event::{AllocationRecord, CounterSnapshot, ObjectClass, SampleRecord, TraceEvent};
use crate::trace_file::{TraceFile, TraceMetadata};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, ByteSize, HmError, HmResult, Nanos, ObjectId};
use std::io::{Read, Write};

/// File magic leading every binary trace.
pub const MAGIC: [u8; 4] = *b"HMTB";
/// Current format version.
pub const VERSION: u16 = 1;
/// Default chunk payload size the writer aims for (it flushes the current
/// chunk once the buffered payload crosses this threshold).
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

const TAG_ALLOC: u8 = 1;
const TAG_FREE: u8 = 2;
const TAG_SAMPLE: u8 = 3;
const TAG_PHASE_BEGIN: u8 = 4;
const TAG_PHASE_END: u8 = 5;
const TAG_COUNTERS: u8 = 6;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn encode_event(buf: &mut Vec<u8>, e: &TraceEvent) {
    match e {
        TraceEvent::Alloc(a) => {
            buf.push(TAG_ALLOC);
            put_f64(buf, a.time.nanos());
            put_u32(buf, a.object.0);
            buf.push(match a.class {
                ObjectClass::Static => 0,
                ObjectClass::Dynamic => 1,
                ObjectClass::Stack => 2,
            });
            put_u64(buf, a.address.value());
            put_u64(buf, a.size.bytes());
            put_str(buf, &a.name);
            match &a.site {
                Some(site) => {
                    buf.push(1);
                    put_str(buf, site.as_str());
                }
                None => buf.push(0),
            }
        }
        TraceEvent::Free {
            time,
            object,
            address,
        } => {
            buf.push(TAG_FREE);
            put_f64(buf, time.nanos());
            put_u32(buf, object.0);
            put_u64(buf, address.value());
        }
        TraceEvent::Sample(s) => {
            buf.push(TAG_SAMPLE);
            put_f64(buf, s.time.nanos());
            put_u64(buf, s.address.value());
            match s.object {
                Some(o) => {
                    buf.push(1);
                    put_u32(buf, o.0);
                }
                None => buf.push(0),
            }
            put_u64(buf, s.weight);
            match s.latency_cycles {
                Some(l) => {
                    buf.push(1);
                    put_u32(buf, l);
                }
                None => buf.push(0),
            }
        }
        TraceEvent::PhaseBegin { time, name } => {
            buf.push(TAG_PHASE_BEGIN);
            put_f64(buf, time.nanos());
            put_str(buf, name);
        }
        TraceEvent::PhaseEnd { time, name } => {
            buf.push(TAG_PHASE_END);
            put_f64(buf, time.nanos());
            put_str(buf, name);
        }
        TraceEvent::Counters(c) => {
            buf.push(TAG_COUNTERS);
            put_f64(buf, c.time.nanos());
            put_u64(buf, c.instructions);
            put_u64(buf, c.llc_misses);
        }
    }
}

/// Chunked, buffered writer of the binary trace format.
///
/// Events are appended with [`push`](Self::push); the writer batches them
/// into chunks and emits one I/O write per chunk. [`finish`](Self::finish)
/// flushes the tail chunk and the end-of-trace terminator — dropping the
/// writer without calling it produces a truncated (unreadable) trace.
pub struct BinaryWriter<W: Write> {
    sink: W,
    chunk: Vec<u8>,
    chunk_events: u32,
    chunk_capacity: usize,
    events_written: u64,
}

impl<W: Write> BinaryWriter<W> {
    /// Start a binary trace on `sink`, writing the header immediately.
    pub fn new(sink: W, metadata: &TraceMetadata) -> HmResult<Self> {
        Self::with_chunk_capacity(sink, metadata, DEFAULT_CHUNK_BYTES)
    }

    /// Like [`new`](Self::new) with an explicit chunk-payload threshold
    /// (tests, tuning).
    pub fn with_chunk_capacity(
        mut sink: W,
        metadata: &TraceMetadata,
        chunk_capacity: usize,
    ) -> HmResult<Self> {
        let mut header = Vec::with_capacity(64 + metadata.application.len());
        header.extend_from_slice(&MAGIC);
        put_u16(&mut header, VERSION);
        put_str(&mut header, &metadata.application);
        put_u32(&mut header, metadata.ranks);
        put_u32(&mut header, metadata.threads_per_rank);
        put_u64(&mut header, metadata.sampling_period);
        put_u64(&mut header, metadata.min_alloc_size);
        put_u32(&mut header, metadata.rank);
        sink.write_all(&header)?;
        Ok(BinaryWriter {
            sink,
            chunk: Vec::with_capacity(chunk_capacity + 256),
            chunk_events: 0,
            chunk_capacity: chunk_capacity.max(1),
            events_written: 0,
        })
    }

    /// Append one event (buffered; flushed when the chunk fills).
    pub fn push(&mut self, event: &TraceEvent) -> HmResult<()> {
        encode_event(&mut self.chunk, event);
        self.chunk_events += 1;
        self.events_written += 1;
        if self.chunk.len() >= self.chunk_capacity {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Events pushed so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    fn flush_chunk(&mut self) -> HmResult<()> {
        if self.chunk_events == 0 {
            return Ok(());
        }
        let mut frame = [0u8; 8];
        frame[..4].copy_from_slice(&(self.chunk.len() as u32).to_le_bytes());
        frame[4..].copy_from_slice(&self.chunk_events.to_le_bytes());
        self.sink.write_all(&frame)?;
        self.sink.write_all(&self.chunk)?;
        self.chunk.clear();
        self.chunk_events = 0;
        Ok(())
    }

    /// Flush the tail chunk, write the terminator and return the sink.
    pub fn finish(mut self) -> HmResult<W> {
        self.flush_chunk()?;
        self.sink.write_all(&[0u8; 8])?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Write a whole in-memory trace through the chunked writer into `sink`,
/// returning the sink.
pub fn write_binary_to<W: Write>(sink: W, trace: &TraceFile) -> HmResult<W> {
    let mut w = BinaryWriter::new(sink, &trace.metadata)?;
    for e in trace.events() {
        w.push(e)?;
    }
    w.finish()
}

/// Serialise a whole in-memory trace to binary bytes (convenience wrapper
/// over [`write_binary_to`]).
pub fn write_binary(trace: &TraceFile) -> Vec<u8> {
    write_binary_to(Vec::new(), trace).expect("Vec<u8> sink cannot fail")
}

/// Materialise a binary trace into a [`TraceFile`] (convenience wrapper over
/// [`TraceReader`]; prefer streaming for large traces).
pub fn read_binary(bytes: &[u8]) -> HmResult<TraceFile> {
    let reader = TraceReader::new(bytes)?;
    let mut t = TraceFile::new(reader.metadata().clone());
    for e in reader {
        t.push(e?);
    }
    Ok(t)
}

/// Streaming reader of the binary format: an `Iterator` over
/// `HmResult<TraceEvent>` holding at most one chunk in memory.
pub struct TraceReader<R: Read> {
    source: R,
    metadata: TraceMetadata,
    chunk: Vec<u8>,
    cursor: usize,
    chunk_events_left: u32,
    done: bool,
    events_read: u64,
}

impl TraceReader<std::io::BufReader<std::fs::File>> {
    /// Open a binary trace file for streaming.
    pub fn open(path: impl AsRef<std::path::Path>) -> HmResult<Self> {
        let file = std::fs::File::open(path)?;
        TraceReader::new(std::io::BufReader::new(file))
    }
}

impl<R: Read> TraceReader<R> {
    /// Read the header from `source` and prepare to stream events.
    pub fn new(mut source: R) -> HmResult<Self> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(HmError::parse(format!(
                "not a binary hmsim trace (magic {magic:02x?})"
            )));
        }
        let mut v = [0u8; 2];
        source.read_exact(&mut v)?;
        let version = u16::from_le_bytes(v);
        if version != VERSION {
            return Err(HmError::parse(format!(
                "unsupported binary trace version {version} (expected {VERSION})"
            )));
        }
        let application = read_str(&mut source)?;
        let mut fixed = [0u8; 28];
        source.read_exact(&mut fixed)?;
        let metadata = TraceMetadata {
            application,
            ranks: u32::from_le_bytes(fixed[0..4].try_into().unwrap()),
            threads_per_rank: u32::from_le_bytes(fixed[4..8].try_into().unwrap()),
            sampling_period: u64::from_le_bytes(fixed[8..16].try_into().unwrap()),
            min_alloc_size: u64::from_le_bytes(fixed[16..24].try_into().unwrap()),
            rank: u32::from_le_bytes(fixed[24..28].try_into().unwrap()),
        };
        Ok(TraceReader {
            source,
            metadata,
            chunk: Vec::new(),
            cursor: 0,
            chunk_events_left: 0,
            done: false,
            events_read: 0,
        })
    }

    /// The trace metadata from the header.
    pub fn metadata(&self) -> &TraceMetadata {
        &self.metadata
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    fn load_next_chunk(&mut self) -> HmResult<bool> {
        let mut frame = [0u8; 8];
        self.source.read_exact(&mut frame)?;
        let payload_len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let event_count = u32::from_le_bytes(frame[4..].try_into().unwrap());
        if payload_len == 0 && event_count == 0 {
            return Ok(false);
        }
        if payload_len == 0 || event_count == 0 {
            return Err(HmError::parse(format!(
                "corrupt chunk frame: {payload_len} bytes / {event_count} events"
            )));
        }
        self.chunk.resize(payload_len, 0);
        self.source.read_exact(&mut self.chunk)?;
        self.cursor = 0;
        self.chunk_events_left = event_count;
        Ok(true)
    }

    fn decode_event(&mut self) -> HmResult<TraceEvent> {
        let tag = self.take_u8()?;
        let time = Nanos(f64::from_le_bytes(self.take::<8>()?));
        let event = match tag {
            TAG_ALLOC => {
                let object = ObjectId(u32::from_le_bytes(self.take::<4>()?));
                let class = match self.take_u8()? {
                    0 => ObjectClass::Static,
                    1 => ObjectClass::Dynamic,
                    2 => ObjectClass::Stack,
                    other => {
                        return Err(HmError::parse(format!("unknown object class tag {other}")))
                    }
                };
                let address = Address(u64::from_le_bytes(self.take::<8>()?));
                let size = ByteSize::from_bytes(u64::from_le_bytes(self.take::<8>()?));
                let name = self.take_str()?;
                let site = if self.take_u8()? != 0 {
                    Some(SiteKey::from_text(self.take_str()?))
                } else {
                    None
                };
                TraceEvent::Alloc(AllocationRecord {
                    time,
                    object,
                    class,
                    name,
                    site,
                    address,
                    size,
                })
            }
            TAG_FREE => TraceEvent::Free {
                time,
                object: ObjectId(u32::from_le_bytes(self.take::<4>()?)),
                address: Address(u64::from_le_bytes(self.take::<8>()?)),
            },
            TAG_SAMPLE => {
                let address = Address(u64::from_le_bytes(self.take::<8>()?));
                let object = if self.take_u8()? != 0 {
                    Some(ObjectId(u32::from_le_bytes(self.take::<4>()?)))
                } else {
                    None
                };
                let weight = u64::from_le_bytes(self.take::<8>()?);
                let latency_cycles = if self.take_u8()? != 0 {
                    Some(u32::from_le_bytes(self.take::<4>()?))
                } else {
                    None
                };
                TraceEvent::Sample(SampleRecord {
                    time,
                    address,
                    object,
                    weight,
                    latency_cycles,
                })
            }
            TAG_PHASE_BEGIN => TraceEvent::PhaseBegin {
                time,
                name: self.take_str()?,
            },
            TAG_PHASE_END => TraceEvent::PhaseEnd {
                time,
                name: self.take_str()?,
            },
            TAG_COUNTERS => TraceEvent::Counters(CounterSnapshot {
                time,
                instructions: u64::from_le_bytes(self.take::<8>()?),
                llc_misses: u64::from_le_bytes(self.take::<8>()?),
            }),
            other => return Err(HmError::parse(format!("unknown event tag {other}"))),
        };
        Ok(event)
    }

    fn take<const N: usize>(&mut self) -> HmResult<[u8; N]> {
        let end = self.cursor + N;
        let slice = self
            .chunk
            .get(self.cursor..end)
            .ok_or_else(|| HmError::parse("truncated event inside chunk"))?;
        self.cursor = end;
        Ok(slice.try_into().unwrap())
    }

    fn take_u8(&mut self) -> HmResult<u8> {
        Ok(self.take::<1>()?[0])
    }

    fn take_str(&mut self) -> HmResult<String> {
        let len = u32::from_le_bytes(self.take::<4>()?) as usize;
        let end = self.cursor + len;
        let bytes = self
            .chunk
            .get(self.cursor..end)
            .ok_or_else(|| HmError::parse("truncated string inside chunk"))?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| HmError::parse("invalid UTF-8 in trace string"))?
            .to_string();
        self.cursor = end;
        Ok(s)
    }
}

fn read_str<R: Read>(source: &mut R) -> HmResult<String> {
    let mut len = [0u8; 4];
    source.read_exact(&mut len)?;
    let mut bytes = vec![0u8; u32::from_le_bytes(len) as usize];
    source.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| HmError::parse("invalid UTF-8 in trace header"))
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = HmResult<TraceEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.chunk_events_left == 0 {
            match self.load_next_chunk() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        self.chunk_events_left -= 1;
        match self.decode_event() {
            Ok(e) => {
                self.events_read += 1;
                Some(Ok(e))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceFile {
        let mut t = TraceFile::new(TraceMetadata {
            application: "SNAP: hostile % name".to_string(),
            ranks: 8,
            threads_per_rank: 2,
            sampling_period: 37_589,
            min_alloc_size: 4096,
            rank: 5,
        });
        t.push(TraceEvent::PhaseBegin {
            time: Nanos(10.0),
            name: "iter:0\nweird".to_string(),
        });
        t.push(TraceEvent::Alloc(AllocationRecord {
            time: Nanos(20.5),
            object: ObjectId(3),
            class: ObjectClass::Dynamic,
            name: "flux buffer".to_string(),
            site: Some(SiteKey::from_text("snap!alloc+0x40|libc!malloc+0x1d")),
            address: Address(0x7f00_0000_0000),
            size: ByteSize::from_mib(64),
        }));
        t.push(TraceEvent::Sample(SampleRecord {
            time: Nanos(30.0),
            address: Address(0x7f00_0000_1000),
            object: Some(ObjectId(3)),
            weight: 37_589,
            latency_cycles: None,
        }));
        t.push(TraceEvent::Counters(CounterSnapshot {
            time: Nanos(40.0),
            instructions: 123_456_789,
            llc_misses: 98_765,
        }));
        t.push(TraceEvent::Free {
            time: Nanos(50.0),
            object: ObjectId(3),
            address: Address(0x7f00_0000_0000),
        });
        t.push(TraceEvent::PhaseEnd {
            time: Nanos(60.0),
            name: "iter:0\nweird".to_string(),
        });
        t
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let original = sample_trace();
        let bytes = write_binary(&original);
        let back = read_binary(&bytes).unwrap();
        assert_eq!(back.metadata, original.metadata);
        assert_eq!(back.events(), original.events());
    }

    #[test]
    fn streaming_reader_never_needs_the_whole_file() {
        let original = sample_trace();
        // Tiny chunks force many chunk boundaries.
        let mut w = BinaryWriter::with_chunk_capacity(Vec::new(), &original.metadata, 16).unwrap();
        for e in original.events() {
            w.push(e).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.metadata().rank, 5);
        let events: Vec<TraceEvent> = reader.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.as_slice(), original.events());
        assert_eq!(reader.events_read(), original.len() as u64);
        // At any point the reader held at most one (tiny) chunk.
        assert!(reader.chunk.capacity() < 1024);
    }

    #[test]
    fn bad_magic_and_truncation_are_errors() {
        assert!(TraceReader::new(&b"NOPE"[..]).is_err());
        let bytes = write_binary(&sample_trace());
        // Chop the terminator and part of the last chunk.
        let truncated = &bytes[..bytes.len() - 12];
        let reader = TraceReader::new(truncated).unwrap();
        let result: HmResult<Vec<TraceEvent>> = reader.collect();
        assert!(result.is_err(), "truncated stream must surface an error");
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceFile::new(TraceMetadata::default());
        let back = read_binary(&write_binary(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.metadata, t.metadata);
    }

    #[test]
    fn writer_counts_events() {
        let t = sample_trace();
        let mut w = BinaryWriter::new(Vec::new(), &t.metadata).unwrap();
        for e in t.events() {
            w.push(e).unwrap();
        }
        assert_eq!(w.events_written(), t.len() as u64);
        w.finish().unwrap();
    }
}
