//! In-memory trace container with metadata.

use crate::event::TraceEvent;
use hmsim_common::Nanos;

/// Metadata describing how a trace was captured.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMetadata {
    /// Application name.
    pub application: String,
    /// Number of MPI ranks in the run this trace represents.
    pub ranks: u32,
    /// Threads per rank.
    pub threads_per_rank: u32,
    /// PEBS sampling period (one sample every `sampling_period` LLC misses).
    pub sampling_period: u64,
    /// Minimum allocation size instrumented (bytes).
    pub min_alloc_size: u64,
    /// The rank this trace belongs to.
    pub rank: u32,
}

impl Default for TraceMetadata {
    fn default() -> Self {
        TraceMetadata {
            application: "unknown".to_string(),
            ranks: 1,
            threads_per_rank: 1,
            // The paper samples one out of every 37,589 L2 misses.
            sampling_period: 37_589,
            // And only instruments allocations larger than 4 KiB.
            min_alloc_size: 4096,
            rank: 0,
        }
    }
}

/// A trace: metadata plus a time-ordered list of events.
#[derive(Clone, Debug)]
pub struct TraceFile {
    /// Capture metadata.
    pub metadata: TraceMetadata,
    events: Vec<TraceEvent>,
}

impl Default for TraceFile {
    fn default() -> Self {
        TraceFile::new(TraceMetadata::default())
    }
}

impl TraceFile {
    /// Create an empty trace with the given metadata.
    pub fn new(metadata: TraceMetadata) -> Self {
        TraceFile {
            metadata,
            events: Vec::new(),
        }
    }

    /// Append an event (events are expected in non-decreasing time order;
    /// the writer does not reorder).
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timestamp of the last event (trace duration).
    pub fn duration(&self) -> Nanos {
        self.events
            .iter()
            .map(TraceEvent::time)
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Count of sample events.
    pub fn sample_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_sample()).count()
    }

    /// Count of allocation events.
    pub fn alloc_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_alloc()).count()
    }

    /// Sort events by timestamp (stable), for traces assembled out of order.
    pub fn sort_by_time(&mut self) {
        self.events
            .sort_by(|a, b| a.time().partial_cmp(&b.time()).expect("no NaN timestamps"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterSnapshot, SampleRecord};
    use hmsim_common::Address;

    #[test]
    fn push_and_query() {
        let mut t = TraceFile::new(TraceMetadata::default());
        assert!(t.is_empty());
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(1.0),
            name: "main".to_string(),
        });
        t.push(TraceEvent::Sample(SampleRecord {
            time: Nanos::from_millis(2.0),
            address: Address(0x1000),
            object: None,
            weight: 37_589,
            latency_cycles: None,
        }));
        t.push(TraceEvent::Counters(CounterSnapshot {
            time: Nanos::from_millis(3.0),
            instructions: 1000,
            llc_misses: 10,
        }));
        assert_eq!(t.len(), 3);
        assert_eq!(t.sample_count(), 1);
        assert_eq!(t.alloc_count(), 0);
        assert_eq!(t.duration(), Nanos::from_millis(3.0));
    }

    #[test]
    fn default_metadata_matches_paper_settings() {
        let m = TraceMetadata::default();
        assert_eq!(m.sampling_period, 37_589);
        assert_eq!(m.min_alloc_size, 4096);
    }

    #[test]
    fn sort_by_time_orders_events() {
        let mut t = TraceFile::new(TraceMetadata::default());
        for ms in [5.0, 1.0, 3.0] {
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(ms),
                name: format!("p{ms}"),
            });
        }
        t.sort_by_time();
        let times: Vec<f64> = t.events().iter().map(|e| e.time().millis()).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }
}
