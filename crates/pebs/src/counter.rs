//! PEBS-capable events and per-family capabilities.

/// The precise events the framework can sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PebsEvent {
    /// LLC (L2 on KNL) load misses — the event the paper's framework uses to
    /// approximate per-object access cost.
    LlcLoadMiss,
    /// LLC load references (hits or misses), available on KNL.
    LlcLoadReference,
    /// Retired stores that missed L1 (Xeon only).
    L1StoreMiss,
}

/// Processor families with different PEBS payload richness (paper §III,
/// step 1: KNL provides only the address; Xeon additionally provides latency
/// and the data source).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessorFamily {
    /// Intel Xeon Phi (Knights Landing).
    KnightsLanding,
    /// Big-core Intel Xeon.
    Xeon,
}

/// What a PEBS record contains for a given family/event combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PebsCapability {
    /// The referenced data address is captured.
    pub captures_address: bool,
    /// The access latency (in cycles) is captured.
    pub captures_latency: bool,
    /// The level of the hierarchy that served the access is captured.
    pub captures_data_source: bool,
    /// Store instructions can be sampled precisely.
    pub captures_stores: bool,
}

impl ProcessorFamily {
    /// The capability matrix of this family for the given event.
    pub fn capability(self, event: PebsEvent) -> PebsCapability {
        match (self, event) {
            (ProcessorFamily::KnightsLanding, PebsEvent::LlcLoadMiss)
            | (ProcessorFamily::KnightsLanding, PebsEvent::LlcLoadReference) => PebsCapability {
                captures_address: true,
                captures_latency: false,
                captures_data_source: false,
                captures_stores: false,
            },
            (ProcessorFamily::KnightsLanding, PebsEvent::L1StoreMiss) => PebsCapability {
                captures_address: false,
                captures_latency: false,
                captures_data_source: false,
                captures_stores: false,
            },
            (ProcessorFamily::Xeon, _) => PebsCapability {
                captures_address: true,
                captures_latency: true,
                captures_data_source: true,
                captures_stores: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_provides_only_addresses() {
        let cap = ProcessorFamily::KnightsLanding.capability(PebsEvent::LlcLoadMiss);
        assert!(cap.captures_address);
        assert!(!cap.captures_latency);
        assert!(!cap.captures_data_source);
    }

    #[test]
    fn xeon_is_richer() {
        let cap = ProcessorFamily::Xeon.capability(PebsEvent::LlcLoadMiss);
        assert!(cap.captures_address && cap.captures_latency && cap.captures_data_source);
        assert!(cap.captures_stores);
    }

    #[test]
    fn knl_cannot_sample_store_addresses() {
        let cap = ProcessorFamily::KnightsLanding.capability(PebsEvent::L1StoreMiss);
        assert!(!cap.captures_address);
    }
}
