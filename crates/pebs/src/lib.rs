//! # hmsim-pebs
//!
//! A model of Intel's Precise Event-Based Sampling (PEBS) as the paper uses
//! it: a hardware counter is armed with a *sampling period*; every time the
//! chosen event (LLC load misses here) has occurred `period` times, the PMU
//! captures a record containing the referenced data address (and, on
//! big-core Xeons, the access latency and the part of the hierarchy that
//! served the load). Records accumulate in a buffer that the tracing runtime
//! drains.
//!
//! The paper samples one out of every 37,589 L2 misses on the Xeon Phi,
//! keeping the monitoring overhead "typically below 1 %".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod counter;
pub mod sampler;

pub use buffer::SampleBuffer;
pub use counter::{PebsCapability, PebsEvent, ProcessorFamily};
pub use sampler::{PebsSampler, RawSample};
