//! The PEBS record buffer (debug store area) and its drain interface.
//!
//! Hardware writes PEBS records into a memory buffer and raises an interrupt
//! when it is nearly full; the tracing runtime then drains it. Modelling the
//! buffer lets the profiler account for drain overhead and lets ablation
//! studies explore buffer sizing.

use crate::sampler::RawSample;

/// A bounded PEBS record buffer.
#[derive(Clone, Debug)]
pub struct SampleBuffer {
    records: Vec<RawSample>,
    capacity: usize,
    /// Records dropped because the buffer was full (should stay 0 when the
    /// runtime drains promptly).
    dropped: u64,
    /// Number of overflow interrupts raised (capacity reached).
    interrupts: u64,
}

impl SampleBuffer {
    /// Create a buffer holding up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        SampleBuffer {
            records: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            dropped: 0,
            interrupts: 0,
        }
    }

    /// Push a record. Returns `true` if the buffer reached capacity and an
    /// interrupt should fire (the caller is expected to drain).
    pub fn push(&mut self, sample: RawSample) -> bool {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return true;
        }
        self.records.push(sample);
        if self.records.len() >= self.capacity {
            self.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// Drain all buffered records.
    pub fn drain(&mut self) -> Vec<RawSample> {
        std::mem::take(&mut self.records)
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Overflow interrupts raised.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::{Address, Nanos};

    fn sample(i: u64) -> RawSample {
        RawSample {
            time: Nanos(i as f64),
            address: Address(i),
            latency_cycles: None,
            weight: 1,
        }
    }

    #[test]
    fn push_and_drain() {
        let mut b = SampleBuffer::new(4);
        assert!(b.is_empty());
        for i in 0..3 {
            assert!(!b.push(sample(i)));
        }
        assert!(b.push(sample(3)), "capacity reached raises interrupt");
        assert_eq!(b.interrupts(), 1);
        let drained = b.drain();
        assert_eq!(drained.len(), 4);
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn overflow_drops_records() {
        let mut b = SampleBuffer::new(2);
        b.push(sample(0));
        b.push(sample(1));
        assert!(b.push(sample(2)), "overflow still signals interrupt");
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.len(), 2);
    }
}
