//! The period-driven sampler.

use crate::counter::{PebsEvent, ProcessorFamily};
use hmsim_common::{Address, DetRng, Nanos};

/// One raw PEBS record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawSample {
    /// Time the record was captured.
    pub time: Nanos,
    /// Referenced data address (always present for the events we use on the
    /// families we model; see [`ProcessorFamily::capability`]).
    pub address: Address,
    /// Access latency in cycles, when the family captures it.
    pub latency_cycles: Option<u32>,
    /// Number of events represented by this sample (the period).
    pub weight: u64,
}

/// A PEBS sampler armed on one event with a fixed period.
#[derive(Clone, Debug)]
pub struct PebsSampler {
    family: ProcessorFamily,
    event: PebsEvent,
    period: u64,
    /// Events seen since the last sample fired.
    residual: u64,
    /// Total events observed.
    total_events: u64,
    /// Total samples emitted.
    total_samples: u64,
    rng: DetRng,
}

impl PebsSampler {
    /// Arm a sampler. `period` must be at least 1. The initial counter offset
    /// is randomised so that periodic access patterns do not alias with the
    /// sampling period (standard PMU practice).
    pub fn new(family: ProcessorFamily, event: PebsEvent, period: u64, mut rng: DetRng) -> Self {
        let period = period.max(1);
        let residual = if period > 1 {
            rng.uniform_range(0, period)
        } else {
            0
        };
        PebsSampler {
            family,
            event,
            period,
            residual,
            total_events: 0,
            total_samples: 0,
            rng,
        }
    }

    /// The sampler used throughout the paper: LLC load misses on KNL with a
    /// period of 37,589.
    pub fn paper_default(rng: DetRng) -> Self {
        Self::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            37_589,
            rng,
        )
    }

    /// The sampling period.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Events observed so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Samples emitted so far.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Observe a single event at `time` referencing `address`; returns a
    /// sample if the period elapsed.
    pub fn observe(&mut self, time: Nanos, address: Address) -> Option<RawSample> {
        self.total_events += 1;
        self.residual += 1;
        if self.residual < self.period {
            return None;
        }
        self.residual = 0;
        self.total_samples += 1;
        Some(RawSample {
            time,
            address,
            latency_cycles: self.synthesize_latency(),
            weight: self.period,
        })
    }

    /// Observe `count` events spread uniformly over the interval
    /// `[start, start+duration)`, drawing sampled addresses from
    /// `address_of`, which receives a uniform value in `[0, 1)` locating the
    /// sample within the interval. This is the bulk path used by the
    /// analytical profiler, where individual misses are not enumerated.
    pub fn observe_bulk<F>(
        &mut self,
        start: Nanos,
        duration: Nanos,
        count: u64,
        mut address_of: F,
    ) -> Vec<RawSample>
    where
        F: FnMut(&mut DetRng) -> Address,
    {
        if count == 0 {
            return Vec::new();
        }
        self.total_events += count;
        let available = self.residual + count;
        let fires = available / self.period;
        self.residual = available % self.period;
        let end = start + duration;
        let mut out = Vec::with_capacity(fires as usize);
        for i in 0..fires {
            // Spread sample timestamps across the interval in event order,
            // with a little jitter.
            let frac = (i as f64 + self.rng.uniform() * 0.8 + 0.1) / (fires as f64).max(1.0);
            let mut time = start + duration * frac.clamp(0.0, 1.0);
            // The interval is half-open: a fraction that rounds up to 1.0
            // (the last fire of a huge batch) must not stamp the sample at
            // `start + duration` itself. Nudge it to the largest
            // representable instant strictly inside the interval.
            if time >= end {
                time = Nanos(f64::from_bits(end.nanos().to_bits().saturating_sub(1))).max(start);
            }
            let address = address_of(&mut self.rng);
            out.push(RawSample {
                time,
                address,
                latency_cycles: self.synthesize_latency(),
                weight: self.period,
            });
            self.total_samples += 1;
        }
        out
    }

    fn synthesize_latency(&mut self) -> Option<u32> {
        let cap = self.family.capability(self.event);
        cap.captures_latency.then(|| {
            // Plausible LLC-miss latency distribution: 150–600 cycles.
            150 + (self.rng.exponential(120.0) as u32).min(450)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(period: u64) -> PebsSampler {
        PebsSampler::new(
            ProcessorFamily::KnightsLanding,
            PebsEvent::LlcLoadMiss,
            period,
            DetRng::new(7),
        )
    }

    #[test]
    fn one_sample_every_period_events() {
        let mut s = sampler(10);
        let mut samples = 0;
        for i in 0..1000u64 {
            if s.observe(Nanos(i as f64), Address(0x1000 + i)).is_some() {
                samples += 1;
            }
        }
        assert_eq!(samples, 100);
        assert_eq!(s.total_samples(), 100);
        assert_eq!(s.total_events(), 1000);
    }

    #[test]
    fn period_one_samples_everything() {
        let mut s = sampler(1);
        for i in 0..50u64 {
            assert!(s.observe(Nanos(i as f64), Address(i)).is_some());
        }
    }

    #[test]
    fn bulk_observation_matches_expected_rate() {
        let mut s = sampler(37_589);
        let samples = s.observe_bulk(
            Nanos::ZERO,
            Nanos::from_secs(1.0),
            37_589 * 25 + 12,
            |rng| Address(rng.uniform_range(0x1000, 0x2000)),
        );
        assert!(
            samples.len() == 25 || samples.len() == 26,
            "got {}",
            samples.len()
        );
        assert!(samples.iter().all(|smp| smp.weight == 37_589));
        // Timestamps fall inside the half-open interval and are ordered.
        assert!(samples.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(samples
            .iter()
            .all(|smp| smp.time >= Nanos::ZERO && smp.time < Nanos::from_secs(1.0)));
    }

    /// A jitter fraction that clamps to 1.0 must not stamp the sample at
    /// `start + duration`: the interval is documented half-open. One fire
    /// out of one event lands the raw fraction at `(0 + jitter) / 1 < 1`,
    /// so force the boundary by driving many fires and checking the last
    /// sample of every batch stays strictly inside.
    #[test]
    fn bulk_samples_never_touch_the_interval_end() {
        for seed in 0..32u64 {
            let mut s = PebsSampler::new(
                ProcessorFamily::KnightsLanding,
                PebsEvent::LlcLoadMiss,
                3,
                DetRng::new(seed),
            );
            let start = Nanos(5.0);
            let duration = Nanos(2.0);
            let samples = s.observe_bulk(start, duration, 3 * 1000, |_| Address(1));
            assert!(samples
                .iter()
                .all(|smp| smp.time >= start && smp.time < start + duration));
        }
        // Degenerate zero-length interval: the only representable choice is
        // `start` itself.
        let mut s = sampler(1);
        let samples = s.observe_bulk(Nanos(9.0), Nanos::ZERO, 4, |_| Address(1));
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|smp| smp.time == Nanos(9.0)));
    }

    /// Seeded property test: `observe` and `observe_bulk` emit the same
    /// number of samples for the same event stream, whatever the period and
    /// however the stream is fragmented into bulk chunks (the residual must
    /// carry over exactly).
    #[test]
    fn observe_and_observe_bulk_emit_identical_sample_counts() {
        let mut rng = DetRng::new(0x5eed_cafe);
        for case in 0..200u64 {
            let period = rng.uniform_range(1, 1_500);
            let total = rng.uniform_range(0, 12_000);
            let family = if rng.chance(0.5) {
                ProcessorFamily::KnightsLanding
            } else {
                ProcessorFamily::Xeon
            };
            // Both samplers must start from the same randomized counter
            // offset, so they share a construction seed.
            let seed = rng.next_u64();
            let mk = || PebsSampler::new(family, PebsEvent::LlcLoadMiss, period, DetRng::new(seed));

            let mut scalar = mk();
            let mut scalar_samples = 0u64;
            for i in 0..total {
                if scalar
                    .observe(Nanos(i as f64), Address(0x1000 + i))
                    .is_some()
                {
                    scalar_samples += 1;
                }
            }

            let mut bulk = mk();
            let mut bulk_samples = 0u64;
            let mut remaining = total;
            let mut t = 0.0f64;
            while remaining > 0 {
                let chunk = rng.uniform_range(1, remaining + 1).min(remaining);
                bulk_samples += bulk
                    .observe_bulk(Nanos(t), Nanos(chunk as f64), chunk, |r| {
                        Address(r.uniform_range(0x1000, 0x2000))
                    })
                    .len() as u64;
                t += chunk as f64;
                remaining -= chunk;
            }

            assert_eq!(
                scalar_samples, bulk_samples,
                "case {case}: period {period}, {total} events split randomly"
            );
            assert_eq!(scalar.total_samples(), bulk.total_samples(), "case {case}");
            assert_eq!(scalar.total_events(), bulk.total_events(), "case {case}");
        }
    }

    #[test]
    fn bulk_residual_carries_over() {
        let mut s = sampler(100);
        // 3 calls of 40 events: residual accumulates to fire on the 3rd.
        let a = s.observe_bulk(Nanos::ZERO, Nanos(1.0), 40, |_| Address(1));
        let b = s.observe_bulk(Nanos(1.0), Nanos(1.0), 40, |_| Address(1));
        let c = s.observe_bulk(Nanos(2.0), Nanos(1.0), 40, |_| Address(1));
        let total = a.len() + b.len() + c.len();
        // 120 events at period 100 yield one sample, or two if the random
        // initial counter offset was already ≥ 80.
        assert!((1..=2).contains(&total), "got {total}");
        assert_eq!(s.total_events(), 120);
    }

    #[test]
    fn knl_samples_have_no_latency_but_xeon_do() {
        let mut knl = sampler(1);
        let smp = knl.observe(Nanos::ZERO, Address(0x1)).unwrap();
        assert!(smp.latency_cycles.is_none());

        let mut xeon = PebsSampler::new(
            ProcessorFamily::Xeon,
            PebsEvent::LlcLoadMiss,
            1,
            DetRng::new(1),
        );
        let smp = xeon.observe(Nanos::ZERO, Address(0x1)).unwrap();
        let lat = smp.latency_cycles.unwrap();
        assert!((150..=600).contains(&lat));
    }

    #[test]
    fn paper_default_period() {
        let s = PebsSampler::paper_default(DetRng::new(1));
        assert_eq!(s.period(), 37_589);
    }

    #[test]
    fn empty_bulk_is_a_noop() {
        let mut s = sampler(10);
        assert!(s
            .observe_bulk(Nanos::ZERO, Nanos(1.0), 0, |_| Address(0))
            .is_empty());
        assert_eq!(s.total_events(), 0);
    }
}
