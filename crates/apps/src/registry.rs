//! Registry of the evaluated applications.

use crate::apps;
use crate::spec::AppSpec;
use hmsim_common::{HmError, HmResult};

/// All eight applications of the paper's evaluation, in Table I order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        apps::hpcg::spec(),
        apps::lulesh::spec(),
        apps::nas_bt::spec(),
        apps::minife::spec(),
        apps::cgpop::spec(),
        apps::snap::spec(),
        apps::maxw_dgtd::spec(),
        apps::gtcp::spec(),
    ]
}

/// All applications, with every spec validated first. Sweeps should prefer
/// this over [`all_apps`]: a malformed spec surfaces as a typed error
/// attributable to one application instead of panicking the whole grid.
pub fn validated_apps() -> HmResult<Vec<AppSpec>> {
    let apps = all_apps();
    for app in &apps {
        app.validate()?;
    }
    Ok(apps)
}

/// Look an application up by (case-insensitive) name.
///
/// An unknown name is a typed [`HmError::Config`] listing every registered
/// application, so callers parsing user input (scenario files, example CLI
/// arguments) can surface an actionable message instead of a bare `None`.
pub fn app_by_name(name: &str) -> HmResult<AppSpec> {
    all_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let candidates: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
            HmError::Config(format!(
                "unknown application {name:?}; candidates: {}",
                candidates.join(", ")
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_eight_apps_are_present_and_valid() {
        let apps = all_apps();
        assert_eq!(apps.len(), 8);
        let names: HashSet<&str> = apps.iter().map(|a| a.name).collect();
        for expected in [
            "HPCG",
            "Lulesh",
            "BT",
            "miniFE",
            "CGPOP",
            "SNAP",
            "MAXW-DGTD",
            "GTC-P",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
        for app in &apps {
            app.validate().unwrap();
        }
        assert_eq!(validated_apps().unwrap().len(), 8);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(app_by_name("hpcg").is_ok());
        assert!(app_by_name("GTC-P").is_ok());
        let err = app_by_name("does-not-exist").unwrap_err();
        assert!(
            matches!(err, hmsim_common::HmError::Config(_)),
            "expected a typed configuration error, got {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("does-not-exist"), "{msg}");
        assert!(
            msg.contains("candidates") && msg.contains("miniFE") && msg.contains("GTC-P"),
            "{msg}"
        );
    }

    #[test]
    fn geometries_match_table1() {
        let bt = app_by_name("BT").unwrap();
        assert_eq!((bt.ranks, bt.threads_per_rank), (1, 272));
        let cgpop = app_by_name("CGPOP").unwrap();
        assert_eq!((cgpop.ranks, cgpop.threads_per_rank), (64, 1));
        for name in ["HPCG", "Lulesh", "miniFE", "SNAP", "MAXW-DGTD", "GTC-P"] {
            let a = app_by_name(name).unwrap();
            assert_eq!((a.ranks, a.threads_per_rank), (64, 4), "{name}");
        }
    }

    #[test]
    fn every_app_has_a_distinct_dominant_object_structure() {
        // Sanity: each app has at least 5 objects and at least one dynamic
        // object with a meaningful miss share.
        for app in all_apps() {
            assert!(app.objects.len() >= 5, "{} too few objects", app.name);
            let max_dynamic = app
                .dynamic_objects()
                .map(|o| app.miss_fraction(o.name))
                .fold(0.0f64, f64::max);
            assert!(max_dynamic > 0.1, "{} lacks a hot dynamic object", app.name);
        }
    }
}
