//! Phase-shifting trace workloads for the online migration runtime.
//!
//! The paper's pipeline decides placement *once*, offline; these workloads
//! are built so that no single static placement is optimal for the whole
//! run — the property the epoch-driven runtime (`hmsim-runtime`) exploits.
//! Each workload declares an inventory of named data objects and, given the
//! address ranges the heap assigned to them, yields its access stream lazily
//! (the same `Iterator<Item = MemoryAccess>` contract the trace engine's
//! `run_stream` consumes).
//!
//! Four reference workloads are registered:
//!
//! * **rotating-triad** — a STREAM Triad whose three hot arrays rotate
//!   between groups every phase (the hot working set *moves*);
//! * **sweeping-stencil** — an out-of-core plane-by-plane stencil whose hot
//!   plane sweeps across a working set far larger than fast memory;
//! * **steady-triad** — a stationary Triad (the hot set never moves): the
//!   parity control for the online-vs-static comparison;
//! * **uniform-scan** — a uniform sweep over everything with no hot subset:
//!   the thrash control (a migrating runtime should do *nothing* here).

use hmsim_common::{AddressRange, ByteSize};
use hmsim_machine::MemoryAccess;

/// How one registered phased workload walks its objects.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// `groups` triads over disjoint array triples; the hot triple advances
    /// every `passes_per_phase` passes, for `rounds` full rotations.
    RotatingTriad {
        groups: u32,
        passes_per_phase: u32,
        rounds: u32,
    },
    /// `planes` planes; each phase runs `hot_passes` sweeps over the hot
    /// plane plus one pass over each neighbour, then the hot plane advances.
    SweepingStencil {
        planes: u32,
        hot_passes: u32,
        sweeps: u32,
    },
    /// One triad over a fixed triple, `passes` times (stationary).
    SteadyTriad { passes: u32 },
    /// `passes` uniform sweeps over every object (stationary, no hot set).
    UniformScan { segments: u32, passes: u32 },
}

/// One registered phased workload: an object inventory plus a schedule.
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    /// Workload name (stable identifier used by benches and reports).
    pub name: &'static str,
    /// Whether the hot working set is stationary over the whole run. The
    /// online runtime must stay within a few percent of the best static
    /// placement on stationary workloads; it should win on the others.
    pub stationary: bool,
    /// Per-array size (all objects of a workload share it).
    pub array_size: ByteSize,
    kind: Kind,
}

/// Element size every workload touches (double precision).
const ELEMENT: u16 = 8;

fn triad_iter(
    a: AddressRange,
    b: AddressRange,
    c: AddressRange,
    passes: u32,
) -> impl Iterator<Item = MemoryAccess> {
    let elements = a.len.bytes() / u64::from(ELEMENT);
    (0..passes).flat_map(move |_| {
        (0..elements).flat_map(move |i| {
            let off = i * u64::from(ELEMENT);
            [
                MemoryAccess::load(b.start.offset(off), ELEMENT),
                MemoryAccess::load(c.start.offset(off), ELEMENT),
                MemoryAccess::store(a.start.offset(off), ELEMENT),
            ]
        })
    })
}

fn sweep_iter(range: AddressRange, passes: u32) -> impl Iterator<Item = MemoryAccess> {
    let elements = range.len.bytes() / u64::from(ELEMENT);
    (0..passes).flat_map(move |_| {
        (0..elements)
            .map(move |i| MemoryAccess::load(range.start.offset(i * u64::from(ELEMENT)), ELEMENT))
    })
}

impl PhasedWorkload {
    /// A triad whose hot array triple rotates between `groups` groups.
    pub fn rotating_triad(
        array_size: ByteSize,
        groups: u32,
        passes_per_phase: u32,
        rounds: u32,
    ) -> Self {
        PhasedWorkload {
            name: "rotating-triad",
            stationary: false,
            array_size,
            kind: Kind::RotatingTriad {
                groups: groups.max(2),
                passes_per_phase: passes_per_phase.max(1),
                rounds: rounds.max(1),
            },
        }
    }

    /// An out-of-core stencil whose hot plane sweeps over `planes` planes.
    pub fn sweeping_stencil(
        array_size: ByteSize,
        planes: u32,
        hot_passes: u32,
        sweeps: u32,
    ) -> Self {
        PhasedWorkload {
            name: "sweeping-stencil",
            stationary: false,
            array_size,
            kind: Kind::SweepingStencil {
                planes: planes.max(3),
                hot_passes: hot_passes.max(1),
                sweeps: sweeps.max(1),
            },
        }
    }

    /// A stationary triad over one fixed triple.
    pub fn steady_triad(array_size: ByteSize, passes: u32) -> Self {
        PhasedWorkload {
            name: "steady-triad",
            stationary: true,
            array_size,
            kind: Kind::SteadyTriad {
                passes: passes.max(1),
            },
        }
    }

    /// A uniform scan over `segments` equally-cold objects.
    pub fn uniform_scan(array_size: ByteSize, segments: u32, passes: u32) -> Self {
        PhasedWorkload {
            name: "uniform-scan",
            stationary: true,
            array_size,
            kind: Kind::UniformScan {
                segments: segments.max(2),
                passes: passes.max(1),
            },
        }
    }

    /// The named data objects (name, size) the harness must allocate, in the
    /// order [`stream`](Self::stream) expects their ranges.
    pub fn objects(&self) -> Vec<(String, ByteSize)> {
        let s = self.array_size;
        match self.kind {
            Kind::RotatingTriad { groups, .. } => (0..groups)
                .flat_map(|g| ["a", "b", "c"].map(|l| (format!("rot.g{g}.{l}"), s)))
                .collect(),
            Kind::SweepingStencil { planes, .. } => {
                (0..planes).map(|p| (format!("plane{p}"), s)).collect()
            }
            Kind::SteadyTriad { .. } => ["a", "b", "c"]
                .iter()
                .map(|l| (format!("triad.{l}"), s))
                .collect(),
            Kind::UniformScan { segments, .. } => {
                (0..segments).map(|i| (format!("seg{i}"), s)).collect()
            }
        }
    }

    /// Size of the hot working set at any single instant — what a fast-tier
    /// budget must hold for the workload's current phase to run fast. This is
    /// the budget the benches hand to both the static advisor and the online
    /// runtime, so neither side can fit *everything*.
    pub fn hot_set_size(&self) -> ByteSize {
        match self.kind {
            Kind::RotatingTriad { .. } | Kind::SteadyTriad { .. } => self.array_size * 3,
            Kind::SweepingStencil { .. } => self.array_size,
            // No hot subset: give the runtime room for two of the segments so
            // a thrashing policy would have something to thrash with.
            Kind::UniformScan { .. } => self.array_size * 2,
        }
    }

    /// Total accesses the stream will yield (for throughput accounting).
    pub fn total_accesses(&self) -> u64 {
        let elements = self.array_size.bytes() / u64::from(ELEMENT);
        match self.kind {
            Kind::RotatingTriad {
                groups,
                passes_per_phase,
                rounds,
            } => elements * 3 * u64::from(passes_per_phase) * u64::from(groups) * u64::from(rounds),
            Kind::SweepingStencil {
                planes,
                hot_passes,
                sweeps,
            } => {
                let neighbours: u64 = (0..planes)
                    .map(|p| u64::from(p > 0) + u64::from(p + 1 < planes))
                    .sum();
                elements
                    * u64::from(sweeps)
                    * (u64::from(planes) * u64::from(hot_passes) + neighbours)
            }
            Kind::SteadyTriad { passes } => elements * 3 * u64::from(passes),
            Kind::UniformScan { segments, passes } => {
                elements * u64::from(segments) * u64::from(passes)
            }
        }
    }

    /// The access stream over the ranges the heap assigned to
    /// [`objects`](Self::objects) (same order). Lazy: O(1) state regardless
    /// of workload size. The iterator is `Send` so per-rank shards can fan
    /// out over worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `ranges` does not have one range per declared object.
    pub fn stream(&self, ranges: &[AddressRange]) -> Box<dyn Iterator<Item = MemoryAccess> + Send> {
        assert_eq!(
            ranges.len(),
            self.objects().len(),
            "{}: expected one range per object",
            self.name
        );
        let r: Vec<AddressRange> = ranges.to_vec();
        match self.kind {
            Kind::RotatingTriad {
                groups,
                passes_per_phase,
                rounds,
            } => Box::new((0..rounds).flat_map(move |_| {
                let r = r.clone();
                (0..groups).flat_map(move |g| {
                    let base = (g as usize) * 3;
                    triad_iter(r[base], r[base + 1], r[base + 2], passes_per_phase)
                })
            })),
            Kind::SweepingStencil {
                planes,
                hot_passes,
                sweeps,
            } => Box::new((0..sweeps).flat_map(move |_| {
                let r = r.clone();
                (0..planes as usize).flat_map(move |p| {
                    let prev = p
                        .checked_sub(1)
                        .map(|q| sweep_iter(r[q], 1))
                        .into_iter()
                        .flatten();
                    let next = (p + 1 < planes as usize)
                        .then(|| sweep_iter(r[p + 1], 1))
                        .into_iter()
                        .flatten();
                    sweep_iter(r[p], hot_passes).chain(prev).chain(next)
                })
            })),
            Kind::SteadyTriad { passes } => Box::new(triad_iter(r[0], r[1], r[2], passes)),
            Kind::UniformScan { segments, passes } => Box::new((0..passes).flat_map(move |_| {
                let r = r.clone();
                (0..segments as usize).flat_map(move |i| sweep_iter(r[i], 1))
            })),
        }
    }
}

/// The registered phased workloads at a given per-array scale. Benches use a
/// few hundred KiB per array; tests shrink it to keep debug builds quick.
pub fn phased_workloads(array_size: ByteSize) -> Vec<PhasedWorkload> {
    vec![
        PhasedWorkload::rotating_triad(array_size, 3, 12, 2),
        PhasedWorkload::sweeping_stencil(array_size, 6, 12, 2),
        // The stationary runs are long enough that the online runtime's
        // one-off costs (cold first epoch, initial fill migrations) stay
        // within the parity band against the best static placement.
        PhasedWorkload::steady_triad(array_size, 80),
        PhasedWorkload::uniform_scan(array_size, 6, 20),
    ]
}

/// Look a phased workload up by name at the given scale.
pub fn phased_workload_by_name(name: &str, array_size: ByteSize) -> Option<PhasedWorkload> {
    phased_workloads(array_size)
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::Address;
    use hmsim_machine::AccessKind;

    fn lay_out(objects: &[(String, ByteSize)]) -> Vec<AddressRange> {
        let mut next = Address(0x4000_0000);
        objects
            .iter()
            .map(|(_, size)| {
                let r = AddressRange::new(next, *size);
                next = r.end().offset(hmsim_common::PAGE_SIZE);
                r
            })
            .collect()
    }

    #[test]
    fn registry_has_shifting_and_stationary_entries() {
        let ws = phased_workloads(ByteSize::from_kib(64));
        assert_eq!(ws.len(), 4);
        assert!(ws.iter().filter(|w| !w.stationary).count() >= 2);
        assert!(ws.iter().filter(|w| w.stationary).count() >= 2);
        assert!(phased_workload_by_name("Rotating-Triad", ByteSize::from_kib(64)).is_some());
        assert!(phased_workload_by_name("nope", ByteSize::from_kib(64)).is_none());
    }

    #[test]
    fn streams_yield_exactly_total_accesses_within_declared_objects() {
        for w in phased_workloads(ByteSize::from_kib(16)) {
            let objects = w.objects();
            let ranges = lay_out(&objects);
            let mut n = 0u64;
            for acc in w.stream(&ranges) {
                assert!(
                    ranges.iter().any(|r| r.contains(acc.address)),
                    "{}: stray access {:?}",
                    w.name,
                    acc.address
                );
                n += 1;
            }
            assert_eq!(n, w.total_accesses(), "{}", w.name);
        }
    }

    #[test]
    fn rotating_triad_hot_set_moves_between_phases() {
        let w = PhasedWorkload::rotating_triad(ByteSize::from_kib(16), 3, 2, 1);
        let ranges = lay_out(&w.objects());
        let per_phase = w.total_accesses() / 3;
        let acc: Vec<MemoryAccess> = w.stream(&ranges).collect();
        // Phase 0 touches only group 0's arrays, phase 1 only group 1's.
        let group = |idx: usize| &ranges[idx * 3..idx * 3 + 3];
        assert!(acc[..per_phase as usize]
            .iter()
            .all(|a| group(0).iter().any(|r| r.contains(a.address))));
        assert!(acc[per_phase as usize..2 * per_phase as usize]
            .iter()
            .all(|a| group(1).iter().any(|r| r.contains(a.address))));
    }

    #[test]
    fn steady_triad_mixes_loads_and_stores() {
        let w = PhasedWorkload::steady_triad(ByteSize::from_kib(16), 1);
        let ranges = lay_out(&w.objects());
        let acc: Vec<MemoryAccess> = w.stream(&ranges).collect();
        let stores = acc.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert_eq!(stores * 3, acc.len(), "one store per triad element");
        assert_eq!(w.hot_set_size(), ByteSize::from_kib(48));
    }

    #[test]
    fn stencil_concentrates_on_the_hot_plane() {
        let w = PhasedWorkload::sweeping_stencil(ByteSize::from_kib(16), 4, 5, 1);
        let ranges = lay_out(&w.objects());
        let mut per_plane = [0u64; 4];
        let elements = ByteSize::from_kib(16).bytes() / 8;
        let acc: Vec<MemoryAccess> = w.stream(&ranges).collect();
        // During the first phase (hot plane 0), plane 0 dominates.
        for a in &acc[..(elements * 5) as usize] {
            let p = ranges.iter().position(|r| r.contains(a.address)).unwrap();
            per_plane[p] += 1;
        }
        assert!(per_plane[0] > per_plane[1] * 3);
        assert_eq!(per_plane[2], 0);
    }
}
