//! # hmsim-apps
//!
//! Declarative workload models of the eight applications evaluated in the
//! paper (Table I) plus the STREAM Triad kernel used in Figure 1.
//!
//! Each application is described by an [`spec::AppSpec`]: its execution
//! geometry, figure of merit, per-iteration instruction and LLC-miss volume,
//! and — most importantly — its inventory of data objects (sizes, static vs
//! dynamic vs stack, allocation call-paths, allocation timing, and each
//! object's share of the LLC misses together with how irregular its accesses
//! are). The numbers are derived from Table I of the paper (memory
//! high-water marks, allocation statement counts, allocation rates) and from
//! the per-application discussion in §IV (which objects matter, whether the
//! hot data is static, whether allocation happens inside the iteration loop,
//! where the cache/framework/numactl approaches win and why).
//!
//! The models are *behavioural*, not numerical clones: they are built so that
//! the placement-relevant structure of each application is preserved —
//! because that structure, not the absolute GFLOPS, is what drives every
//! conclusion in the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod kernels;
pub mod multirank;
pub mod phased;
pub mod registry;
pub mod spec;
pub mod stream;

pub use kernels::TriadStream;
pub use multirank::MultiRankWorkload;
pub use phased::{phased_workload_by_name, phased_workloads, PhasedWorkload};
pub use registry::{all_apps, app_by_name, validated_apps};
pub use spec::{AllocTiming, AppSpec, KernelSpec, ObjectSpec};
pub use stream::{StreamBenchmark, StreamResult};
