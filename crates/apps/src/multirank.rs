//! Multi-rank (MPI-style) trace workload families.
//!
//! The paper profiles every rank of an MPI run and merges the per-rank PEBS
//! profiles into one placement decision; the multi-rank shard runner in
//! `hmsim-runtime` reproduces that at trace scale by simulating one
//! [`PhasedWorkload`] per rank under a *node-level* fast-tier budget. A
//! [`MultiRankWorkload`] is simply that bundle: one phased workload per rank,
//! simulated independently except for the shared fast tier.
//!
//! Two families are provided:
//!
//! * [`replicated`](MultiRankWorkload::replicated) — every rank runs the same
//!   workload (the homogeneous SPMD case; per-rank partitioning is optimal by
//!   symmetry, so this family measures shard fan-out scaling);
//! * [`rank_skew_triad`](MultiRankWorkload::rank_skew_triad) — an imbalanced
//!   triad where rank 0's working set is `skew`× larger than everyone
//!   else's. A static per-rank partition (budget ÷ R, the paper's deployment
//!   mode) strands capacity on the small ranks while starving the dominant
//!   one; a node-global selection does not — which is exactly the gap the
//!   arbitration policies are built to expose.

use crate::phased::PhasedWorkload;
use hmsim_common::ByteSize;

/// A bundle of per-rank trace workloads sharing one node.
#[derive(Clone, Debug)]
pub struct MultiRankWorkload {
    /// Family name (stable identifier used by benches and reports).
    pub name: &'static str,
    per_rank: Vec<PhasedWorkload>,
}

impl MultiRankWorkload {
    /// Every rank runs its own copy of `workload` (homogeneous SPMD).
    pub fn replicated(workload: PhasedWorkload, ranks: u32) -> Self {
        let ranks = ranks.max(1);
        MultiRankWorkload {
            name: "replicated",
            per_rank: (0..ranks).map(|_| workload.clone()).collect(),
        }
    }

    /// The rank-skew family: `ranks` stationary triads, with rank 0's arrays
    /// `skew`× larger than the other ranks' (so its hot set and its access
    /// volume dominate the node). All ranks run `passes` triad passes.
    pub fn rank_skew_triad(array_size: ByteSize, ranks: u32, skew: u32, passes: u32) -> Self {
        let ranks = ranks.max(2);
        let skew = skew.max(2);
        let per_rank = (0..ranks)
            .map(|r| {
                let size = if r == 0 {
                    array_size * u64::from(skew)
                } else {
                    array_size
                };
                PhasedWorkload::steady_triad(size, passes)
            })
            .collect();
        MultiRankWorkload {
            name: "rank-skew-triad",
            per_rank,
        }
    }

    /// Number of ranks in the bundle.
    pub fn ranks(&self) -> u32 {
        self.per_rank.len() as u32
    }

    /// The workload rank `rank` runs.
    pub fn rank(&self, rank: u32) -> &PhasedWorkload {
        &self.per_rank[rank as usize]
    }

    /// The per-rank workloads, rank order.
    pub fn per_rank(&self) -> &[PhasedWorkload] {
        &self.per_rank
    }

    /// Sum of every rank's instantaneous hot set — what a node-level fast
    /// tier would need to hold *everything* hot at once. Budgets between the
    /// largest single-rank hot set and this total are where the arbitration
    /// policies separate.
    pub fn node_hot_set(&self) -> ByteSize {
        self.per_rank.iter().map(|w| w.hot_set_size()).sum()
    }

    /// The largest single-rank hot set (the dominant rank's demand).
    pub fn max_rank_hot_set(&self) -> ByteSize {
        self.per_rank
            .iter()
            .map(|w| w.hot_set_size())
            .max()
            .unwrap_or(ByteSize::ZERO)
    }

    /// Total accesses over all ranks (for throughput accounting).
    pub fn total_accesses(&self) -> u64 {
        self.per_rank.iter().map(|w| w.total_accesses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_ranks_share_the_workload_shape() {
        let w = PhasedWorkload::steady_triad(ByteSize::from_kib(16), 4);
        let m = MultiRankWorkload::replicated(w.clone(), 4);
        assert_eq!(m.ranks(), 4);
        assert_eq!(m.total_accesses(), 4 * w.total_accesses());
        assert_eq!(m.node_hot_set(), ByteSize::from_kib(16 * 3 * 4));
        assert_eq!(m.max_rank_hot_set(), w.hot_set_size());
    }

    #[test]
    fn rank_skew_triad_is_dominated_by_rank_zero() {
        let m = MultiRankWorkload::rank_skew_triad(ByteSize::from_kib(16), 4, 4, 2);
        assert_eq!(m.ranks(), 4);
        // Rank 0's arrays are 4x larger, so its hot set and access volume
        // dominate.
        assert_eq!(m.rank(0).hot_set_size(), ByteSize::from_kib(16 * 4 * 3));
        assert_eq!(m.rank(1).hot_set_size(), ByteSize::from_kib(16 * 3));
        assert_eq!(m.max_rank_hot_set(), m.rank(0).hot_set_size());
        assert_eq!(
            m.node_hot_set(),
            m.rank(0).hot_set_size() + m.rank(1).hot_set_size() * 3
        );
        assert_eq!(m.rank(0).total_accesses(), 4 * m.rank(1).total_accesses());
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let m = MultiRankWorkload::rank_skew_triad(ByteSize::from_kib(16), 0, 0, 1);
        assert_eq!(m.ranks(), 2);
        assert!(m.rank(0).hot_set_size() > m.rank(1).hot_set_size());
        let r = MultiRankWorkload::replicated(
            PhasedWorkload::uniform_scan(ByteSize::from_kib(16), 2, 1),
            0,
        );
        assert_eq!(r.ranks(), 1);
    }
}
