//! Streaming access-pattern generators for trace-driven runs.
//!
//! The trace engine's [`run_stream`](hmsim_machine::TraceEngine::run_stream)
//! consumes `Iterator<Item = MemoryAccess>` directly, so kernels here yield
//! accesses one at a time instead of materializing sweep vectors — a
//! paper-scale STREAM pass (three 1 GiB arrays, billions of accesses) costs
//! no memory beyond the iterator state.

use hmsim_common::{Address, AddressRange, ByteSize};
use hmsim_machine::MemoryAccess;

/// Lazy generator of the STREAM Triad access pattern
/// `a[i] = b[i] + scalar * c[i]`: per element, a load of `b[i]`, a load of
/// `c[i]` and a store to `a[i]` (the write-allocate read of `a[i]` is
/// modelled by the cache's write-allocate policy).
#[derive(Clone, Debug)]
pub struct TriadStream {
    a: AddressRange,
    b: AddressRange,
    c: AddressRange,
    element_size: u16,
    elements: u64,
    passes: u32,
    /// Current element within the pass.
    pos: u64,
    /// 0 = load b, 1 = load c, 2 = store a.
    lane: u8,
    /// Current pass.
    pass: u32,
}

impl TriadStream {
    /// Lay out three contiguous arrays of `array_size` starting at `base`
    /// and build a generator for `passes` full Triad passes over them.
    pub fn new(base: Address, array_size: ByteSize, element_size: u16, passes: u32) -> Self {
        let element_size = element_size.max(1);
        let a = AddressRange::new(base, array_size);
        let b = AddressRange::new(a.end(), array_size);
        let c = AddressRange::new(b.end(), array_size);
        TriadStream {
            a,
            b,
            c,
            element_size,
            elements: array_size.bytes() / u64::from(element_size),
            passes,
            pos: 0,
            lane: 0,
            pass: 0,
        }
    }

    /// The destination array `a`.
    pub fn array_a(&self) -> AddressRange {
        self.a
    }

    /// The source array `b`.
    pub fn array_b(&self) -> AddressRange {
        self.b
    }

    /// The source array `c`.
    pub fn array_c(&self) -> AddressRange {
        self.c
    }

    /// The full working set (all three arrays).
    pub fn working_set(&self) -> AddressRange {
        AddressRange::new(self.a.start, ByteSize::from_bytes(self.a.len.bytes() * 3))
    }

    /// Total number of accesses this stream will yield.
    pub fn total_accesses(&self) -> u64 {
        self.elements * 3 * u64::from(self.passes)
    }
}

impl Iterator for TriadStream {
    type Item = MemoryAccess;

    #[inline]
    fn next(&mut self) -> Option<MemoryAccess> {
        if self.pass >= self.passes || self.elements == 0 {
            return None;
        }
        let offset = self.pos * u64::from(self.element_size);
        let acc = match self.lane {
            0 => MemoryAccess::load(self.b.start.offset(offset), self.element_size),
            1 => MemoryAccess::load(self.c.start.offset(offset), self.element_size),
            _ => MemoryAccess::store(self.a.start.offset(offset), self.element_size),
        };
        self.lane += 1;
        if self.lane == 3 {
            self.lane = 0;
            self.pos += 1;
            if self.pos == self.elements {
                self.pos = 0;
                self.pass += 1;
            }
        }
        Some(acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let done = (u64::from(self.pass) * self.elements + self.pos) * 3 + u64::from(self.lane);
        let remaining = self.total_accesses().saturating_sub(done) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_machine::AccessKind;

    #[test]
    fn triad_yields_three_accesses_per_element_in_order() {
        let s = TriadStream::new(Address(0x1000), ByteSize::from_bytes(32), 8, 1);
        let acc: Vec<MemoryAccess> = s.collect();
        assert_eq!(acc.len(), 4 * 3);
        // First element: load b[0], load c[0], store a[0].
        assert_eq!(acc[0], MemoryAccess::load(Address(0x1000 + 32), 8));
        assert_eq!(acc[1], MemoryAccess::load(Address(0x1000 + 64), 8));
        assert_eq!(acc[2], MemoryAccess::store(Address(0x1000), 8));
        // Second element advances all three cursors by one element.
        assert_eq!(acc[3], MemoryAccess::load(Address(0x1000 + 32 + 8), 8));
    }

    #[test]
    fn triad_passes_repeat_the_pattern() {
        let one = TriadStream::new(Address(0), ByteSize::from_bytes(64), 8, 1);
        let two = TriadStream::new(Address(0), ByteSize::from_bytes(64), 8, 2);
        let a: Vec<MemoryAccess> = one.collect();
        let b: Vec<MemoryAccess> = two.collect();
        assert_eq!(b.len(), 2 * a.len());
        assert_eq!(&b[..a.len()], &a[..]);
        assert_eq!(&b[a.len()..], &a[..]);
    }

    #[test]
    fn triad_arrays_are_disjoint_and_cover_the_working_set() {
        let s = TriadStream::new(Address(0x10_0000), ByteSize::from_kib(64), 8, 1);
        assert!(!s.array_a().overlaps(&s.array_b()));
        assert!(!s.array_b().overlaps(&s.array_c()));
        assert_eq!(s.working_set().len, ByteSize::from_kib(192));
        assert_eq!(s.total_accesses(), (64 * 1024 / 8) * 3);
        let hint = s.size_hint();
        assert_eq!(hint.0 as u64, s.total_accesses());
    }

    #[test]
    fn triad_is_lazy_over_paper_scale_arrays() {
        // Three 1 GiB arrays: the iterator must be O(1) to build and step.
        let mut s = TriadStream::new(Address(0x1000_0000), ByteSize::from_gib(1), 8, 1);
        let first = s.next().unwrap();
        assert_eq!(first.kind, AccessKind::Load);
        assert!(s.array_b().contains(first.address));
        assert_eq!(s.total_accesses(), (1u64 << 30) / 8 * 3);
    }
}
