//! MAXW-DGTD — Discontinuous Galerkin Time-Domain solver for computational
//! bioelectromagnetics (4th-order Lagrange basis on tetrahedra).
//!
//! 64 ranks × 4 threads, ~285 MiB per rank, and by far the highest traced
//! allocation rate of the suite (~15,854 allocations per process per second):
//! element-local scratch is allocated and freed deep inside the time-stepping
//! loop. The hot working set fits in the MCDRAM cache, so cache mode is
//! slightly ahead of the framework, whose per-allocation interposition and
//! memkind costs show at this allocation rate.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The MAXW-DGTD workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "MAXW-DGTD",
        version: "DEEP-ER port",
        language: "Fortran",
        parallelism: "MPI+OpenMP",
        lines_of_code: 20_835,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "4th order, mi=3, 861,390 tets, 50 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp -align dcommons",
        fom_name: "Iterations/s",
        fom_work_per_iteration: 1.0,
        alloc_statement_counts: "0/0/0/0/0/75/71",
        iterations: 50,
        instructions_per_iteration: 850_000_000,
        misses_per_iteration: 11_900_000,
        hot_working_set: ByteSize::from_mib(200),
        small_allocs_per_second: 15_853.98,
        init_time: Nanos::from_secs(4.0),
        objects: vec![
            ObjectSpec::dynamic(
                "em_field_arrays",
                ByteSize::from_mib(120),
                &["main", "allocate_state", "allocate", "malloc"],
                0.42,
                0.10,
            ),
            ObjectSpec::dynamic(
                "face_flux_arrays",
                ByteSize::from_mib(60),
                &["main", "allocate_state", "alloc_vectors", "malloc"],
                0.22,
                0.30,
            ),
            ObjectSpec::dynamic(
                "interpolation_matrices",
                ByteSize::from_mib(40),
                &["main", "initialize", "alloc_matrix", "malloc"],
                0.16,
                0.05,
            ),
            ObjectSpec::dynamic(
                "mpi_ghost_buffers",
                ByteSize::from_mib(20),
                &["main", "CommSetup", "malloc"],
                0.05,
                0.30,
            ),
            // The per-iteration element scratch: 1-2 MiB allocations, many
            // times per iteration (the 15.8k allocations/s of Table I).
            ObjectSpec::dynamic(
                "element_scratch",
                ByteSize::from_bytes(1_700_000),
                &["main", "compute_fluxes", "alloc_workspace", "malloc"],
                0.03,
                0.05,
            )
            .per_iteration(8)
            .with_min_size(ByteSize::from_mib(1)),
            ObjectSpec::static_var("basis_tables_common", ByteSize::from_mib(30), 0.06, 0.10),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(8), 0.06, 0.55),
        ],
        kernels: vec![
            KernelSpec {
                name: "volume_integrals",
                instruction_share: 0.55,
                miss_share: 0.55,
                object_weights: &[
                    ("em_field_arrays", 0.55),
                    ("interpolation_matrices", 0.25),
                    ("element_scratch", 0.20),
                ],
            },
            KernelSpec {
                name: "surface_integrals",
                instruction_share: 0.45,
                miss_share: 0.45,
                object_weights: &[
                    ("face_flux_arrays", 0.50),
                    ("em_field_arrays", 0.25),
                    ("mpi_ghost_buffers", 0.13),
                    ("basis_tables_common", 0.12),
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocTiming;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((250.0..=320.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn hot_set_fits_in_the_mcdram_cache_across_the_node() {
        let s = spec();
        let node_hot = ByteSize::from_bytes(s.hot_working_set.bytes() * u64::from(s.ranks));
        assert!(node_hot < ByteSize::from_gib(16));
    }

    #[test]
    fn has_high_frequency_small_allocation_churn() {
        let s = spec();
        let churn = s
            .objects
            .iter()
            .find(|o| matches!(o.timing, AllocTiming::PerIteration { .. }))
            .expect("element scratch churns");
        assert!(churn.size >= ByteSize::from_mib(1) && churn.size < ByteSize::from_mib(2));
        assert!(s.small_allocs_per_second > 10_000.0);
    }
}
