//! High Performance Conjugate Gradient (HPCG) 3.0, modified per the official
//! optimisation slides as in the paper.
//!
//! 64 ranks × 4 threads, local problem 104³, ~928 MiB per rank. The paper's
//! headline result: the framework reaches +78.9 % over DDR and +24.8 % over
//! the second-best approach (cache mode), with the sweet spot at the largest
//! budget (256 MiB/rank) and only a couple of objects needing promotion.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The HPCG workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "HPCG",
        version: "3.0mod",
        language: "C++",
        parallelism: "MPI+OpenMP",
        lines_of_code: 5_718,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "104^3, 400s",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp",
        fom_name: "GFLOPS",
        // Calibrated so the DDR-only run lands near the paper's ~11 GFLOPS.
        fom_work_per_iteration: 6.4,
        alloc_statement_counts: "0/0/0/33/17/0/0",
        iterations: 50,
        instructions_per_iteration: 580_000_000,
        misses_per_iteration: 12_000_000,
        hot_working_set: ByteSize::from_mib(330),
        small_allocs_per_second: 3_263.0,
        init_time: Nanos::from_secs(2.0),
        objects: vec![
            // Setup-time geometry/auxiliary data: sizeable but cold; being
            // allocated first it also pollutes FCFS (numactl-style) filling.
            ObjectSpec::dynamic(
                "setup_geometry",
                ByteSize::from_mib(110),
                &["main", "GenerateGeometry", "malloc"],
                0.01,
                0.05,
            ),
            // The sparse matrix: values and column indices dominate the
            // footprint and the streaming traffic but never fit in the
            // per-rank budgets explored.
            ObjectSpec::dynamic(
                "A.matrixValues",
                ByteSize::from_mib(400),
                &["main", "GenerateProblem", "allocate_state", "malloc"],
                0.26,
                0.05,
            ),
            ObjectSpec::dynamic(
                "A.mtxIndL",
                ByteSize::from_mib(200),
                &["main", "GenerateProblem", "alloc_matrix", "malloc"],
                0.20,
                0.05,
            ),
            ObjectSpec::dynamic(
                "A.matrixDiagonal",
                ByteSize::from_mib(14),
                &["main", "GenerateProblem", "alloc_vectors", "malloc"],
                0.05,
                0.10,
            ),
            // CG vectors (p, Ap, z, r, …): modest size, heavily reused, some
            // gather traffic at the halo.
            ObjectSpec::dynamic(
                "cg_vectors",
                ByteSize::from_mib(60),
                &["main", "CG_ref", "alloc_workspace", "malloc"],
                0.16,
                0.25,
            ),
            // Multigrid coarse-level matrices and vectors.
            ObjectSpec::dynamic(
                "mg_coarse_matrices",
                ByteSize::from_mib(110),
                &["main", "GenerateCoarseProblem", "malloc"],
                0.17,
                0.10,
            ),
            ObjectSpec::dynamic(
                "mg_coarse_vectors",
                ByteSize::from_mib(30),
                &["main", "GenerateCoarseProblem", "alloc_vectors", "malloc"],
                0.10,
                0.15,
            ),
            ObjectSpec::dynamic(
                "halo_exchange_buffers",
                ByteSize::from_mib(10),
                &["main", "SetupHalo", "malloc"],
                0.03,
                0.50,
            ),
            ObjectSpec::static_var("setup_tables", ByteSize::from_mib(16), 0.01, 0.20),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(2), 0.01, 0.60),
        ],
        kernels: vec![
            KernelSpec {
                name: "SpMV",
                instruction_share: 0.40,
                miss_share: 0.47,
                object_weights: &[
                    ("A.matrixValues", 0.45),
                    ("A.mtxIndL", 0.35),
                    ("cg_vectors", 0.20),
                ],
            },
            KernelSpec {
                name: "SymGS",
                instruction_share: 0.40,
                miss_share: 0.40,
                object_weights: &[
                    ("A.matrixValues", 0.30),
                    ("A.mtxIndL", 0.25),
                    ("mg_coarse_matrices", 0.25),
                    ("mg_coarse_vectors", 0.20),
                ],
            },
            KernelSpec {
                name: "DotProduct_WAXPBY",
                instruction_share: 0.20,
                miss_share: 0.13,
                object_weights: &[("cg_vectors", 0.8), ("A.matrixDiagonal", 0.2)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        // Footprint within ~10% of the 928 MiB/process reported in Table I.
        let mib = s.footprint().mib();
        assert!((830.0..=1030.0).contains(&mib), "footprint {mib} MiB");
        assert_eq!(s.ranks, 64);
        assert_eq!(s.threads_per_rank, 4);
    }

    #[test]
    fn matrix_objects_dominate_traffic_but_do_not_fit_small_budgets() {
        let s = spec();
        let values = s.miss_fraction("A.matrixValues");
        let indices = s.miss_fraction("A.mtxIndL");
        assert!(values + indices > 0.4);
        let values_obj = s
            .objects
            .iter()
            .find(|o| o.name == "A.matrixValues")
            .unwrap();
        assert!(values_obj.size > ByteSize::from_mib(256));
    }

    #[test]
    fn a_couple_of_midsize_objects_cover_a_big_miss_share() {
        // The paper notes HPCG reaches its best case with only 2 objects in
        // fast memory; verify such a pair exists within a 256 MiB budget.
        let s = spec();
        let mg = s.miss_fraction("mg_coarse_matrices") + s.miss_fraction("cg_vectors");
        let size: ByteSize = s
            .objects
            .iter()
            .filter(|o| o.name == "mg_coarse_matrices" || o.name == "cg_vectors")
            .map(|o| o.size)
            .sum();
        assert!(size <= ByteSize::from_mib(256));
        assert!(mg > 0.25, "pair covers {mg}");
    }
}
