//! NAS Parallel Benchmarks BT (Block-Tridiagonal), class D, OpenMP only.
//!
//! 272 threads on one process, ~11.1 GiB of data. In the original code every
//! hot array is a static (Fortran COMMON) variable; the paper modified "the
//! most observed variables … to be dynamically allocated so that they can be
//! intercepted". The model therefore exposes the main solution arrays as
//! dynamic objects (the modified code) while keeping a slice of the footprint
//! static — which, together with the thread stacks, is exactly why
//! `numactl -p 1` stays marginally ahead of the framework: the whole working
//! set fits in the 16 GiB of MCDRAM, and numactl also covers what the
//! interposition library cannot touch.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The NAS BT workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "BT",
        version: "3.3.1 (class D)",
        language: "Fortran",
        parallelism: "OpenMP",
        lines_of_code: 6_415,
        ranks: 1,
        threads_per_rank: 272,
        problem_size: "408^3, 250 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp -mcmodel=medium",
        fom_name: "Mop/s",
        fom_work_per_iteration: 2_820.0,
        alloc_statement_counts: "0/0/0/0/0/15/15",
        iterations: 250,
        instructions_per_iteration: 8_400_000_000,
        misses_per_iteration: 250_000_000,
        hot_working_set: ByteSize::from_gib(11),
        small_allocs_per_second: 0.49,
        init_time: Nanos::from_secs(10.0),
        objects: vec![
            ObjectSpec::dynamic(
                "u_solution",
                ByteSize::from_mib(2_650),
                &["main", "allocate_state", "allocate", "malloc"],
                0.20,
                0.05,
            ),
            ObjectSpec::dynamic(
                "rhs",
                ByteSize::from_mib(2_650),
                &["main", "allocate_state", "alloc_matrix", "malloc"],
                0.21,
                0.05,
            ),
            ObjectSpec::dynamic(
                "forcing",
                ByteSize::from_mib(2_650),
                &["main", "allocate_state", "alloc_vectors", "malloc"],
                0.14,
                0.05,
            ),
            ObjectSpec::dynamic(
                "aux_fields",
                ByteSize::from_mib(2_000),
                &["main", "initialize", "alloc_workspace", "malloc"],
                0.18,
                0.08,
            ),
            ObjectSpec::dynamic(
                "lhs_work_arrays",
                ByteSize::from_mib(1_000),
                &["main", "x_solve", "malloc"],
                0.17,
                0.10,
            ),
            // What the paper left static: problem constants and a residual
            // slice of COMMON blocks.
            ObjectSpec::static_var("common_blocks", ByteSize::from_mib(250), 0.06, 0.15),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(50), 0.04, 0.50),
        ],
        kernels: vec![
            KernelSpec {
                name: "x_solve",
                instruction_share: 0.27,
                miss_share: 0.28,
                object_weights: &[("u_solution", 0.3), ("rhs", 0.3), ("lhs_work_arrays", 0.4)],
            },
            KernelSpec {
                name: "y_solve",
                instruction_share: 0.27,
                miss_share: 0.28,
                object_weights: &[("u_solution", 0.3), ("rhs", 0.3), ("lhs_work_arrays", 0.4)],
            },
            KernelSpec {
                name: "z_solve",
                instruction_share: 0.27,
                miss_share: 0.28,
                object_weights: &[("u_solution", 0.3), ("rhs", 0.3), ("lhs_work_arrays", 0.4)],
            },
            KernelSpec {
                name: "compute_rhs",
                instruction_share: 0.19,
                miss_share: 0.16,
                object_weights: &[("rhs", 0.3), ("forcing", 0.3), ("aux_fields", 0.4)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let gib = s.footprint().gib();
        assert!((10.0..=12.0).contains(&gib), "footprint {gib} GiB");
        assert_eq!(s.ranks, 1, "BT is OpenMP-only");
        assert_eq!(s.threads_per_rank, 272);
    }

    #[test]
    fn whole_working_set_fits_in_mcdram() {
        // 11.1 GiB < 16 GiB: this is why numactl -p 1 is the winner for BT.
        assert!(spec().footprint() < ByteSize::from_gib(16));
    }

    #[test]
    fn dynamic_objects_carry_most_of_the_traffic_after_the_modification() {
        let s = spec();
        let dynamic_share: f64 = s
            .objects
            .iter()
            .filter(|o| o.kind == hmsim_heap::ObjectKind::Dynamic)
            .map(|o| o.miss_share)
            .sum();
        assert!(dynamic_share > 0.85);
    }
}
