//! GTC-P (Princeton Gyrokinetic Toroidal Code), 160328 snapshot.
//!
//! 64 ranks × 4 threads, ~1.3 GiB per rank, 50 iterations. The particle
//! arrays (`zion`) are huge and streamed; the grid arrays (field and charge
//! density) are small but accessed with data-dependent gather/scatter from
//! every particle, making them both intensely and irregularly accessed. The
//! framework wins by promoting the grid arrays (high miss density), which is
//! also why the density strategy is the natural fit for this code; FCFS
//! placement wastes the budget on the particle-sort workspace allocated
//! early.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The GTC-P workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "GTC-P",
        version: "160328",
        language: "C",
        parallelism: "MPI+OpenMP",
        lines_of_code: 8_362,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "micell=3, 861,390 grid, 50 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp",
        fom_name: "Iterations/s",
        fom_work_per_iteration: 1.0,
        alloc_statement_counts: "156/0/156/0/0/0/0/0",
        iterations: 50,
        instructions_per_iteration: 17_500_000_000,
        misses_per_iteration: 260_000_000,
        hot_working_set: ByteSize::from_mib(900),
        small_allocs_per_second: 20.57,
        init_time: Nanos::from_secs(6.0),
        objects: vec![
            // Particle-sort workspace allocated early: big, cold, poisons
            // FCFS filling.
            ObjectSpec::dynamic(
                "particle_sort_workspace",
                ByteSize::from_mib(150),
                &["main", "initialize", "malloc"],
                0.02,
                0.10,
            ),
            // The particle arrays: streamed, too large for any budget.
            ObjectSpec::dynamic(
                "zion_particles",
                ByteSize::from_mib(700),
                &["main", "allocate_state", "malloc"],
                0.30,
                0.15,
            ),
            ObjectSpec::dynamic(
                "zion0_particles",
                ByteSize::from_mib(120),
                &["main", "allocate_state", "alloc_workspace", "malloc"],
                0.10,
                0.10,
            ),
            // The grid arrays: small, extremely hot, gather/scatter access.
            ObjectSpec::dynamic(
                "field_grid",
                ByteSize::from_mib(60),
                &["main", "allocate_state", "alloc_matrix", "malloc"],
                0.25,
                0.60,
            ),
            ObjectSpec::dynamic(
                "charge_density_grid",
                ByteSize::from_mib(60),
                &["main", "allocate_state", "alloc_vectors", "malloc"],
                0.20,
                0.60,
            ),
            ObjectSpec::dynamic(
                "shift_comm_buffers",
                ByteSize::from_mib(30),
                &["main", "CommSetup", "malloc"],
                0.06,
                0.30,
            ),
            ObjectSpec::dynamic(
                "diagnostics_arrays",
                ByteSize::from_mib(80),
                &["main", "finalize", "malloc"],
                0.02,
                0.10,
            ),
            ObjectSpec::static_var("equilibrium_tables", ByteSize::from_mib(40), 0.02, 0.20),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(10), 0.03, 0.55),
        ],
        kernels: vec![
            KernelSpec {
                name: "charge_deposition",
                instruction_share: 0.35,
                miss_share: 0.40,
                object_weights: &[
                    ("zion_particles", 0.35),
                    ("charge_density_grid", 0.45),
                    ("zion0_particles", 0.20),
                ],
            },
            KernelSpec {
                name: "push_particles",
                instruction_share: 0.45,
                miss_share: 0.42,
                object_weights: &[
                    ("zion_particles", 0.38),
                    ("field_grid", 0.50),
                    ("equilibrium_tables", 0.12),
                ],
            },
            KernelSpec {
                name: "shift_and_solve",
                instruction_share: 0.20,
                miss_share: 0.18,
                object_weights: &[
                    ("shift_comm_buffers", 0.35),
                    ("field_grid", 0.30),
                    ("charge_density_grid", 0.35),
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((1200.0..=1450.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn grid_arrays_are_small_hot_and_irregular() {
        let s = spec();
        for name in ["field_grid", "charge_density_grid"] {
            let o = s.objects.iter().find(|o| o.name == name).unwrap();
            assert!(o.size <= ByteSize::from_mib(64));
            assert!(o.irregular >= 0.5);
            assert!(s.miss_fraction(name) >= 0.15);
        }
    }

    #[test]
    fn particle_arrays_never_fit_a_per_rank_budget() {
        let s = spec();
        let zion = s
            .objects
            .iter()
            .find(|o| o.name == "zion_particles")
            .unwrap();
        assert!(zion.size > ByteSize::from_mib(256));
    }

    #[test]
    fn grid_arrays_have_higher_density_than_particle_arrays() {
        // This is what makes the Density strategy the right choice for GTC-P.
        let s = spec();
        let density = |name: &str| {
            let o = s.objects.iter().find(|o| o.name == name).unwrap();
            s.miss_fraction(name) / o.size.mib()
        };
        assert!(density("field_grid") > 5.0 * density("zion_particles"));
    }
}
