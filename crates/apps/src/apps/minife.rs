//! miniFE 2.0-rc3 — implicit finite-element proxy (Mantevo / CORAL).
//!
//! 64 ranks × 4 threads, 520×512×512, 200 CG iterations, ~1 GiB per rank.
//! The CG solve reuses a small set of objects (matrix values/columns and the
//! CG vectors, ~80 MiB per rank) over and over, while large setup structures
//! (mesh generation, connectivity) are only touched during initialisation.
//! The framework promotes exactly the hot set — the paper highlights that the
//! best case needs only ~3 objects — and wins; FCFS placement wastes the
//! budget on the setup data that happens to be allocated first.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The miniFE workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "miniFE",
        version: "2.0rc3",
        language: "C++",
        parallelism: "MPI+OpenMP",
        lines_of_code: 4_609,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "520x512x512, 200 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp",
        fom_name: "MFLOPS",
        fom_work_per_iteration: 4_036.0,
        alloc_statement_counts: "0/0/0/5/1/0",
        iterations: 200,
        instructions_per_iteration: 610_000_000,
        misses_per_iteration: 9_000_000,
        // Cache-mode-effective working set: the CG hot set is small, but the
        // whole ~1 GiB/rank footprint keeps being dragged through the
        // direct-mapped MCDRAM cache, which is why cache mode trails the
        // framework for miniFE in the paper.
        hot_working_set: ByteSize::from_mib(380),
        small_allocs_per_second: 1_006.55,
        init_time: Nanos::from_secs(5.0),
        objects: vec![
            // Setup-phase data, allocated first: big and cold.
            ObjectSpec::dynamic(
                "mesh_setup_buffers",
                ByteSize::from_mib(200),
                &["main", "initialize", "malloc"],
                0.03,
                0.10,
            ),
            ObjectSpec::dynamic(
                "element_connectivity",
                ByteSize::from_mib(620),
                &["main", "GenerateGeometry", "malloc"],
                0.06,
                0.25,
            ),
            // The CG hot set (~83 MiB/rank): this is what the framework
            // promotes, and it fits from the 128 MiB budget upwards.
            ObjectSpec::dynamic(
                "A.coefs",
                ByteSize::from_mib(60),
                &["main", "GenerateProblem", "alloc_matrix", "malloc"],
                0.44,
                0.05,
            ),
            ObjectSpec::dynamic(
                "A.cols",
                ByteSize::from_mib(15),
                &["main", "GenerateProblem", "alloc_vectors", "malloc"],
                0.18,
                0.10,
            ),
            ObjectSpec::dynamic(
                "cg_vectors",
                ByteSize::from_mib(8),
                &["main", "CG_ref", "alloc_workspace", "malloc"],
                0.17,
                0.20,
            ),
            ObjectSpec::dynamic(
                "mpi_exchange_buffers",
                ByteSize::from_mib(60),
                &["main", "CommSetup", "malloc"],
                0.03,
                0.30,
            ),
            ObjectSpec::static_var("quadrature_tables", ByteSize::from_mib(50), 0.04, 0.15),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(10), 0.05, 0.55),
        ],
        kernels: vec![
            KernelSpec {
                name: "matvec",
                instruction_share: 0.6,
                miss_share: 0.7,
                object_weights: &[("A.coefs", 0.55), ("A.cols", 0.25), ("cg_vectors", 0.20)],
            },
            KernelSpec {
                name: "dot_waxpby",
                instruction_share: 0.4,
                miss_share: 0.3,
                object_weights: &[("cg_vectors", 0.8), ("mpi_exchange_buffers", 0.2)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((900.0..=1100.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn hot_set_is_about_80_mib_and_covers_most_misses() {
        let s = spec();
        let hot_names = ["A.coefs", "A.cols", "cg_vectors"];
        let size: ByteSize = s
            .objects
            .iter()
            .filter(|o| hot_names.contains(&o.name))
            .map(|o| o.size)
            .sum();
        let share: f64 = hot_names.iter().map(|n| s.miss_fraction(n)).sum();
        assert!(size <= ByteSize::from_mib(96), "hot set is {size}");
        assert!(share > 0.7, "hot set covers {share}");
    }

    #[test]
    fn cold_setup_data_is_allocated_before_the_hot_set() {
        let s = spec();
        assert_eq!(s.objects[0].name, "mesh_setup_buffers");
        assert!(s.objects[0].miss_share < 0.05);
        assert!(s.objects[0].size >= ByteSize::from_mib(128));
    }
}
