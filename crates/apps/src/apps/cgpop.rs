//! CGPOP 1.0 — the conjugate-gradient solver extracted from LANL POP 2.0.
//!
//! 64 MPI ranks (no threading), 180×120 blocks, 200 trials, ~158 MiB per
//! rank. As with BT, the hot data is static in the original Fortran code; the
//! paper converted "the most observed variables" to dynamic allocations. The
//! converted hot set is tiny — it "already fit\[s\] in the smaller case (32
//! Mbytes per process), so adding more memory does not provide any benefit" —
//! and a meaningful share of the traffic stays on static variables, which is
//! why `numactl -p 1` remains marginally ahead and why the paper notes that
//! "additional performance could be achieved if some static variables were
//! migrated into fast memory".

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The CGPOP workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "CGPOP",
        version: "1.0",
        language: "Fortran",
        parallelism: "MPI",
        lines_of_code: 4_612,
        ranks: 64,
        threads_per_rank: 1,
        problem_size: "180x120, 200 trials",
        compilation_flags: "-g -O3 -xMIC-AVX512",
        fom_name: "Trials/s",
        fom_work_per_iteration: 1.0,
        alloc_statement_counts: "0/0/0/0/0/29/6",
        iterations: 200,
        instructions_per_iteration: 2_400_000_000,
        misses_per_iteration: 50_000_000,
        hot_working_set: ByteSize::from_mib(120),
        small_allocs_per_second: 18.17,
        init_time: Nanos::from_secs(3.0),
        objects: vec![
            // Converted-to-dynamic hot solver state: fits at 32 MiB/rank.
            ObjectSpec::dynamic(
                "solver_vectors",
                ByteSize::from_mib(16),
                &["main", "allocate_state", "allocate", "malloc"],
                0.40,
                0.15,
            ),
            ObjectSpec::dynamic(
                "matrix_coefficients",
                ByteSize::from_mib(9),
                &["main", "allocate_state", "alloc_matrix", "malloc"],
                0.15,
                0.10,
            ),
            ObjectSpec::dynamic(
                "halo_buffers",
                ByteSize::from_mib(3),
                &["main", "CommSetup", "malloc"],
                0.07,
                0.50,
            ),
            // Hot data that stayed static after the modification.
            ObjectSpec::static_var("grid_constants_common", ByteSize::from_mib(70), 0.25, 0.20),
            ObjectSpec::static_var("io_buffers_common", ByteSize::from_mib(30), 0.02, 0.10),
            ObjectSpec::stack("solver_stack_frames", ByteSize::from_mib(6), 0.11, 0.55),
            // Cold dynamic scratch allocated late.
            ObjectSpec::dynamic(
                "diagnostics_scratch",
                ByteSize::from_mib(24),
                &["main", "finalize", "malloc"],
                0.00,
                0.10,
            ),
        ],
        kernels: vec![
            KernelSpec {
                name: "pcg_solve",
                instruction_share: 0.8,
                miss_share: 0.85,
                object_weights: &[
                    ("solver_vectors", 0.45),
                    ("matrix_coefficients", 0.18),
                    ("grid_constants_common", 0.27),
                    ("halo_buffers", 0.10),
                ],
            },
            KernelSpec {
                name: "boundary_exchange",
                instruction_share: 0.2,
                miss_share: 0.15,
                object_weights: &[("halo_buffers", 0.4), ("solver_stack_frames", 0.6)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((140.0..=180.0).contains(&mib), "footprint {mib} MiB");
        assert_eq!(s.threads_per_rank, 1, "CGPOP is MPI-only");
    }

    #[test]
    fn converted_dynamic_hot_set_fits_in_32_mib() {
        let s = spec();
        let dynamic_hot: ByteSize = s
            .objects
            .iter()
            .filter(|o| o.kind == hmsim_heap::ObjectKind::Dynamic && o.miss_share > 0.05)
            .map(|o| o.size)
            .sum();
        assert!(
            dynamic_hot <= ByteSize::from_mib(32),
            "hot dynamic set {dynamic_hot}"
        );
    }

    #[test]
    fn a_significant_share_of_misses_stays_on_static_and_stack_data() {
        let s = spec();
        let non_dynamic: f64 = s
            .objects
            .iter()
            .filter(|o| o.kind != hmsim_heap::ObjectKind::Dynamic)
            .map(|o| o.miss_share)
            .sum();
        assert!(non_dynamic > 0.3, "non-promotable share {non_dynamic}");
    }
}
