//! LULESH 2.0 — Livermore Unstructured Lagrange Explicit Shock Hydrodynamics.
//!
//! 64 ranks × 4 threads, 96³ elements, 50 iterations, ~859 MiB per rank.
//! The placement-relevant behaviour from §IV of the paper:
//!
//! * the application allocates and deallocates many temporaries *inside* the
//!   iteration loop, which "misleads the framework because hmem_advisor
//!   considers data objects alive for the whole execution";
//! * several of those temporaries fall in the 1–2 MiB range where memkind
//!   allocations are anomalously expensive, which is why the `autohbw`
//!   baseline ends up ~8 % *slower* than DDR;
//! * the hot working set fits comfortably in the MCDRAM cache, so cache mode
//!   is the best approach (+47 % over DDR, +12.7 % over the framework's best
//!   configuration).

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The LULESH workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "Lulesh",
        version: "2.0",
        language: "C++",
        parallelism: "MPI+OpenMP",
        lines_of_code: 7_240,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "96^3, 50 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qopenmp -fno-inline",
        fom_name: "z/s",
        fom_work_per_iteration: 2_702.0,
        alloc_statement_counts: "1/0/1/35/23/0/0",
        iterations: 50,
        instructions_per_iteration: 440_000_000,
        misses_per_iteration: 8_000_000,
        hot_working_set: ByteSize::from_mib(330),
        small_allocs_per_second: 29.48,
        init_time: Nanos::from_secs(1.0),
        objects: vec![
            // Cold-ish communication/boundary structures allocated first
            // (they are what a FCFS policy fills MCDRAM with).
            ObjectSpec::dynamic(
                "symmetry_bc_arrays",
                ByteSize::from_mib(60),
                &["main", "initialize", "malloc"],
                0.02,
                0.10,
            ),
            ObjectSpec::dynamic(
                "comm_buffers",
                ByteSize::from_mib(50),
                &["main", "CommSetup", "malloc"],
                0.02,
                0.20,
            ),
            ObjectSpec::dynamic(
                "region_index_lists",
                ByteSize::from_mib(80),
                &["main", "CreateRegionIndexSets", "malloc"],
                0.05,
                0.40,
            ),
            // The big nodal and element field families.
            ObjectSpec::dynamic(
                "nodal_coords_velocities",
                ByteSize::from_mib(220),
                &[
                    "main",
                    "allocate_state",
                    "AllocateNodalPersistent",
                    "malloc",
                ],
                0.24,
                0.10,
            ),
            ObjectSpec::dynamic(
                "element_fields",
                ByteSize::from_mib(300),
                &["main", "allocate_state", "AllocateElemPersistent", "malloc"],
                0.44,
                0.10,
            ),
            // Per-iteration temporaries: the LULESH signature behaviour.
            ObjectSpec::dynamic(
                "hourglass_temporaries",
                ByteSize::from_mib(45),
                &["main", "CalcHourglassControlForElems", "malloc"],
                0.06,
                0.05,
            )
            .per_iteration(8)
            .with_min_size(ByteSize::from_mib(12)),
            ObjectSpec::dynamic(
                "strain_temporaries",
                ByteSize::from_bytes(1_600_000),
                &["main", "CalcKinematicsForElems", "malloc"],
                0.0,
                0.05,
            )
            .per_iteration(14)
            .with_min_size(ByteSize::from_mib(1)),
            ObjectSpec::dynamic(
                "gradient_temporaries",
                ByteSize::from_bytes(1_300_000),
                &["main", "CalcMonotonicQGradientsForElems", "malloc"],
                0.0,
                0.05,
            )
            .per_iteration(10)
            .with_min_size(ByteSize::from_mib(1)),
            ObjectSpec::static_var("mesh_constants", ByteSize::from_mib(20), 0.03, 0.20),
            ObjectSpec::stack("omp_thread_stacks", ByteSize::from_mib(4), 0.04, 0.60),
        ],
        kernels: vec![
            KernelSpec {
                name: "CalcForceForNodes",
                instruction_share: 0.45,
                miss_share: 0.45,
                object_weights: &[
                    ("nodal_coords_velocities", 0.40),
                    ("element_fields", 0.35),
                    ("hourglass_temporaries", 0.25),
                ],
            },
            KernelSpec {
                name: "CalcLagrangeElements",
                instruction_share: 0.35,
                miss_share: 0.40,
                object_weights: &[
                    ("element_fields", 0.55),
                    ("strain_temporaries", 0.10),
                    ("gradient_temporaries", 0.10),
                    ("region_index_lists", 0.25),
                ],
            },
            KernelSpec {
                name: "CalcTimeConstraints",
                instruction_share: 0.20,
                miss_share: 0.15,
                object_weights: &[("element_fields", 0.6), ("nodal_coords_velocities", 0.4)],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AllocTiming;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((700.0..=950.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn has_per_iteration_churn_in_the_memkind_anomaly_window() {
        let s = spec();
        let churn: Vec<_> = s
            .objects
            .iter()
            .filter(|o| matches!(o.timing, AllocTiming::PerIteration { .. }))
            .collect();
        assert!(
            churn.len() >= 3,
            "LULESH must churn allocations per iteration"
        );
        assert!(
            churn
                .iter()
                .any(|o| o.size >= ByteSize::from_mib(1) && o.size < ByteSize::from_mib(2)),
            "some churn sites fall in the 1-2 MiB anomaly window"
        );
    }

    #[test]
    fn biggest_field_family_exceeds_every_per_rank_budget() {
        let s = spec();
        let elem = s
            .objects
            .iter()
            .find(|o| o.name == "element_fields")
            .unwrap();
        assert!(elem.size > ByteSize::from_mib(256));
        assert!(s.miss_fraction("element_fields") > 0.25);
    }

    #[test]
    fn cold_objects_are_allocated_before_hot_ones() {
        // FCFS policies fill MCDRAM with the first allocations; LULESH's
        // early allocations are cold, which is why numactl/autohbw gain little.
        let s = spec();
        let first_three: f64 = s.objects[..3].iter().map(|o| o.miss_share).sum();
        assert!(
            first_three < 0.15,
            "early allocations are cold ({first_three})"
        );
    }
}
