//! SNAP 1.0.7 — discrete-ordinates neutral-particle transport proxy.
//!
//! 64 ranks × 4 threads, 32×64×64 cells, 20 outer iterations, ~1 GiB per
//! rank. The placement-relevant structure from §IV of the paper:
//!
//! * the allocation inventory is "few small chunks of memory and one large
//!   (256 Mbytes) buffer"; the density strategy promotes the small chunks
//!   first and then the large buffer no longer fits, which is why its MCDRAM
//!   usage stays at ~64 MiB even with 128/256 MiB budgets;
//! * the `outer_src_calc` routine suffers register spilling; the spill slots
//!   live on the *stack*, which only `numactl -p 1` (or cache mode) can move
//!   to MCDRAM — the framework cannot, so its MIPS dips during that routine
//!   (Figure 5) and `numactl` stays marginally ahead overall.

use crate::spec::{AppSpec, KernelSpec, ObjectSpec};
use hmsim_common::{ByteSize, Nanos};

/// The SNAP workload model.
pub fn spec() -> AppSpec {
    AppSpec {
        name: "SNAP",
        version: "1.0.7",
        language: "Fortran",
        parallelism: "MPI+OpenMP",
        lines_of_code: 8_583,
        ranks: 64,
        threads_per_rank: 4,
        problem_size: "32x64x64, 20 its",
        compilation_flags: "-g -O3 -xMIC-AVX512 -qno-opt-dynamic-align -fno-fnalias -qopenmp",
        fom_name: "Iterations/s",
        fom_work_per_iteration: 1.0,
        alloc_statement_counts: "0/0/0/5/1/0/0",
        iterations: 20,
        instructions_per_iteration: 25_000_000_000,
        misses_per_iteration: 310_000_000,
        hot_working_set: ByteSize::from_mib(620),
        small_allocs_per_second: 1_006.55,
        init_time: Nanos::from_secs(8.0),
        objects: vec![
            // The small chunks: cross sections, geometry, scratch.
            ObjectSpec::dynamic(
                "cross_section_tables",
                ByteSize::from_mib(24),
                &["main", "initialize", "allocate", "malloc"],
                0.08,
                0.20,
            ),
            ObjectSpec::dynamic(
                "geometry_arrays",
                ByteSize::from_mib(20),
                &["main", "initialize", "alloc_vectors", "malloc"],
                0.06,
                0.15,
            ),
            ObjectSpec::dynamic(
                "sweep_scratch",
                ByteSize::from_mib(20),
                &["main", "octsweep", "alloc_workspace", "malloc"],
                0.06,
                0.10,
            ),
            // The one large buffer (256 MiB) the density strategy cannot fit
            // after taking the small chunks.
            ObjectSpec::dynamic(
                "flux_moments_buffer",
                ByteSize::from_mib(256),
                &["main", "allocate_state", "allocate", "malloc"],
                0.22,
                0.10,
            ),
            ObjectSpec::dynamic(
                "angular_flux",
                ByteSize::from_mib(520),
                &["main", "allocate_state", "alloc_matrix", "malloc"],
                0.30,
                0.10,
            ),
            ObjectSpec::static_var("control_commons", ByteSize::from_mib(100), 0.05, 0.15),
            // Register-spill slots of outer_src_calc: stack storage the
            // framework cannot promote.
            ObjectSpec::stack("outer_src_spill_slots", ByteSize::from_mib(40), 0.23, 0.70),
        ],
        kernels: vec![
            KernelSpec {
                name: "octsweep",
                instruction_share: 0.72,
                miss_share: 0.62,
                object_weights: &[
                    ("angular_flux", 0.42),
                    ("flux_moments_buffer", 0.28),
                    ("sweep_scratch", 0.10),
                    ("cross_section_tables", 0.12),
                    ("geometry_arrays", 0.08),
                ],
            },
            KernelSpec {
                name: "outer_src_calc",
                instruction_share: 0.28,
                miss_share: 0.38,
                object_weights: &[
                    ("outer_src_spill_slots", 0.60),
                    ("flux_moments_buffer", 0.25),
                    ("control_commons", 0.15),
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_matches_table1_scale() {
        let s = spec();
        s.validate().unwrap();
        let mib = s.footprint().mib();
        assert!((900.0..=1100.0).contains(&mib), "footprint {mib} MiB");
    }

    #[test]
    fn small_chunks_total_about_64_mib_and_the_big_buffer_is_256() {
        let s = spec();
        let small: ByteSize = s
            .objects
            .iter()
            .filter(|o| {
                ["cross_section_tables", "geometry_arrays", "sweep_scratch"].contains(&o.name)
            })
            .map(|o| o.size)
            .sum();
        assert_eq!(small, ByteSize::from_mib(64));
        let big = s
            .objects
            .iter()
            .find(|o| o.name == "flux_moments_buffer")
            .unwrap();
        assert_eq!(big.size, ByteSize::from_mib(256));
    }

    #[test]
    fn stack_spills_carry_a_large_irregular_share() {
        let s = spec();
        let spill = s
            .objects
            .iter()
            .find(|o| o.name == "outer_src_spill_slots")
            .unwrap();
        assert_eq!(spill.kind, hmsim_heap::ObjectKind::Stack);
        assert!(spill.miss_share >= 0.2);
        assert!(spill.irregular >= 0.5);
    }

    #[test]
    fn outer_src_calc_is_dominated_by_the_spill_slots() {
        let s = spec();
        let outer = s
            .kernels
            .iter()
            .find(|k| k.name == "outer_src_calc")
            .unwrap();
        let spill_weight = outer
            .object_weights
            .iter()
            .find(|(n, _)| *n == "outer_src_spill_slots")
            .map(|(_, w)| *w)
            .unwrap();
        assert!(spill_weight >= 0.5);
    }
}
