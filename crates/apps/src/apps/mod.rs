//! The eight application models of the paper's evaluation (Table I).
//!
//! Each module exposes a single `spec()` function returning the
//! [`crate::AppSpec`] for that application. The inventories encode the
//! placement-relevant structure described in §IV of the paper:
//!
//! * **HPCG** — a handful of large matrix/vector objects; the framework wins
//!   by promoting the few hottest ones, and its best case needs only 2–3
//!   objects in MCDRAM.
//! * **LULESH** — per-iteration allocation churn (1–2 MiB temporaries) that
//!   both misleads the advisor and makes memkind's allocation-cost anomaly
//!   visible; cache mode wins.
//! * **NAS BT** — the hot data was originally static and had to be converted
//!   to dynamic allocations; `numactl -p 1` stays marginally ahead because it
//!   also covers what remained static.
//! * **miniFE** — a small hot working set (~80 MiB/rank) that fits easily;
//!   the framework wins and the ΔFOM/MiB sweet spot sits at 128 MiB.
//! * **CGPOP** — all (converted) dynamic objects already fit at 32 MiB/rank,
//!   so more budget does not help; hot *static* data keeps `numactl` ahead.
//! * **SNAP** — one 256 MiB buffer plus a few small chunks; the density
//!   strategy fills only ~64 MiB at larger budgets, and register spills on
//!   the stack (outside the framework's reach) keep `numactl` ahead.
//! * **MAXW-DGTD** — a very high allocation rate with a hot set that fits in
//!   the MCDRAM cache; cache mode is slightly ahead of the framework.
//! * **GTC-P** — large streamed particle arrays that never fit plus small,
//!   intensely and irregularly accessed grid arrays that do; the framework
//!   wins and density-style selection is the natural fit.

pub mod cgpop;
pub mod gtcp;
pub mod hpcg;
pub mod lulesh;
pub mod maxw_dgtd;
pub mod minife;
pub mod nas_bt;
pub mod snap;
