//! The declarative application model.

use hmsim_common::{ByteSize, HmError, HmResult, Nanos};
use hmsim_heap::ObjectKind;

/// When an object is allocated during the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocTiming {
    /// Allocated once during initialisation and kept until the end (the
    /// common HPC pattern the advisor's static-address-space assumption
    /// relies on).
    Init,
    /// Allocated and freed inside the iteration loop (`allocs_per_iteration`
    /// times per iteration) — the pattern that misleads the advisor for
    /// LULESH and that makes allocator overhead visible.
    PerIteration {
        /// Allocation/deallocation pairs per iteration from this site.
        allocs_per_iteration: u32,
    },
}

/// One data object (or family of identically-behaving objects) of an
/// application, per process.
#[derive(Clone, Debug)]
pub struct ObjectSpec {
    /// Object (or variable) name.
    pub name: &'static str,
    /// Static, dynamic or stack storage.
    pub kind: ObjectKind,
    /// Size per process (the maximum, when the size varies between
    /// allocations from the same site).
    pub size: ByteSize,
    /// Smallest size requested from this site (equals `size` unless the site
    /// allocates variable amounts).
    pub min_size: ByteSize,
    /// Logical allocation call-path, outermost frame first (dynamic objects).
    pub site: &'static [&'static str],
    /// When the object is allocated.
    pub timing: AllocTiming,
    /// This object's share of the application's per-iteration LLC misses
    /// (weights are normalised over the whole object list).
    pub miss_share: f64,
    /// Fraction of the object's traffic that is irregular / latency-bound.
    pub irregular: f64,
}

impl ObjectSpec {
    /// Convenience constructor for an init-time dynamic object.
    pub fn dynamic(
        name: &'static str,
        size: ByteSize,
        site: &'static [&'static str],
        miss_share: f64,
        irregular: f64,
    ) -> Self {
        ObjectSpec {
            name,
            kind: ObjectKind::Dynamic,
            size,
            min_size: size,
            site,
            timing: AllocTiming::Init,
            miss_share,
            irregular,
        }
    }

    /// Convenience constructor for a static variable.
    pub fn static_var(name: &'static str, size: ByteSize, miss_share: f64, irregular: f64) -> Self {
        ObjectSpec {
            name,
            kind: ObjectKind::Static,
            size,
            min_size: size,
            site: &[],
            timing: AllocTiming::Init,
            miss_share,
            irregular,
        }
    }

    /// Convenience constructor for stack (automatic) storage such as the
    /// register-spill area of a hot routine.
    pub fn stack(name: &'static str, size: ByteSize, miss_share: f64, irregular: f64) -> Self {
        ObjectSpec {
            name,
            kind: ObjectKind::Stack,
            size,
            min_size: size,
            site: &[],
            timing: AllocTiming::Init,
            miss_share,
            irregular,
        }
    }

    /// Mark this object as allocated/freed inside the iteration loop.
    pub fn per_iteration(mut self, allocs_per_iteration: u32) -> Self {
        self.timing = AllocTiming::PerIteration {
            allocs_per_iteration,
        };
        self
    }

    /// Set a smaller minimum allocation size for a variable-size site.
    pub fn with_min_size(mut self, min: ByteSize) -> Self {
        self.min_size = min;
        self
    }
}

/// One kernel (phase) inside the application's main iteration.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Kernel name (matches routine names in Figure 5 for SNAP).
    pub name: &'static str,
    /// Share of the iteration's instructions executed in this kernel.
    pub instruction_share: f64,
    /// Share of the iteration's LLC misses generated in this kernel.
    pub miss_share: f64,
    /// Objects touched by this kernel and their relative weights within the
    /// kernel; when empty the kernel touches every object proportionally to
    /// its global `miss_share`.
    pub object_weights: &'static [(&'static str, f64)],
}

/// A complete application model.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Application name as used in the paper.
    pub name: &'static str,
    /// Version string (Table I).
    pub version: &'static str,
    /// Implementation language (Table I).
    pub language: &'static str,
    /// Parallelisation (Table I).
    pub parallelism: &'static str,
    /// Source lines of code (Table I).
    pub lines_of_code: u32,
    /// MPI ranks used in the evaluation.
    pub ranks: u32,
    /// Threads per rank.
    pub threads_per_rank: u32,
    /// Problem size description (Table I).
    pub problem_size: &'static str,
    /// Compiler flags (Table I).
    pub compilation_flags: &'static str,
    /// Name of the figure of merit (Table I).
    pub fom_name: &'static str,
    /// Work units (in FOM terms) completed by the whole node per iteration;
    /// FOM = `fom_work_per_iteration * iterations / elapsed_seconds`.
    pub fom_work_per_iteration: f64,
    /// Direct allocation statements (Table I, format m/r/f/n/d/a/D).
    pub alloc_statement_counts: &'static str,
    /// Main-loop iterations simulated.
    pub iterations: u32,
    /// Instructions retired per process per iteration.
    pub instructions_per_iteration: u64,
    /// LLC misses per process per iteration.
    pub misses_per_iteration: u64,
    /// Hot (frequently-reused) working set per process; governs the MCDRAM
    /// cache-mode hit rate.
    pub hot_working_set: ByteSize,
    /// Small, untraced allocations per second (below the 4 KiB filter) —
    /// only used to reproduce the allocation-rate column of Table I.
    pub small_allocs_per_second: f64,
    /// Time spent outside the iteration loop (initialisation, I/O).
    pub init_time: Nanos,
    /// The data objects.
    pub objects: Vec<ObjectSpec>,
    /// The kernels inside one iteration.
    pub kernels: Vec<KernelSpec>,
}

impl AppSpec {
    /// Total per-process memory footprint (all objects).
    pub fn footprint(&self) -> ByteSize {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Dynamic objects only.
    pub fn dynamic_objects(&self) -> impl Iterator<Item = &ObjectSpec> {
        self.objects
            .iter()
            .filter(|o| o.kind == ObjectKind::Dynamic)
    }

    /// Normalised miss share of object `name` (0 if unknown).
    pub fn miss_fraction(&self, name: &str) -> f64 {
        let total: f64 = self.objects.iter().map(|o| o.miss_share).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.objects
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.miss_share / total)
            .unwrap_or(0.0)
    }

    /// Per-iteration misses of each object, normalised from the weights.
    pub fn object_misses_per_iteration(&self) -> Vec<(&ObjectSpec, u64)> {
        let total: f64 = self.objects.iter().map(|o| o.miss_share).sum();
        if total <= 0.0 {
            return self.objects.iter().map(|o| (o, 0)).collect();
        }
        self.objects
            .iter()
            .map(|o| {
                (
                    o,
                    ((o.miss_share / total) * self.misses_per_iteration as f64).round() as u64,
                )
            })
            .collect()
    }

    /// Traced (≥ 4 KiB) allocation events per process per second, from the
    /// object inventory and iteration structure; approximates Table I's
    /// "number of allocations/process/second" for allocation-heavy codes.
    pub fn traced_alloc_rate(&self, iteration_time: Nanos) -> f64 {
        let per_iter: u32 = self
            .objects
            .iter()
            .map(|o| match o.timing {
                AllocTiming::PerIteration {
                    allocs_per_iteration,
                } => allocs_per_iteration,
                AllocTiming::Init => 0,
            })
            .sum();
        if iteration_time.secs() <= 0.0 {
            return 0.0;
        }
        f64::from(per_iter) / iteration_time.secs()
    }

    /// Basic consistency checks: miss shares positive, kernel shares summing
    /// to ≈ 1, objects referenced by kernels existing. Returns a typed
    /// [`HmError::Config`] so bad specs surface as ordinary errors in sweeps
    /// instead of panicking the whole grid.
    pub fn validate(&self) -> HmResult<()> {
        if self.objects.is_empty() {
            return Err(HmError::Config(format!("{}: no objects", self.name)));
        }
        if self.objects.iter().any(|o| o.miss_share < 0.0) {
            return Err(HmError::Config(format!(
                "{}: negative miss share",
                self.name
            )));
        }
        let total_share: f64 = self.objects.iter().map(|o| o.miss_share).sum();
        if total_share <= 0.0 {
            return Err(HmError::Config(format!(
                "{}: zero total miss share",
                self.name
            )));
        }
        if !self.kernels.is_empty() {
            let instr: f64 = self.kernels.iter().map(|k| k.instruction_share).sum();
            let miss: f64 = self.kernels.iter().map(|k| k.miss_share).sum();
            if (instr - 1.0).abs() > 0.05 || (miss - 1.0).abs() > 0.05 {
                return Err(HmError::Config(format!(
                    "{}: kernel shares must sum to 1 (instr {instr:.2}, miss {miss:.2})",
                    self.name
                )));
            }
            for k in &self.kernels {
                for (obj, _) in k.object_weights {
                    if !self.objects.iter().any(|o| o.name == *obj) {
                        return Err(HmError::Config(format!(
                            "{}: kernel {} references unknown object {obj}",
                            self.name, k.name
                        )));
                    }
                }
            }
        }
        for o in &self.objects {
            if o.kind == ObjectKind::Dynamic && o.site.is_empty() {
                return Err(HmError::Config(format!(
                    "{}: dynamic object {} has no allocation site",
                    self.name, o.name
                )));
            }
            if o.min_size > o.size {
                return Err(HmError::Config(format!(
                    "{}: object {} min_size exceeds size",
                    self.name, o.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> AppSpec {
        AppSpec {
            name: "tiny",
            version: "1.0",
            language: "Rust",
            parallelism: "none",
            lines_of_code: 10,
            ranks: 1,
            threads_per_rank: 1,
            problem_size: "n/a",
            compilation_flags: "-O3",
            fom_name: "it/s",
            fom_work_per_iteration: 1.0,
            alloc_statement_counts: "1/0/1/0/0/0/0",
            iterations: 10,
            instructions_per_iteration: 1_000_000,
            misses_per_iteration: 10_000,
            hot_working_set: ByteSize::from_mib(64),
            small_allocs_per_second: 3.0,
            init_time: Nanos::from_millis(5.0),
            objects: vec![
                ObjectSpec::dynamic(
                    "hot",
                    ByteSize::from_mib(32),
                    &["main", "alloc_hot", "malloc"],
                    0.8,
                    0.0,
                ),
                ObjectSpec::static_var("table", ByteSize::from_mib(8), 0.2, 0.5),
            ],
            kernels: vec![KernelSpec {
                name: "solve",
                instruction_share: 1.0,
                miss_share: 1.0,
                object_weights: &[],
            }],
        }
    }

    #[test]
    fn validation_accepts_well_formed_specs() {
        tiny_spec().validate().unwrap();
    }

    #[test]
    fn validation_rejects_broken_specs() {
        let mut no_site = tiny_spec();
        no_site.objects[0].site = &[];
        assert!(no_site.validate().is_err());

        let mut bad_kernel = tiny_spec();
        bad_kernel.kernels[0].instruction_share = 0.3;
        assert!(bad_kernel.validate().is_err());

        let mut empty = tiny_spec();
        empty.objects.clear();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn miss_fractions_are_normalised() {
        let s = tiny_spec();
        assert!((s.miss_fraction("hot") - 0.8).abs() < 1e-12);
        assert!((s.miss_fraction("table") - 0.2).abs() < 1e-12);
        assert_eq!(s.miss_fraction("nope"), 0.0);
        let misses = s.object_misses_per_iteration();
        let total: u64 = misses.iter().map(|(_, m)| m).sum();
        assert!((total as i64 - 10_000i64).abs() <= 1);
    }

    #[test]
    fn footprint_and_rates() {
        let s = tiny_spec();
        assert_eq!(s.footprint(), ByteSize::from_mib(40));
        assert_eq!(s.dynamic_objects().count(), 1);
        assert_eq!(s.traced_alloc_rate(Nanos::from_secs(1.0)), 0.0);
        let churn = ObjectSpec::dynamic("w", ByteSize::from_mib(1), &["main", "malloc"], 0.1, 0.0)
            .per_iteration(4);
        let mut s2 = tiny_spec();
        s2.objects.push(churn);
        assert!((s2.traced_alloc_rate(Nanos::from_secs(2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_iteration_and_min_size_builders() {
        let o = ObjectSpec::dynamic("x", ByteSize::from_mib(8), &["main", "malloc"], 0.5, 0.1)
            .per_iteration(3)
            .with_min_size(ByteSize::from_mib(2));
        assert_eq!(
            o.timing,
            AllocTiming::PerIteration {
                allocs_per_iteration: 3
            }
        );
        assert_eq!(o.min_size, ByteSize::from_mib(2));
    }
}
