//! The STREAM Triad kernel used in the paper's Figure 1.
//!
//! Triad computes `a[i] = b[i] + scalar * c[i]` over three large arrays and
//! reports the sustained memory bandwidth. Figure 1 plots that bandwidth
//! against the number of cores used (one thread per core) for data placed in
//! DDR, in flat-mode MCDRAM and with MCDRAM configured as a cache.

use hmsim_common::{ByteSize, TierId};
use hmsim_machine::{BandwidthModel, MachineConfig, McdramCacheModel, MemoryMode};

/// One measured point of the STREAM scaling curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamResult {
    /// Cores used (one thread per core).
    pub cores: u32,
    /// Sustained Triad bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

/// The STREAM benchmark configuration.
#[derive(Clone, Debug)]
pub struct StreamBenchmark {
    /// Per-array size (the paper-scale runs use arrays far larger than the
    /// caches; the default is 1 GiB per array).
    pub array_size: ByteSize,
    /// Element size in bytes (double precision).
    pub element_size: u32,
    /// Core counts to measure (the x-axis of Figure 1).
    pub core_counts: Vec<u32>,
}

impl Default for StreamBenchmark {
    fn default() -> Self {
        StreamBenchmark {
            array_size: ByteSize::from_gib(1),
            element_size: 8,
            core_counts: vec![1, 2, 4, 8, 16, 32, 34, 64, 68],
        }
    }
}

impl StreamBenchmark {
    /// Bytes moved per Triad element update: read `b[i]` and `c[i]`, write
    /// `a[i]` (plus the write-allocate read of `a[i]`).
    pub fn bytes_per_element(&self) -> u64 {
        u64::from(self.element_size) * 4
    }

    /// Total working set (three arrays).
    pub fn working_set(&self) -> ByteSize {
        self.array_size * 3
    }

    /// The Triad scaling curve for data resident in `tier` on a machine in
    /// flat mode.
    pub fn run_flat(&self, machine: &MachineConfig, tier: TierId) -> Vec<StreamResult> {
        let model = BandwidthModel::new(machine);
        self.core_counts
            .iter()
            .map(|&cores| StreamResult {
                cores,
                bandwidth_gbs: model.stream_bandwidth_gbs(cores, tier, 1.0),
            })
            .collect()
    }

    /// The Triad scaling curve with MCDRAM configured as a cache.
    pub fn run_cache_mode(&self, machine: &MachineConfig) -> Vec<StreamResult> {
        let cache_machine = machine.clone().with_memory_mode(MemoryMode::Cache);
        let model = BandwidthModel::new(&cache_machine);
        let mcdram = McdramCacheModel::knl();
        // STREAM is perfectly streaming: irregularity 0. The working set of
        // the paper-scale run fits in the 16 GiB cache, but direct-mapped
        // conflicts and write-allocate traffic keep the hit rate below 1.
        let hit_rate = mcdram.hit_rate(self.working_set(), 0.0) * 0.97;
        self.core_counts
            .iter()
            .map(|&cores| StreamResult {
                cores,
                bandwidth_gbs: model.cache_mode_bandwidth_gbs(cores, hit_rate),
            })
            .collect()
    }

    /// Produce the three series of Figure 1: (cores, DDR, MCDRAM-flat,
    /// MCDRAM-cache).
    pub fn figure1(&self, machine: &MachineConfig) -> Vec<(u32, f64, f64, f64)> {
        let ddr = self.run_flat(machine, TierId::DDR);
        let flat = self.run_flat(machine, TierId::MCDRAM);
        let cache = self.run_cache_mode(machine);
        ddr.iter()
            .zip(flat.iter())
            .zip(cache.iter())
            .map(|((d, f), c)| (d.cores, d.bandwidth_gbs, f.bandwidth_gbs, c.bandwidth_gbs))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::knl_7250()
    }

    #[test]
    fn figure1_series_have_the_paper_shape() {
        let bench = StreamBenchmark::default();
        let fig = bench.figure1(&machine());
        assert_eq!(fig.len(), 9);

        // All three series grow (weakly) with core count.
        for series in 0..3 {
            let get = |row: &(u32, f64, f64, f64)| match series {
                0 => row.1,
                1 => row.2,
                _ => row.3,
            };
            for w in fig.windows(2) {
                assert!(
                    get(&w[1]) >= get(&w[0]) * 0.99,
                    "series {series} not monotone"
                );
            }
        }

        let last = fig.last().unwrap();
        let (_, ddr, flat, cache) = *last;
        // DDR saturates around 80-90 GB/s; flat MCDRAM several times higher;
        // cache mode in between but closer to flat.
        assert!(ddr > 60.0 && ddr < 95.0, "DDR {ddr}");
        assert!(flat > 3.5 * ddr, "flat {flat} vs ddr {ddr}");
        assert!(cache < flat && cache > ddr, "cache {cache}");

        // At one core the three memories look similar (within 25 %).
        let first = fig.first().unwrap();
        let spread = (first.2 - first.1).abs() / first.1;
        assert!(spread < 0.25, "single-core spread {spread}");
    }

    #[test]
    fn ddr_saturates_early_flat_keeps_scaling() {
        let bench = StreamBenchmark::default();
        let ddr = bench.run_flat(&machine(), TierId::DDR);
        let flat = bench.run_flat(&machine(), TierId::MCDRAM);
        let at = |series: &[StreamResult], cores: u32| {
            series
                .iter()
                .find(|r| r.cores == cores)
                .unwrap()
                .bandwidth_gbs
        };
        // DDR gains little beyond 16 cores; MCDRAM keeps growing.
        assert!(at(&ddr, 68) / at(&ddr, 16) < 1.25);
        assert!(at(&flat, 68) / at(&flat, 16) > 1.8);
    }

    #[test]
    fn working_set_and_traffic_accounting() {
        let bench = StreamBenchmark::default();
        assert_eq!(bench.working_set(), ByteSize::from_gib(3));
        assert_eq!(bench.bytes_per_element(), 32);
    }
}
