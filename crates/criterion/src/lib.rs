//! Minimal, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment is offline, so this crate provides the subset of the
//! criterion 0.5 API the workspace's bench targets use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], [`Throughput`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is plain
//! wall-clock sampling with a warm-up pass and a per-benchmark time budget;
//! results are printed in a criterion-like format.
//!
//! Supported command-line flags (anything else is ignored so that the cargo
//! bench harness protocol keeps working):
//!
//! * `--test` — run every benchmark body exactly once without timing (the CI
//!   smoke mode, mirroring `cargo bench -- --test`);
//! * a positional `FILTER` — only run benchmarks whose id contains the string.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many wall-clock seconds one benchmark may spend collecting samples
/// after warm-up.
const SAMPLE_TIME_BUDGET: Duration = Duration::from_secs(2);

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display` (e.g. `BenchmarkId::new("ddr", cores)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a bare function name.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept both
/// string literals and explicit ids, like real criterion.
pub trait IntoBenchmarkId {
    /// Convert to the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation for a group: turns per-iteration time into an
/// elements/s or bytes/s rate in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark moves this many bytes per iteration.
    Bytes(u64),
}

/// Timing statistics of one finished benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Sampled {
    /// Mean seconds per iteration.
    pub mean_secs: f64,
    /// Fastest observed iteration, seconds.
    pub min_secs: f64,
    /// Number of measured iterations.
    pub samples: usize,
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<Sampled>,
}

impl Bencher<'_> {
    /// Measure `f`: one warm-up call, then up to `sample_size` timed calls
    /// within the time budget. In `--test` mode `f` runs exactly once,
    /// untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.config.test_mode {
            black_box(f());
            self.result = Some(Sampled {
                mean_secs: 0.0,
                min_secs: 0.0,
                samples: 1,
            });
            return;
        }
        black_box(f()); // warm-up
        let budget_start = Instant::now();
        let mut times = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
            if budget_start.elapsed() > SAMPLE_TIME_BUDGET {
                break;
            }
        }
        let total: Duration = times.iter().sum();
        let mean_secs = total.as_secs_f64() / times.len() as f64;
        let min_secs = times
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::INFINITY, f64::min);
        self.result = Some(Sampled {
            mean_secs,
            min_secs,
            samples: times.len(),
        });
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Config {
    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn format_rate(per_iter: f64, secs: f64, unit: &str) -> String {
    if secs <= 0.0 {
        return format!("inf {unit}/s");
    }
    let rate = per_iter / secs;
    if rate >= 1e9 {
        format!("{:.4} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.4} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.4} {unit}/s")
    }
}

fn run_one(
    config: &Config,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    if !config.matches(id) {
        return;
    }
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(_) if config.test_mode => {
            println!("{id}: test passed");
        }
        Some(s) => {
            let thrpt = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: [{}]", format_rate(n as f64, s.mean_secs, "elem"))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: [{}]", format_rate(n as f64, s.mean_secs, "B"))
                }
                None => String::new(),
            };
            println!(
                "{id:<50} time: [{} .. {}] ({} samples){thrpt}",
                format_time(s.min_secs),
                format_time(s.mean_secs),
                s.samples,
            );
        }
        None => println!("{id}: no measurement (closure never called iter)"),
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                sample_size: 20,
                test_mode: false,
                filter: None,
            },
        }
    }
}

impl Criterion {
    /// Set the target number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Apply command-line arguments (`--test`, positional filter). Called by
    /// the [`criterion_group!`] expansion; harmless to call twice.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.config.test_mode = true,
                // Flags the cargo bench protocol may pass; some carry a value.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" | "--profile-time" | "--color" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.config.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        run_one(&self.config, &id.id, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    // Tie the group to the Criterion borrow like real criterion does.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&self.config, &full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&self.config, &full, self.throughput, &mut f);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
