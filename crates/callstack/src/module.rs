//! Program image: the set of loaded modules (main executable plus shared
//! libraries) making up one simulated process.

use crate::symbols::{Symbol, SymbolTable};
use hmsim_common::{Address, ByteSize, HmError, HmResult};

/// One loaded module (executable or shared library).
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name, e.g. `"libhpcg.so"` or `"a.out"`.
    pub name: String,
    /// Link-time base address (what the symbol table is relative to).
    pub link_base: Address,
    /// Size of the module's text segment.
    pub size: ByteSize,
    /// The module's symbol table (offsets relative to `link_base`).
    pub symbols: SymbolTable,
}

impl Module {
    /// Create a module with the given symbols.
    pub fn new(
        name: impl Into<String>,
        link_base: Address,
        size: ByteSize,
        symbols: SymbolTable,
    ) -> Self {
        Module {
            name: name.into(),
            link_base,
            size,
            symbols,
        }
    }

    /// Whether a *link-time* address falls inside this module.
    pub fn contains_link_address(&self, addr: Address) -> bool {
        addr >= self.link_base && addr < self.link_base.offset(self.size.bytes())
    }
}

/// A whole program image: an ordered collection of modules.
#[derive(Clone, Debug, Default)]
pub struct ProgramImage {
    modules: Vec<Module>,
}

impl ProgramImage {
    /// Create an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a module; rejects overlapping link-time ranges.
    pub fn add_module(&mut self, module: Module) -> HmResult<usize> {
        for existing in &self.modules {
            let existing_end = existing.link_base.offset(existing.size.bytes());
            let new_end = module.link_base.offset(module.size.bytes());
            if module.link_base < existing_end && existing.link_base < new_end {
                return Err(HmError::Config(format!(
                    "module {} overlaps {} in link-time address space",
                    module.name, existing.name
                )));
            }
        }
        self.modules.push(module);
        Ok(self.modules.len() - 1)
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether there are no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// All modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Module by index.
    pub fn module(&self, idx: usize) -> Option<&Module> {
        self.modules.get(idx)
    }

    /// Find a module by name.
    pub fn by_name(&self, name: &str) -> Option<(usize, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
    }

    /// Find the module containing a link-time address.
    pub fn module_of_link_address(&self, addr: Address) -> Option<(usize, &Module)> {
        self.modules
            .iter()
            .enumerate()
            .find(|(_, m)| m.contains_link_address(addr))
    }

    /// Find a function by name anywhere in the image; returns the module
    /// index and the link-time address of the function entry.
    pub fn find_function(&self, function: &str) -> Option<(usize, Address)> {
        for (idx, m) in self.modules.iter().enumerate() {
            if let Some(sym) = m.symbols.by_name(function) {
                return Some((idx, m.link_base.offset(sym.offset)));
            }
        }
        None
    }

    /// Build a small synthetic image resembling an HPC application: a main
    /// executable with numerical kernels, an MPI library, an OpenMP runtime
    /// and libc. Useful for tests and as the default image behind the
    /// workload models.
    pub fn synthetic_hpc_app(app_name: &str, kernel_functions: &[&str]) -> ProgramImage {
        let mut image = ProgramImage::new();

        let mut main_syms = vec![
            Symbol::new("main", 0x0, 0x400, "main.cpp", 12),
            Symbol::new("initialize", 0x400, 0x800, "setup.cpp", 40),
            Symbol::new("allocate_state", 0xc00, 0x400, "setup.cpp", 128),
            Symbol::new("finalize", 0x1000, 0x200, "main.cpp", 210),
        ];
        let mut offset = 0x1400u64;
        for f in kernel_functions {
            main_syms.push(Symbol::new(
                *f,
                offset,
                0x600,
                "kernels.cpp",
                30 + offset / 0x100,
            ));
            offset += 0x600;
        }
        let main_size = ByteSize::from_bytes((offset + 0x1000).next_multiple_of(0x1000));
        image
            .add_module(Module::new(
                app_name,
                Address(0x400000),
                main_size,
                SymbolTable::new(main_syms),
            ))
            .expect("main module does not overlap");

        image
            .add_module(Module::new(
                "libmpi.so",
                Address(0x10000000),
                ByteSize::from_kib(512),
                SymbolTable::new(vec![
                    Symbol::new("MPI_Init", 0x0, 0x200, "init.c", 55),
                    Symbol::new("MPI_Allreduce", 0x200, 0x400, "coll.c", 310),
                    Symbol::new("MPI_Finalize", 0x600, 0x100, "init.c", 300),
                ]),
            ))
            .expect("libmpi does not overlap");

        image
            .add_module(Module::new(
                "libiomp5.so",
                Address(0x20000000),
                ByteSize::from_kib(256),
                SymbolTable::new(vec![
                    Symbol::new("__kmp_fork_call", 0x0, 0x300, "kmp_runtime.cpp", 1500),
                    Symbol::new("kmp_malloc", 0x300, 0x100, "kmp_alloc.cpp", 77),
                    Symbol::new(
                        "__kmp_invoke_microtask",
                        0x400,
                        0x200,
                        "kmp_runtime.cpp",
                        2200,
                    ),
                ]),
            ))
            .expect("libiomp5 does not overlap");

        image
            .add_module(Module::new(
                "libc.so.6",
                Address(0x30000000),
                ByteSize::from_kib(1024),
                SymbolTable::new(vec![
                    Symbol::new("malloc", 0x0, 0x180, "malloc.c", 3051),
                    Symbol::new("calloc", 0x180, 0x100, "malloc.c", 3380),
                    Symbol::new("realloc", 0x280, 0x140, "malloc.c", 3210),
                    Symbol::new("free", 0x3c0, 0x100, "malloc.c", 2960),
                    Symbol::new("posix_memalign", 0x4c0, 0x100, "malloc.c", 3420),
                    Symbol::new("backtrace", 0x5c0, 0x100, "backtrace.c", 40),
                ]),
            ))
            .expect("libc does not overlap");

        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_image_contains_expected_modules() {
        let img = ProgramImage::synthetic_hpc_app("hpcg.x", &["spmv", "symgs", "dot"]);
        assert_eq!(img.len(), 4);
        assert!(img.by_name("libc.so.6").is_some());
        assert!(img.by_name("hpcg.x").is_some());
        assert!(!img.is_empty());
    }

    #[test]
    fn find_function_returns_link_address() {
        let img = ProgramImage::synthetic_hpc_app("app", &["kernel_a"]);
        let (midx, addr) = img.find_function("malloc").unwrap();
        let module = img.module(midx).unwrap();
        assert_eq!(module.name, "libc.so.6");
        assert_eq!(addr, module.link_base);
        assert!(img.find_function("does_not_exist").is_none());
    }

    #[test]
    fn module_of_link_address_finds_owner() {
        let img = ProgramImage::synthetic_hpc_app("app", &["k"]);
        let (_, malloc_addr) = img.find_function("malloc").unwrap();
        let (idx, m) = img.module_of_link_address(malloc_addr).unwrap();
        assert_eq!(m.name, "libc.so.6");
        assert_eq!(img.module(idx).unwrap().name, "libc.so.6");
        assert!(img.module_of_link_address(Address(0x1)).is_none());
    }

    #[test]
    fn overlapping_modules_rejected() {
        let mut img = ProgramImage::new();
        img.add_module(Module::new(
            "a",
            Address(0x1000),
            ByteSize::from_kib(8),
            SymbolTable::new(vec![]),
        ))
        .unwrap();
        let err = img.add_module(Module::new(
            "b",
            Address(0x2000),
            ByteSize::from_kib(8),
            SymbolTable::new(vec![]),
        ));
        assert!(err.is_err());
    }
}
