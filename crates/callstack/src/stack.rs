//! Raw and translated call-stacks, and the allocation-site identity key.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use hmsim_common::Address;

/// One raw frame: a return address as `backtrace()` would report it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Frame {
    /// The runtime return address.
    pub return_address: Address,
}

impl Frame {
    /// Construct a frame.
    pub fn new(return_address: Address) -> Self {
        Frame { return_address }
    }
}

/// A raw call-stack: return addresses ordered innermost (the allocation call)
/// first, exactly as glibc's `backtrace()` fills its buffer.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Build from frames (innermost first).
    pub fn new(frames: Vec<Frame>) -> Self {
        CallStack { frames }
    }

    /// Build from raw addresses (innermost first).
    pub fn from_addresses(addrs: impl IntoIterator<Item = u64>) -> Self {
        CallStack {
            frames: addrs.into_iter().map(|a| Frame::new(Address(a))).collect(),
        }
    }

    /// The frames, innermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Call-stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// A 64-bit hash of the raw addresses — the key of the allocation-site
    /// cache (Algorithm 1 line 5 of the paper), which must be computable
    /// *without* translating the stack.
    pub fn raw_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.frames.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for CallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let addrs: Vec<String> = self
            .frames
            .iter()
            .map(|fr| format!("{}", fr.return_address))
            .collect();
        write!(f, "[{}]", addrs.join(" < "))
    }
}

/// One translated frame: module + symbol + source location.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TranslatedFrame {
    /// Module name the frame belongs to.
    pub module: String,
    /// Function name (or `"??"` if the address had no covering symbol).
    pub function: String,
    /// Offset of the return address within the function.
    pub offset_in_function: u64,
    /// Source file.
    pub source_file: String,
    /// Source line.
    pub line: u64,
}

/// A translated call-stack (innermost first), suitable for matching against
/// the advisor's human-readable report regardless of ASLR.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct TranslatedCallStack {
    frames: Vec<TranslatedFrame>,
}

impl TranslatedCallStack {
    /// Build from translated frames (innermost first).
    pub fn new(frames: Vec<TranslatedFrame>) -> Self {
        TranslatedCallStack { frames }
    }

    /// The frames, innermost first.
    pub fn frames(&self) -> &[TranslatedFrame] {
        &self.frames
    }

    /// Depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether there are no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The stable site key for this stack.
    pub fn site_key(&self) -> SiteKey {
        SiteKey::from_frames(
            self.frames
                .iter()
                .map(|f| format!("{}!{}+0x{:x}", f.module, f.function, f.offset_in_function)),
        )
    }
}

impl fmt::Display for TranslatedCallStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fr) in self.frames.iter().enumerate() {
            if i > 0 {
                write!(f, " < ")?;
            }
            write!(f, "{}({}:{})", fr.function, fr.source_file, fr.line)?;
        }
        Ok(())
    }
}

/// Stable identity of an allocation site, independent of ASLR and of the
/// process instance: derived from the translated frames. The advisor's
/// report, the profiler's object naming and `auto-hbwmalloc`'s matching all
/// speak in terms of `SiteKey`s.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteKey(String);

impl SiteKey {
    /// Build from an iterator of per-frame descriptions (innermost first).
    pub fn from_frames<S: AsRef<str>>(frames: impl IntoIterator<Item = S>) -> Self {
        let joined = frames
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect::<Vec<_>>()
            .join("|");
        SiteKey(joined)
    }

    /// Build directly from a textual key (used when parsing reports).
    pub fn from_text(text: impl Into<String>) -> Self {
        SiteKey(text.into())
    }

    /// The textual form written into reports and traces.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A short human-readable label: the innermost non-allocator frame.
    pub fn short_label(&self) -> String {
        self.0
            .split('|')
            .map(|frame| frame.to_string())
            .find(|frame| {
                !frame.contains("!malloc")
                    && !frame.contains("!calloc")
                    && !frame.contains("!realloc")
                    && !frame.contains("!posix_memalign")
                    && !frame.contains("!kmp_malloc")
            })
            .unwrap_or_else(|| self.0.clone())
    }
}

impl fmt::Debug for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteKey({})", self.0)
    }
}

impl fmt::Display for SiteKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_hash_distinguishes_stacks() {
        let a = CallStack::from_addresses([0x1000, 0x2000, 0x3000]);
        let b = CallStack::from_addresses([0x1000, 0x2000, 0x3001]);
        let c = CallStack::from_addresses([0x1000, 0x2000, 0x3000]);
        assert_ne!(a.raw_hash(), b.raw_hash());
        assert_eq!(a.raw_hash(), c.raw_hash());
        assert_eq!(a.depth(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_formats() {
        let a = CallStack::from_addresses([0x1000, 0x2000]);
        let s = format!("{a}");
        assert!(s.contains("0x000000001000"));
        assert!(s.contains(" < "));
    }

    fn tframe(module: &str, function: &str, off: u64) -> TranslatedFrame {
        TranslatedFrame {
            module: module.to_string(),
            function: function.to_string(),
            offset_in_function: off,
            source_file: "x.c".to_string(),
            line: 1,
        }
    }

    #[test]
    fn site_key_is_stable_and_aslr_independent() {
        let t1 = TranslatedCallStack::new(vec![
            tframe("libc.so.6", "malloc", 0x10),
            tframe("app", "allocate_state", 0x40),
            tframe("app", "main", 0x8),
        ]);
        let t2 = t1.clone();
        assert_eq!(t1.site_key(), t2.site_key());
        assert!(t1.site_key().as_str().contains("allocate_state"));
    }

    #[test]
    fn short_label_skips_allocator_frames() {
        let t = TranslatedCallStack::new(vec![
            tframe("libc.so.6", "malloc", 0x10),
            tframe("app", "allocate_state", 0x40),
        ]);
        let label = t.site_key().short_label();
        assert!(label.contains("allocate_state"), "label was {label}");
    }

    #[test]
    fn site_key_round_trips_text() {
        let k = SiteKey::from_frames(["a!f+0x1", "a!g+0x2"]);
        let k2 = SiteKey::from_text(k.as_str().to_string());
        assert_eq!(k, k2);
        assert_eq!(format!("{k}"), "a!f+0x1|a!g+0x2");
    }
}
