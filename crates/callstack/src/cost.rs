//! Calibrated cost model for call-stack unwinding and translation.
//!
//! Figure 3 of the paper measures, on a Xeon Phi 7250 with glibc 2.17 and
//! binutils 2.23, the per-`malloc` overhead of (a) unwinding the call-stack
//! and (b) translating its frames from runtime to link-time form. Unwinding
//! has a larger fixed cost; translation has a larger per-frame cost; the two
//! curves cross at a depth of about six frames.
//!
//! The simulator charges these costs inside `auto-hbwmalloc` whenever an
//! allocation must be inspected, which is how the interposition overhead can
//! eat into the MCDRAM benefit for allocation-heavy applications (LULESH).

use hmsim_common::Nanos;

/// Linear-in-depth cost model for the two call-stack operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CallstackCostModel {
    /// Fixed cost of one unwind, in microseconds.
    pub unwind_base_us: f64,
    /// Additional unwind cost per frame, in microseconds.
    pub unwind_per_frame_us: f64,
    /// Fixed cost of one translation, in microseconds.
    pub translate_base_us: f64,
    /// Additional translation cost per frame, in microseconds.
    pub translate_per_frame_us: f64,
}

impl Default for CallstackCostModel {
    fn default() -> Self {
        Self::knl_7250()
    }
}

impl CallstackCostModel {
    /// Calibration matching Figure 3: unwind starts higher (~7 µs at depth 1)
    /// with a shallow slope; translation starts lower (~3 µs) but grows ~2.6
    /// µs per frame, overtaking unwind at a depth of about six.
    pub fn knl_7250() -> Self {
        CallstackCostModel {
            unwind_base_us: 6.0,
            unwind_per_frame_us: 1.15,
            translate_base_us: 1.0,
            translate_per_frame_us: 2.05,
        }
    }

    /// Cost of unwinding a stack of `depth` frames.
    pub fn unwind_cost(&self, depth: usize) -> Nanos {
        Nanos::from_micros(self.unwind_base_us + self.unwind_per_frame_us * depth as f64)
    }

    /// Cost of translating a stack of `depth` frames.
    pub fn translate_cost(&self, depth: usize) -> Nanos {
        Nanos::from_micros(self.translate_base_us + self.translate_per_frame_us * depth as f64)
    }

    /// Combined cost of a full inspection (unwind + translate).
    pub fn full_cost(&self, depth: usize) -> Nanos {
        self.unwind_cost(depth) + self.translate_cost(depth)
    }

    /// Cost of a cache-hit inspection: only the unwind plus a hash lookup.
    pub fn cached_cost(&self, depth: usize) -> Nanos {
        self.unwind_cost(depth) + Nanos::from_micros(0.15)
    }

    /// The smallest depth at which translation becomes more expensive than
    /// unwinding (≈ 6 for the paper's calibration). Returns `None` if the
    /// curves never cross within 128 frames.
    pub fn crossover_depth(&self) -> Option<usize> {
        (1..=128).find(|d| self.translate_cost(*d) > self.unwind_cost(*d))
    }

    /// The data series of Figure 3: (depth, unwind µs, translate µs) for
    /// depths 1 through `max_depth`.
    pub fn figure3_series(&self, max_depth: usize) -> Vec<(usize, f64, f64)> {
        (1..=max_depth)
            .map(|d| {
                (
                    d,
                    self.unwind_cost(d).micros(),
                    self.translate_cost(d).micros(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_grow_with_depth() {
        let m = CallstackCostModel::knl_7250();
        assert!(m.unwind_cost(2) > m.unwind_cost(1));
        assert!(m.translate_cost(9) > m.translate_cost(3));
        assert!(m.full_cost(4) > m.unwind_cost(4));
        assert!(m.cached_cost(4) < m.full_cost(4));
    }

    #[test]
    fn shallow_stacks_unwind_dominates_deep_stacks_translate_dominates() {
        let m = CallstackCostModel::knl_7250();
        assert!(m.unwind_cost(1) > m.translate_cost(1));
        assert!(m.translate_cost(9) > m.unwind_cost(9));
    }

    #[test]
    fn crossover_is_around_six_frames() {
        let m = CallstackCostModel::knl_7250();
        let d = m.crossover_depth().unwrap();
        assert!((5..=7).contains(&d), "crossover at {d}");
    }

    #[test]
    fn figure3_series_has_expected_shape() {
        let m = CallstackCostModel::knl_7250();
        let series = m.figure3_series(9);
        assert_eq!(series.len(), 9);
        assert_eq!(series[0].0, 1);
        // Both curves monotonically increasing.
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 > w[0].2);
        }
        // Magnitudes in the same ballpark as the paper (single to tens of µs).
        assert!(series[8].1 < 60.0 && series[8].2 < 60.0);
        assert!(series[0].1 > 1.0);
    }

    #[test]
    fn crossover_none_when_translate_always_cheaper() {
        let m = CallstackCostModel {
            unwind_base_us: 10.0,
            unwind_per_frame_us: 5.0,
            translate_base_us: 0.1,
            translate_per_frame_us: 0.1,
        };
        assert_eq!(m.crossover_depth(), None);
    }
}
