//! # hmsim-callstack
//!
//! Call-stack machinery for the hybrid-memory placement framework.
//!
//! The paper identifies dynamically-allocated data objects *by the call-stack
//! of their allocation site* (captured with glibc's `backtrace()` and
//! translated to symbols with binutils). Because ASLR randomises where
//! libraries land in the address space, the `auto-hbwmalloc` interposition
//! library must first *unwind* the raw return addresses and then *translate*
//! them back to module-relative symbols before it can match them against the
//! advisor's report; the cost of those two steps as a function of call-stack
//! depth is the paper's Figure 3.
//!
//! This crate simulates that machinery end to end:
//!
//! * [`module`] / [`symbols`] — a program image made of modules, each with a
//!   symbol table mapping offsets to function names and source lines;
//! * [`aslr`] — per-module load slides, randomised per process;
//! * [`stack`] — raw (runtime-address) and translated call-stacks, and the
//!   stable [`stack::SiteKey`] used to key placement decisions;
//! * [`unwind`] / [`translate`] — the unwinder and translator, performing
//!   real work proportional to call-stack depth plus calibrated cost models
//!   used by the simulator's time accounting;
//! * [`site_cache`] — the small cache of already-decided allocation sites
//!   used by Algorithm 1 of the paper;
//! * [`cost`] — the calibrated Figure-3 cost model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aslr;
pub mod cost;
pub mod module;
pub mod site_cache;
pub mod stack;
pub mod symbols;
pub mod translate;
pub mod unwind;

pub use aslr::AslrLayout;
pub use cost::CallstackCostModel;
pub use module::{Module, ProgramImage};
pub use site_cache::{SiteCache, SiteDecision};
pub use stack::{CallStack, Frame, SiteKey, TranslatedCallStack, TranslatedFrame};
pub use symbols::{Symbol, SymbolTable};
pub use translate::Translator;
pub use unwind::Unwinder;
