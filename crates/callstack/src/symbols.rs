//! Per-module symbol tables.
//!
//! The translator resolves module-relative offsets to function names and
//! source locations the same way the paper uses binutils (`addr2line`-style
//! lookups) on top of the debug information generated with `-g`.

use std::collections::HashMap;

/// One function symbol with debug information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Function name (already demangled).
    pub name: String,
    /// Offset of the function entry relative to the module base.
    pub offset: u64,
    /// Size of the function body in bytes.
    pub size: u64,
    /// Source file the function is defined in.
    pub source_file: String,
    /// Line number of the function definition.
    pub line: u64,
}

impl Symbol {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        offset: u64,
        size: u64,
        source_file: impl Into<String>,
        line: u64,
    ) -> Self {
        Symbol {
            name: name.into(),
            offset,
            size,
            source_file: source_file.into(),
            line,
        }
    }

    /// Whether a module-relative offset falls inside this function.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.offset && offset < self.offset + self.size
    }
}

/// A module's symbol table, sorted by offset for binary search.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    by_name: HashMap<String, usize>,
}

impl SymbolTable {
    /// Build a table from symbols (sorted internally by offset).
    pub fn new(mut symbols: Vec<Symbol>) -> Self {
        symbols.sort_by_key(|s| s.offset);
        let by_name = symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        SymbolTable { symbols, by_name }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// All symbols in offset order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Look up the symbol covering a module-relative offset (binary search).
    pub fn by_offset(&self, offset: u64) -> Option<&Symbol> {
        let idx = self.symbols.partition_point(|s| s.offset <= offset);
        if idx == 0 {
            return None;
        }
        let candidate = &self.symbols[idx - 1];
        candidate.contains(offset).then_some(candidate)
    }

    /// Look up a symbol by function name.
    pub fn by_name(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name).map(|i| &self.symbols[*i])
    }

    /// Approximate source line for an offset: the function's definition line
    /// plus one line per 16 bytes of code, mimicking how debug line tables
    /// interpolate within a function.
    pub fn source_line_of(&self, offset: u64) -> Option<(String, u64)> {
        self.by_offset(offset)
            .map(|s| (s.source_file.clone(), s.line + (offset - s.offset) / 16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new(vec![
            Symbol::new("beta", 0x100, 0x80, "b.c", 20),
            Symbol::new("alpha", 0x0, 0x100, "a.c", 10),
            Symbol::new("gamma", 0x200, 0x40, "c.c", 5),
        ])
    }

    #[test]
    fn lookup_by_offset_finds_covering_symbol() {
        let t = table();
        assert_eq!(t.by_offset(0x0).unwrap().name, "alpha");
        assert_eq!(t.by_offset(0xff).unwrap().name, "alpha");
        assert_eq!(t.by_offset(0x100).unwrap().name, "beta");
        assert_eq!(t.by_offset(0x17f).unwrap().name, "beta");
        // Gap between beta (ends 0x180) and gamma (starts 0x200).
        assert!(t.by_offset(0x190).is_none());
        assert_eq!(t.by_offset(0x210).unwrap().name, "gamma");
        assert!(t.by_offset(0x400).is_none());
    }

    #[test]
    fn lookup_by_name() {
        let t = table();
        assert_eq!(t.by_name("gamma").unwrap().offset, 0x200);
        assert!(t.by_name("delta").is_none());
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn source_line_interpolates_within_function() {
        let t = table();
        let (file, line) = t.source_line_of(0x20).unwrap();
        assert_eq!(file, "a.c");
        assert_eq!(line, 10 + 2);
        assert!(t.source_line_of(0x190).is_none());
    }

    #[test]
    fn symbols_are_sorted_after_construction() {
        let t = table();
        let offsets: Vec<u64> = t.symbols().iter().map(|s| s.offset).collect();
        assert_eq!(offsets, vec![0x0, 0x100, 0x200]);
    }
}
