//! The allocation-site decision cache of Algorithm 1.
//!
//! `auto-hbwmalloc` keeps "a small cache indexed by the unwound addresses
//! that keep\[s\] whether an allocation invoked in that position shall or shall
//! not be allocated using the alternate allocator" (paper §III, step 4).
//! Hitting this cache skips the expensive translation step entirely.

use crate::stack::CallStack;
use std::collections::HashMap;

/// The cached decision for one raw call-stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteDecision {
    /// Whether the site was selected by the advisor (should go to the
    /// alternate, fast-memory allocator).
    pub promote: bool,
    /// Index of the allocator object to use when `promote` is true.
    pub allocator: usize,
}

/// A bounded cache mapping raw call-stack hashes to decisions.
#[derive(Clone, Debug)]
pub struct SiteCache {
    map: HashMap<u64, SiteDecision>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl SiteCache {
    /// Create a cache bounded to `capacity` entries (0 means unbounded).
    pub fn new(capacity: usize) -> Self {
        SiteCache {
            map: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up the decision for a raw call-stack, updating hit/miss counters.
    pub fn lookup(&mut self, stack: &CallStack) -> Option<SiteDecision> {
        match self.map.get(&stack.raw_hash()) {
            Some(d) => {
                self.hits += 1;
                Some(*d)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a decision for a raw call-stack (Algorithm 1 line 9). When the
    /// cache is full the insertion is dropped — allocation sites are few and
    /// stable, so simple is fine; the capacity exists only to bound memory.
    pub fn annotate(&mut self, stack: &CallStack, decision: SiteDecision) {
        if self.capacity > 0
            && self.map.len() >= self.capacity
            && !self.map.contains_key(&stack.raw_hash())
        {
            return;
        }
        self.map.insert(stack.raw_hash(), decision);
    }

    /// Number of cached sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clear all entries and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

impl Default for SiteCache {
    fn default() -> Self {
        // Applications have at most a few hundred allocation sites (Table I
        // reports 6–312 allocation statements); 4096 entries is generous.
        SiteCache::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(tag: u64) -> CallStack {
        CallStack::from_addresses([0x1000 + tag, 0x2000, 0x3000])
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = SiteCache::default();
        let s = stack(1);
        assert_eq!(c.lookup(&s), None);
        c.annotate(
            &s,
            SiteDecision {
                promote: true,
                allocator: 0,
            },
        );
        let d = c.lookup(&s).unwrap();
        assert!(d.promote);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_insertions() {
        let mut c = SiteCache::new(2);
        for i in 0..5 {
            c.annotate(
                &stack(i),
                SiteDecision {
                    promote: false,
                    allocator: 0,
                },
            );
        }
        assert_eq!(c.len(), 2);
        // Existing entries can still be refreshed when at capacity.
        c.annotate(
            &stack(0),
            SiteDecision {
                promote: true,
                allocator: 1,
            },
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&stack(0)).unwrap().allocator, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = SiteCache::default();
        c.annotate(
            &stack(1),
            SiteDecision {
                promote: true,
                allocator: 0,
            },
        );
        c.lookup(&stack(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn distinct_stacks_do_not_collide() {
        let mut c = SiteCache::default();
        c.annotate(
            &stack(1),
            SiteDecision {
                promote: true,
                allocator: 0,
            },
        );
        assert_eq!(c.lookup(&stack(2)), None);
    }
}
