//! Address Space Layout Randomisation.
//!
//! ASLR is the reason the interposition library cannot simply compare raw
//! return addresses against the advisor's report: every process run loads
//! shared libraries at different addresses, so raw call-stacks must be
//! translated back to module-relative (link-time) form at run time — the
//! expensive step measured in Figure 3 of the paper.

use crate::module::ProgramImage;
use hmsim_common::{Address, DetRng};

/// Per-module load slides for one process instance.
#[derive(Clone, Debug)]
pub struct AslrLayout {
    /// Slide applied to each module, indexed like the image's modules.
    slides: Vec<u64>,
}

impl AslrLayout {
    /// No randomisation: runtime addresses equal link-time addresses.
    pub fn identity(image: &ProgramImage) -> Self {
        AslrLayout {
            slides: vec![0; image.len()],
        }
    }

    /// Randomised layout: each module gets an independent, page-aligned slide
    /// in the 47-bit canonical user address range, as Linux does for PIE
    /// executables and shared objects.
    pub fn randomized(image: &ProgramImage, rng: &mut DetRng) -> Self {
        let slides = (0..image.len())
            .map(|_| {
                // 28 random bits of entropy, page aligned — enough to make
                // collisions with link addresses implausible without
                // overflowing the simulated address space.
                rng.uniform_range(1, 1 << 28) << 12
            })
            .collect();
        AslrLayout { slides }
    }

    /// The slide of module `idx`.
    pub fn slide(&self, idx: usize) -> u64 {
        self.slides.get(idx).copied().unwrap_or(0)
    }

    /// Convert a link-time address inside module `idx` to its runtime
    /// address under this layout.
    pub fn to_runtime(&self, idx: usize, link_addr: Address) -> Address {
        Address(link_addr.value().wrapping_add(self.slide(idx)))
    }

    /// Convert a runtime address back to link-time form, given the module it
    /// belongs to.
    pub fn to_link(&self, idx: usize, runtime_addr: Address) -> Address {
        Address(runtime_addr.value().wrapping_sub(self.slide(idx)))
    }

    /// Find which module a runtime address belongs to by reversing every
    /// slide and checking module bounds — this linear search over modules is
    /// part of what makes translation more expensive than unwinding.
    pub fn module_of_runtime(&self, image: &ProgramImage, addr: Address) -> Option<usize> {
        (0..image.len()).find(|idx| {
            let link = self.to_link(*idx, addr);
            image
                .module(*idx)
                .map(|m| m.contains_link_address(link))
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::DetRng;

    fn image() -> ProgramImage {
        ProgramImage::synthetic_hpc_app("app.x", &["kernel"])
    }

    #[test]
    fn identity_layout_is_a_noop() {
        let img = image();
        let aslr = AslrLayout::identity(&img);
        let a = Address(0x400123);
        assert_eq!(aslr.to_runtime(0, a), a);
        assert_eq!(aslr.to_link(0, a), a);
        assert_eq!(aslr.slide(0), 0);
    }

    #[test]
    fn randomized_layout_round_trips() {
        let img = image();
        let mut rng = DetRng::new(42);
        let aslr = AslrLayout::randomized(&img, &mut rng);
        for idx in 0..img.len() {
            let link = img.module(idx).unwrap().link_base.offset(0x40);
            let rt = aslr.to_runtime(idx, link);
            assert_eq!(aslr.to_link(idx, rt), link);
            if idx > 0 {
                // Distinct modules almost surely get distinct slides.
                assert_ne!(aslr.slide(idx), aslr.slide(idx - 1));
            }
        }
    }

    #[test]
    fn randomized_layout_is_deterministic_per_seed() {
        let img = image();
        let a = AslrLayout::randomized(&img, &mut DetRng::new(7));
        let b = AslrLayout::randomized(&img, &mut DetRng::new(7));
        let c = AslrLayout::randomized(&img, &mut DetRng::new(8));
        assert_eq!(a.slides, b.slides);
        assert_ne!(a.slides, c.slides);
    }

    #[test]
    fn module_of_runtime_reverses_slides() {
        let img = image();
        let mut rng = DetRng::new(3);
        let aslr = AslrLayout::randomized(&img, &mut rng);
        let (libc_idx, libc) = img.by_name("libc.so.6").unwrap();
        let malloc = libc.symbols.by_name("malloc").unwrap();
        let runtime = aslr.to_runtime(libc_idx, libc.link_base.offset(malloc.offset + 8));
        assert_eq!(aslr.module_of_runtime(&img, runtime), Some(libc_idx));
        // An address far away from every module maps to nothing.
        assert_eq!(
            aslr.module_of_runtime(&img, Address(0xffff_ffff_f000)),
            None
        );
    }

    #[test]
    fn slides_are_page_aligned() {
        let img = image();
        let aslr = AslrLayout::randomized(&img, &mut DetRng::new(5));
        for i in 0..img.len() {
            assert_eq!(aslr.slide(i) % 4096, 0);
            assert!(aslr.slide(i) > 0);
        }
    }
}
