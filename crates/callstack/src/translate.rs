//! Call-stack translation (the binutils/`addr2line` analogue).
//!
//! Translation converts the raw, ASLR-shifted return addresses produced by
//! the unwinder back into `(module, function, offset, source line)` form so
//! they can be matched against the advisor's report. Each frame requires
//! finding the owning module (undoing its slide) and a symbol-table lookup —
//! strictly more work per frame than the unwind itself, which is why the
//! translation curve in Figure 3 grows faster and overtakes unwinding at
//! depth ≈ 6.

use crate::aslr::AslrLayout;
use crate::cost::CallstackCostModel;
use crate::module::ProgramImage;
use crate::stack::{CallStack, TranslatedCallStack, TranslatedFrame};
use hmsim_common::Nanos;

/// Translator bound to a process image and its ASLR layout.
#[derive(Clone, Debug)]
pub struct Translator {
    image: ProgramImage,
    aslr: AslrLayout,
    cost_model: CallstackCostModel,
}

impl Translator {
    /// Create a translator.
    pub fn new(image: ProgramImage, aslr: AslrLayout) -> Self {
        Translator {
            image,
            aslr,
            cost_model: CallstackCostModel::default(),
        }
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, model: CallstackCostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CallstackCostModel {
        &self.cost_model
    }

    /// Translate one raw call-stack. Frames whose address cannot be resolved
    /// are kept with `"??"` placeholders (matching `addr2line` behaviour)
    /// rather than dropped, so depths always match.
    ///
    /// Returns the translated stack and the modelled translation cost.
    pub fn translate(&self, stack: &CallStack) -> (TranslatedCallStack, Nanos) {
        let frames = stack
            .frames()
            .iter()
            .map(|frame| {
                let addr = frame.return_address;
                match self.aslr.module_of_runtime(&self.image, addr) {
                    Some(idx) => {
                        let module = self.image.module(idx).expect("index from lookup");
                        let link = self.aslr.to_link(idx, addr);
                        let offset = link - module.link_base;
                        match module.symbols.by_offset(offset) {
                            Some(sym) => TranslatedFrame {
                                module: module.name.clone(),
                                function: sym.name.clone(),
                                offset_in_function: offset - sym.offset,
                                source_file: sym.source_file.clone(),
                                line: sym.line + (offset - sym.offset) / 16,
                            },
                            None => TranslatedFrame {
                                module: module.name.clone(),
                                function: "??".to_string(),
                                offset_in_function: offset,
                                source_file: "??".to_string(),
                                line: 0,
                            },
                        }
                    }
                    None => TranslatedFrame {
                        module: "??".to_string(),
                        function: "??".to_string(),
                        offset_in_function: addr.value(),
                        source_file: "??".to_string(),
                        line: 0,
                    },
                }
            })
            .collect();
        let translated = TranslatedCallStack::new(frames);
        let cost = self.cost_model.translate_cost(stack.depth());
        (translated, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unwind::Unwinder;
    use hmsim_common::{Address, DetRng};

    fn setup(seed: u64) -> (Unwinder, Translator) {
        let image = ProgramImage::synthetic_hpc_app("app.x", &["spmv", "waxpby"]);
        let aslr = AslrLayout::randomized(&image, &mut DetRng::new(seed));
        (
            Unwinder::new(image.clone(), aslr.clone()),
            Translator::new(image, aslr),
        )
    }

    #[test]
    fn translation_recovers_function_names() {
        let (u, t) = setup(1);
        let (raw, _) = u.unwind(&["main", "allocate_state", "malloc"]).unwrap();
        let (translated, cost) = t.translate(&raw);
        assert_eq!(translated.depth(), 3);
        assert!(cost.micros() > 0.0);
        let names: Vec<&str> = translated
            .frames()
            .iter()
            .map(|f| f.function.as_str())
            .collect();
        assert_eq!(names, vec!["malloc", "allocate_state", "main"]);
        assert_eq!(translated.frames()[0].module, "libc.so.6");
        assert_eq!(translated.frames()[1].module, "app.x");
    }

    #[test]
    fn site_keys_are_stable_across_aslr_layouts() {
        let (u1, t1) = setup(100);
        let (u2, t2) = setup(200);
        let site = ["main", "initialize", "allocate_state", "malloc"];
        let (raw1, _) = u1.unwind(&site).unwrap();
        let (raw2, _) = u2.unwind(&site).unwrap();
        assert_ne!(
            raw1.raw_hash(),
            raw2.raw_hash(),
            "raw stacks differ under ASLR"
        );
        let (tr1, _) = t1.translate(&raw1);
        let (tr2, _) = t2.translate(&raw2);
        assert_eq!(
            tr1.site_key(),
            tr2.site_key(),
            "translated sites must match"
        );
    }

    #[test]
    fn unresolvable_addresses_become_unknown_frames() {
        let (_, t) = setup(3);
        let raw = CallStack::new(vec![crate::stack::Frame::new(Address(0x7fff_dead_0000))]);
        let (tr, _) = t.translate(&raw);
        assert_eq!(tr.depth(), 1);
        assert_eq!(tr.frames()[0].function, "??");
        assert_eq!(tr.frames()[0].module, "??");
    }

    #[test]
    fn translation_cost_exceeds_unwind_cost_for_deep_stacks() {
        let (u, t) = setup(4);
        let deep = [
            "main",
            "initialize",
            "allocate_state",
            "spmv",
            "waxpby",
            "MPI_Allreduce",
            "__kmp_fork_call",
            "kmp_malloc",
            "malloc",
        ];
        let (raw, unwind_cost) = u.unwind(&deep).unwrap();
        let (_, translate_cost) = t.translate(&raw);
        assert!(translate_cost > unwind_cost);
        // And the opposite for a depth-1 stack (Figure 3 crossover).
        let (raw1, unwind1) = u.unwind(&["malloc"]).unwrap();
        let (_, translate1) = t.translate(&raw1);
        assert!(unwind1 > translate1);
    }
}
