//! Call-stack unwinding.
//!
//! In the real framework, `auto-hbwmalloc` calls glibc's `backtrace()` inside
//! every intercepted allocation. In the simulation, the "truth" about which
//! functions are on the stack comes from the workload model as a list of
//! function names (outermost → innermost caller); the unwinder turns that
//! into the raw, ASLR-shifted return addresses the interception library
//! would actually see, and does work proportional to the depth (so that
//! Criterion benchmarks of the unwinder reproduce the Figure-3 scaling).

use crate::aslr::AslrLayout;
use crate::cost::CallstackCostModel;
use crate::module::ProgramImage;
use crate::stack::{CallStack, Frame};
use hmsim_common::{HmError, HmResult, Nanos};

/// A simulated frame-pointer chain walker.
#[derive(Clone, Debug)]
pub struct Unwinder {
    image: ProgramImage,
    aslr: AslrLayout,
    cost_model: CallstackCostModel,
}

impl Unwinder {
    /// Create an unwinder for a process image under an ASLR layout.
    pub fn new(image: ProgramImage, aslr: AslrLayout) -> Self {
        Unwinder {
            image,
            aslr,
            cost_model: CallstackCostModel::default(),
        }
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, model: CallstackCostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The program image.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// The ASLR layout in effect.
    pub fn aslr(&self) -> &AslrLayout {
        &self.aslr
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CallstackCostModel {
        &self.cost_model
    }

    /// Produce the raw call-stack for an allocation whose logical stack is
    /// `functions` (ordered outermost caller first, allocation call last —
    /// the way a person writes it). The returned [`CallStack`] is innermost
    /// first, as `backtrace()` reports it, with each return address pointing
    /// a few bytes *into* the corresponding function body under the current
    /// ASLR slides.
    ///
    /// Also returns the modelled unwind cost for this depth.
    pub fn unwind(&self, functions: &[&str]) -> HmResult<(CallStack, Nanos)> {
        if functions.is_empty() {
            return Err(HmError::InvalidState(
                "cannot unwind an empty logical call-stack".into(),
            ));
        }
        let mut frames = Vec::with_capacity(functions.len());
        // Innermost first.
        for f in functions.iter().rev() {
            let (module_idx, link_entry) = self
                .image
                .find_function(f)
                .ok_or_else(|| HmError::NotFound(format!("function {f} in program image")))?;
            // Return addresses point just after the call instruction; model
            // that as a small, deterministic offset into the caller.
            let link_ret = link_entry.offset(0x1d);
            frames.push(Frame::new(self.aslr.to_runtime(module_idx, link_ret)));
        }
        let stack = CallStack::new(frames);
        let cost = self.cost_model.unwind_cost(stack.depth());
        Ok((stack, cost))
    }

    /// A pure work-loop walking `depth` synthetic frames, used by the
    /// Criterion benchmark for Figure 3 so the measured time scales with
    /// depth the way a frame-pointer walk does. Returns a checksum so the
    /// optimiser cannot delete the walk.
    pub fn walk_synthetic_frames(&self, depth: usize) -> u64 {
        // Build a tiny linked structure on the fly and chase it; each hop is
        // one simulated frame.
        let mut chain: Vec<u64> = Vec::with_capacity(depth.max(1));
        let mut acc = 0x9e3779b97f4a7c15u64;
        for i in 0..depth.max(1) {
            acc = acc.rotate_left(13) ^ (i as u64).wrapping_mul(0x2545F4914F6CDD1D);
            chain.push(acc);
        }
        let mut checksum = 0u64;
        let mut idx = 0usize;
        for _ in 0..depth.max(1) {
            checksum = checksum.wrapping_add(chain[idx]);
            idx = (chain[idx] as usize) % chain.len();
        }
        checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::DetRng;

    fn unwinder(seed: u64) -> Unwinder {
        let image = ProgramImage::synthetic_hpc_app("app.x", &["spmv", "waxpby"]);
        let aslr = AslrLayout::randomized(&image, &mut DetRng::new(seed));
        Unwinder::new(image, aslr)
    }

    #[test]
    fn unwind_produces_innermost_first_frames() {
        let u = unwinder(1);
        let (stack, cost) = u.unwind(&["main", "allocate_state", "malloc"]).unwrap();
        assert_eq!(stack.depth(), 3);
        assert!(cost.micros() > 0.0);
        // Innermost frame is malloc (libc): resolve it back through ASLR.
        let malloc_frame = stack.frames()[0].return_address;
        let idx = u.aslr().module_of_runtime(u.image(), malloc_frame).unwrap();
        assert_eq!(u.image().module(idx).unwrap().name, "libc.so.6");
        let main_frame = stack.frames()[2].return_address;
        let idx = u.aslr().module_of_runtime(u.image(), main_frame).unwrap();
        assert_eq!(u.image().module(idx).unwrap().name, "app.x");
    }

    #[test]
    fn unwinding_same_site_is_deterministic() {
        let u = unwinder(2);
        let (a, _) = u.unwind(&["main", "initialize", "malloc"]).unwrap();
        let (b, _) = u.unwind(&["main", "initialize", "malloc"]).unwrap();
        assert_eq!(a.raw_hash(), b.raw_hash());
        let (c, _) = u.unwind(&["main", "allocate_state", "malloc"]).unwrap();
        assert_ne!(a.raw_hash(), c.raw_hash());
    }

    #[test]
    fn different_aslr_layouts_give_different_raw_stacks() {
        let u1 = unwinder(10);
        let u2 = unwinder(11);
        let (a, _) = u1.unwind(&["main", "malloc"]).unwrap();
        let (b, _) = u2.unwind(&["main", "malloc"]).unwrap();
        assert_ne!(a.raw_hash(), b.raw_hash());
    }

    #[test]
    fn unknown_function_is_an_error() {
        let u = unwinder(3);
        assert!(u.unwind(&["main", "no_such_fn", "malloc"]).is_err());
        assert!(u.unwind(&[]).is_err());
    }

    #[test]
    fn cost_scales_with_depth() {
        let u = unwinder(4);
        let (_, shallow) = u.unwind(&["malloc"]).unwrap();
        let (_, deep) = u
            .unwind(&["main", "initialize", "allocate_state", "spmv", "malloc"])
            .unwrap();
        assert!(deep > shallow);
    }

    #[test]
    fn synthetic_walk_is_deterministic_and_nonzero() {
        let u = unwinder(5);
        assert_eq!(u.walk_synthetic_frames(8), u.walk_synthetic_frames(8));
        assert_ne!(u.walk_synthetic_frames(8), 0);
    }
}
