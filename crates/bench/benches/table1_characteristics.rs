//! Table I: per-application characteristics measured by the profiler
//! (allocation rates, memory high-water marks, monitoring overhead, PEBS
//! sample counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmem_core::figures::{table1, table1_row};
use hmem_core::report::render_table1;
use hmsim_apps::app_by_name;

fn bench_table1(c: &mut Criterion) {
    let rows = table1(Some(5)).expect("table 1 generation succeeds");
    println!("\n=== Table I: application characteristics (measured) ===");
    println!("{}", render_table1(&rows));

    let mut group = c.benchmark_group("table1_profiled_run");
    group.sample_size(10);
    for app in ["miniFE", "SNAP"] {
        let spec = app_by_name(app).unwrap();
        group.bench_with_input(BenchmarkId::new("profile", app), &spec, |b, spec| {
            b.iter(|| table1_row(spec, Some(3)).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
