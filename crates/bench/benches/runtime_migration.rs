//! Online migration runtime: epoch overhead and online-vs-static placement.
//!
//! Three questions, answered with numbers written to `BENCH_runtime.json`:
//!
//! 1. **What does the epoch loop cost?** The same access stream is driven
//!    through the raw `TraceEngine::run_stream` fast path and through the
//!    `OnlineRuntime` with migrations disabled (identical simulation results,
//!    asserted bitwise before timing); the throughput ratio is the pure
//!    observation overhead of the epoch loop + PEBS sampler.
//! 2. **Does migrating online beat the best static placement where it
//!    should?** For every registered phase-shifting workload the simulated
//!    time under the online runtime is compared against the better of
//!    DDR-only and the offline profile → advise → re-run placement.
//! 3. **Does it stay out of the way where it can't help?** Stationary
//!    workloads must land within 2 % of the best static placement.

use auto_hbwmalloc::ApproachKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmsim_apps::{phased_workloads, PhasedWorkload};
use hmsim_common::ByteSize;
use hmsim_machine::TraceEngine;
use hmsim_runtime::harness::{best_static, loaded_machine, provision, run_online};
use hmsim_runtime::{OnlineConfig, OnlineRuntime};
use std::time::Instant;

struct WorkloadRow {
    name: &'static str,
    stationary: bool,
    online_ms: f64,
    static_ms: f64,
    static_label: String,
    speedup: f64,
    migrations: u64,
    bytes_moved_kib: u64,
    epochs: u64,
}

fn measure_aps<F: FnMut() -> u64>(accesses: u64, reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let misses = f();
        let dt = t0.elapsed().as_secs_f64();
        assert!(misses > 0, "workload produced no LLC misses");
        best = best.min(dt);
    }
    accesses as f64 / best
}

/// The epoch loop's observation overhead on the steady triad: raw streaming
/// engine vs disabled online runtime over the identical stream.
fn epoch_overhead_percent(workload: &PhasedWorkload, reps: usize) -> f64 {
    let machine = loaded_machine();
    let budget = workload.hot_set_size();
    // Equivalence gate before any timing.
    {
        let p = provision(workload, &machine, budget).unwrap();
        let mut engine = TraceEngine::new(&machine);
        engine.run_stream(workload.stream(&p.ranges), p.heap.page_table());
        let mut q = provision(workload, &machine, budget).unwrap();
        let mut rt = OnlineRuntime::new(&machine, budget, OnlineConfig::disabled());
        rt.run(workload.stream(&q.ranges), &mut q.heap);
        assert_eq!(
            engine.stats().counters,
            rt.engine_stats().counters,
            "epoch loop diverged from the streaming engine"
        );
    }
    let accesses = workload.total_accesses();
    let raw_aps = measure_aps(accesses, reps, || {
        let p = provision(workload, &machine, budget).unwrap();
        let mut engine = TraceEngine::new(&machine);
        engine.run_stream(workload.stream(&p.ranges), p.heap.page_table())
    });
    let online_aps = measure_aps(accesses, reps, || {
        let mut p = provision(workload, &machine, budget).unwrap();
        let mut rt = OnlineRuntime::new(&machine, budget, OnlineConfig::disabled());
        rt.run(workload.stream(&p.ranges), &mut p.heap)
    });
    println!(
        "epoch overhead: raw {:.2} Macc/s, online(disabled) {:.2} Macc/s",
        raw_aps / 1e6,
        online_aps / 1e6
    );
    (raw_aps / online_aps - 1.0) * 100.0
}

fn run_workload_row(workload: &PhasedWorkload) -> WorkloadRow {
    let machine = loaded_machine();
    let budget = workload.hot_set_size();
    let cfg = OnlineConfig::default();
    let stat = best_static(workload, &machine, budget, &cfg).unwrap();
    let online = run_online(workload, &machine, budget, cfg).unwrap();
    let row = WorkloadRow {
        name: workload.name,
        stationary: workload.stationary,
        online_ms: online.time.millis(),
        static_ms: stat.time.millis(),
        static_label: stat.label.clone(),
        speedup: stat.time.nanos() / online.time.nanos().max(1e-12),
        migrations: online.stats.migrations,
        bytes_moved_kib: online.stats.bytes_migrated.bytes() / 1024,
        epochs: online.stats.epochs,
    };
    println!(
        "{:>16}: online {:.3} ms vs static[{}] {:.3} ms -> {:.2}x ({} moves, {} KiB, {} epochs)",
        row.name,
        row.online_ms,
        row.static_label,
        row.static_ms,
        row.speedup,
        row.migrations,
        row.bytes_moved_kib,
        row.epochs
    );
    row
}

fn write_baseline(overhead_percent: f64, rows: &[WorkloadRow]) {
    let headline = rows
        .iter()
        .filter(|r| !r.stationary)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    let mut workloads = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            workloads.push_str(",\n");
        }
        // The machine-readable approach labels in the JSON keys derive from
        // the same `ApproachKind` the figure legends use.
        let online = ApproachKind::Online.key();
        workloads.push_str(&format!(
            "    \"{}\": {{\n      \"stationary\": {},\n      \"{online}_ms\": {:.3},\n      \"best_static_ms\": {:.3},\n      \"best_static\": \"{}\",\n      \"{online}_vs_static_speedup\": {:.3},\n      \"migrations\": {},\n      \"bytes_moved_kib\": {},\n      \"epochs\": {}\n    }}",
            r.name,
            r.stationary,
            r.online_ms,
            r.static_ms,
            r.static_label,
            r.speedup,
            r.migrations,
            r.bytes_moved_kib,
            r.epochs
        ));
    }
    let online = ApproachKind::Online.key();
    let json = format!(
        "{{\n  \"bench\": \"runtime_migration\",\n  \"machine\": \"loaded tiny_test (DDR 320ns / MCDRAM 180ns loaded latencies)\",\n  \"headline_{online}_speedup\": {headline:.3},\n  \"epoch_overhead_percent\": {overhead_percent:.2},\n  \"workloads\": {{\n{workloads}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_runtime_migration(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let array = if test_mode {
        ByteSize::from_kib(32)
    } else {
        ByteSize::from_kib(256)
    };
    let reps = if test_mode { 1 } else { 3 };
    let workloads = phased_workloads(array);

    let steady = workloads
        .iter()
        .find(|w| w.name == "steady-triad")
        .expect("steady-triad registered");
    let overhead = epoch_overhead_percent(steady, reps);
    println!("epoch-loop observation overhead: {overhead:.2}%");

    let rows: Vec<WorkloadRow> = workloads.iter().map(run_workload_row).collect();
    if !test_mode {
        // The acceptance criteria of the online runtime, enforced at bench
        // scale: win on at least one phase-shifting workload, stay within
        // 2% of the best static placement on every stationary one.
        assert!(
            rows.iter().any(|r| !r.stationary && r.speedup > 1.0),
            "online must beat the best static placement on a phase-shifting workload"
        );
        for r in rows.iter().filter(|r| r.stationary) {
            assert!(
                r.speedup > 1.0 / 1.02,
                "{}: online {:.3} ms strays more than 2% from static {:.3} ms",
                r.name,
                r.online_ms,
                r.static_ms
            );
        }
        write_baseline(overhead, &rows);
    }

    // Criterion series: the migrating runtime over each workload.
    let machine = loaded_machine();
    let mut group = c.benchmark_group("runtime_migration");
    group.sample_size(10);
    for w in &workloads {
        group.throughput(Throughput::Elements(w.total_accesses()));
        group.bench_with_input(BenchmarkId::new("online", w.name), w, |b, w| {
            b.iter(|| {
                let budget = w.hot_set_size();
                let mut p = provision(w, &machine, budget).unwrap();
                let mut rt = OnlineRuntime::new(&machine, budget, OnlineConfig::default());
                rt.run(w.stream(&p.ranges), &mut p.heap)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime_migration
}
criterion_main!(benches);
