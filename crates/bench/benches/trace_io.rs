//! Trace I/O throughput: text vs binary serialise/parse, and streamed
//! folding.
//!
//! The out-of-core trace subsystem is justified by numbers: this bench
//! serialises the same profiler-shaped trace through the line-oriented text
//! format and the chunked binary format, times both directions, and times
//! the single-pass folding of the event stream. Before any timing, the
//! binary and text round-trips are asserted to reproduce the original trace
//! exactly, and the fold is asserted to visit each event exactly once.
//!
//! Besides the criterion benches, the target writes `BENCH_trace.json` at
//! the repository root (text/binary throughputs, their ratio, folding
//! events/sec) so the trace-path perf trajectory is tracked alongside
//! `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmsim_analysis::{FoldAccumulator, FoldedTimeline};
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, ByteSize, DetRng, Nanos, ObjectId};
use hmsim_trace::{
    format, read_binary, write_binary, AllocationRecord, CounterSnapshot, ObjectClass,
    SampleRecord, TraceEvent, TraceFile, TraceMetadata, TraceReader,
};
use std::time::Instant;

/// A profiler-shaped trace: a handful of hot objects, repeated iterations
/// with nested kernels, PEBS samples and periodic counter snapshots — the
/// event mix the real pipeline produces, at a size where parse cost matters.
fn synthetic_trace(events_target: usize) -> TraceFile {
    let mut rng = DetRng::new(0x7ACE10).derive("trace_io");
    let mut t = TraceFile::new(TraceMetadata {
        application: "trace_io synthetic".to_string(),
        ranks: 1,
        threads_per_rank: 4,
        sampling_period: 37_589,
        min_alloc_size: 4096,
        rank: 0,
    });
    let objects: Vec<(ObjectId, Address, u64)> = (0..8u32)
        .map(|i| {
            (
                ObjectId(i),
                Address(0x10_0000_0000 + u64::from(i) * 0x1000_0000),
                64 << 20,
            )
        })
        .collect();
    for (id, addr, size) in &objects {
        t.push(TraceEvent::Alloc(AllocationRecord {
            time: Nanos::ZERO,
            object: *id,
            class: ObjectClass::Dynamic,
            name: format!("array_{}", id.index()),
            site: Some(SiteKey::from_text(format!(
                "app!alloc_array{}+0x40|libc.so.6!malloc+0x1d",
                id.index()
            ))),
            address: *addr,
            size: ByteSize::from_bytes(*size),
        }));
    }
    let mut clock = 0.0f64;
    while t.len() < events_target {
        clock += 1.0;
        t.push(TraceEvent::PhaseBegin {
            time: Nanos::from_millis(clock),
            name: "iteration".to_string(),
        });
        let iter_start = clock;
        for kernel in ["spmv", "dot", "axpy"] {
            clock += 0.5;
            t.push(TraceEvent::PhaseBegin {
                time: Nanos::from_millis(clock),
                name: kernel.to_string(),
            });
            for _ in 0..20 {
                clock += 0.05;
                let (id, addr, size) = objects[rng.uniform_range(0, objects.len() as u64) as usize];
                t.push(TraceEvent::Sample(SampleRecord {
                    time: Nanos::from_millis(clock),
                    address: addr.offset(rng.uniform_range(0, size)),
                    object: rng.chance(0.9).then_some(id),
                    weight: 37_589,
                    latency_cycles: rng.chance(0.3).then(|| rng.uniform_range(100, 600) as u32),
                }));
            }
            clock += 0.5;
            t.push(TraceEvent::PhaseEnd {
                time: Nanos::from_millis(clock),
                name: kernel.to_string(),
            });
            t.push(TraceEvent::Counters(CounterSnapshot {
                time: Nanos::from_millis(clock),
                instructions: rng.uniform_range(1_000_000, 50_000_000),
                llc_misses: rng.uniform_range(10_000, 500_000),
            }));
        }
        clock += 1.0;
        t.push(TraceEvent::PhaseEnd {
            time: Nanos::from_millis(clock),
            name: "iteration".to_string(),
        });
        let _ = iter_start;
    }
    t
}

fn measure<T, F: FnMut() -> T>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Throughputs {
    events: usize,
    text_bytes: usize,
    binary_bytes: usize,
    text_write_eps: f64,
    text_parse_eps: f64,
    binary_write_eps: f64,
    binary_read_eps: f64,
    fold_eps: f64,
}

fn write_baseline(t: &Throughputs) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    let parse_speedup = t.binary_read_eps / t.text_parse_eps;
    let json = format!(
        "{{\n  \"bench\": \"trace_io\",\n  \"events\": {},\n  \"text_bytes\": {},\n  \"binary_bytes\": {},\n  \"binary_size_ratio\": {:.2},\n  \"text\": {{\n    \"serialize_events_per_sec\": {:.0},\n    \"parse_events_per_sec\": {:.0}\n  }},\n  \"binary\": {{\n    \"serialize_events_per_sec\": {:.0},\n    \"parse_events_per_sec\": {:.0}\n  }},\n  \"binary_parse_speedup\": {:.2},\n  \"folding\": {{\n    \"events_per_sec\": {:.0},\n    \"single_pass\": true\n  }}\n}}\n",
        t.events,
        t.text_bytes,
        t.binary_bytes,
        t.binary_bytes as f64 / t.text_bytes as f64,
        t.text_write_eps,
        t.text_parse_eps,
        t.binary_write_eps,
        t.binary_read_eps,
        parse_speedup,
        t.fold_eps,
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_trace_io(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let events_target = if test_mode { 5_000 } else { 400_000 };
    let reps = if test_mode { 1 } else { 5 };
    let trace = synthetic_trace(events_target);
    let n = trace.len();

    // Equivalence gates: both formats reproduce the trace exactly, and the
    // fold is one visit per event, before any number is reported.
    let text = format::write_text(&trace);
    let binary = write_binary(&trace);
    {
        let from_text = format::read_text(&text).expect("text parses");
        assert_eq!(from_text.events(), trace.events(), "text diverged");
        let from_binary = read_binary(&binary).expect("binary reads");
        assert_eq!(from_binary.events(), trace.events(), "binary diverged");
        assert_eq!(from_binary.metadata, trace.metadata);
        let mut fold = FoldAccumulator::new("iteration", 64);
        for e in trace.events() {
            fold.push(e);
        }
        assert_eq!(fold.events_visited(), n as u64, "fold is not single-pass");
        assert!(fold.finish().instances > 0);
    }

    let text_write = measure(reps, || format::write_text(&trace));
    let text_parse = measure(reps, || format::read_text(&text).unwrap());
    let binary_write = measure(reps, || write_binary(&trace));
    let binary_read = measure(reps, || {
        let mut count = 0usize;
        for e in TraceReader::new(binary.as_slice()).unwrap() {
            std::hint::black_box(e.unwrap());
            count += 1;
        }
        count
    });
    let fold_time = measure(reps, || FoldedTimeline::fold(&trace, "iteration", 64));

    let results = Throughputs {
        events: n,
        text_bytes: text.len(),
        binary_bytes: binary.len(),
        text_write_eps: n as f64 / text_write,
        text_parse_eps: n as f64 / text_parse,
        binary_write_eps: n as f64 / binary_write,
        binary_read_eps: n as f64 / binary_read,
        fold_eps: n as f64 / fold_time,
    };
    println!(
        "trace_io: {} events | text {:.1} MiB, binary {:.1} MiB | \
         parse text {:.2} Mev/s vs binary {:.2} Mev/s ({:.2}x) | fold {:.2} Mev/s",
        n,
        results.text_bytes as f64 / (1 << 20) as f64,
        results.binary_bytes as f64 / (1 << 20) as f64,
        results.text_parse_eps / 1e6,
        results.binary_read_eps / 1e6,
        results.binary_read_eps / results.text_parse_eps,
        results.fold_eps / 1e6,
    );
    if !test_mode {
        write_baseline(&results);
    }

    let mut group = c.benchmark_group("trace_io");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("text_serialize", |b| b.iter(|| format::write_text(&trace)));
    group.bench_function("text_parse", |b| {
        b.iter(|| format::read_text(&text).unwrap())
    });
    group.bench_function("binary_serialize", |b| b.iter(|| write_binary(&trace)));
    group.bench_function("binary_stream_read", |b| {
        b.iter(|| {
            TraceReader::new(binary.as_slice())
                .unwrap()
                .fold(0usize, |n, e| {
                    std::hint::black_box(e.unwrap());
                    n + 1
                })
        })
    });
    group.bench_function("fold_single_pass", |b| {
        b.iter(|| FoldedTimeline::fold(&trace, "iteration", 64))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_io
}
criterion_main!(benches);
