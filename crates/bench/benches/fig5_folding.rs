//! Figure 5: the Folding-style timeline of SNAP's main iteration under the
//! framework and under `numactl -p 1`, showing the MIPS dip in
//! `outer_src_calc` when the register-spill stack data stays in DDR.

use criterion::{criterion_group, criterion_main, Criterion};
use hmem_core::figures;
use hmsim_analysis::FoldedTimeline;
use hmsim_trace::TraceFile;

fn bench_fig5(c: &mut Criterion) {
    let data = figures::figure5(5, 16).expect("figure 5 generation succeeds");

    println!("\n=== Figure 5: SNAP per-kernel MIPS (framework vs numactl) ===");
    for (name, fw, nu) in &data.kernel_mips {
        println!(
            "  {name:<18} framework {fw:>9.1} MIPS | numactl {nu:>9.1} MIPS | ratio {:.2}",
            fw / nu
        );
    }
    println!("\nfolded MIPS profile under the framework:");
    for (pos, mips) in data.framework.mips_series() {
        println!("  t={pos:.2}  {mips:>10.1} MIPS");
    }

    // Benchmark the folding operation itself on the framework trace.
    // (Re-create a trace once outside the measurement loop.)
    let trace: TraceFile = {
        // figure5 consumed its traces; rebuild a modest profiled run instead.
        use auto_hbwmalloc::PlacementApproach;
        use hmem_core::simrun::{AppRun, RunConfig};
        use hmsim_apps::app_by_name;
        use hmsim_common::ByteSize;
        use hmsim_profiler::ProfilerConfig;
        let spec = app_by_name("SNAP").unwrap();
        AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256))
                .with_iterations(5)
                .with_profiling(ProfilerConfig::dense(8_009)),
        )
        .execute(PlacementApproach::NumactlPreferred.router().unwrap())
        .unwrap()
        .trace
        .unwrap()
    };

    c.bench_function("fig5_fold_snap_iteration", |b| {
        b.iter(|| FoldedTimeline::fold(&trace, "iteration", 64));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
