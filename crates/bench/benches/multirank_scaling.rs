//! Multi-rank sharded simulation: shard fan-out scaling and arbitration
//! policy quality, recorded in `BENCH_multirank.json`.
//!
//! Two questions:
//!
//! 1. **Does sharding scale?** The same R-rank bundle is simulated with the
//!    observation half of every epoch fanned out over worker threads and
//!    with it forced serial; identical results are asserted (the arbitration
//!    half is serial and deterministic either way), and the wall-clock ratio
//!    is the shard fan-out speedup.
//! 2. **Do the arbitration policies separate?** On the rank-skew triad
//!    (rank 0's working set dominates the node) the node-global selection
//!    must beat the static per-rank partition — the partition strands fast
//!    memory on the small ranks while starving the dominant one. FCFS rides
//!    along as the numactl/first-touch model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmsim_apps::{MultiRankWorkload, PhasedWorkload};
use hmsim_common::ByteSize;
use hmsim_runtime::harness::{loaded_machine, provision};
use hmsim_runtime::{
    run_multirank, ArbiterPolicy, MultiRankConfig, MultiRankOutcome, OnlineConfig, OnlineRuntime,
};
use std::time::Instant;

fn online_cfg() -> OnlineConfig {
    OnlineConfig::default().with_epoch_accesses(16_384)
}

/// Gate before any timing: with one rank the sharded path must reproduce
/// the single-rank runtime bit for bit, whatever the policy.
fn assert_single_rank_equivalence(array: ByteSize) {
    let machine = loaded_machine();
    let w = PhasedWorkload::steady_triad(array, 20);
    let budget = w.hot_set_size();
    let mut side = provision(&w, &machine, budget).unwrap();
    let mut single = OnlineRuntime::new(&machine, budget, online_cfg());
    single.run(w.stream(&side.ranges), &mut side.heap);
    for policy in ArbiterPolicy::ALL {
        let bundle = MultiRankWorkload::replicated(w.clone(), 1);
        let cfg = MultiRankConfig::new(policy, budget).with_online(online_cfg());
        let out = run_multirank(&bundle, &machine, cfg).unwrap();
        assert_eq!(
            out.per_rank[0].engine.counters,
            single.engine_stats().counters,
            "{policy}: sharded path diverged from the single-rank engine"
        );
        assert_eq!(
            out.per_rank[0].time.nanos().to_bits(),
            single.total_time().nanos().to_bits(),
            "{policy}: simulated time diverged"
        );
    }
}

/// Wall-clock of one full multi-rank run (provision + epoch loop).
fn wall_ms(workload: &MultiRankWorkload, cfg: &MultiRankConfig, reps: usize) -> f64 {
    let machine = loaded_machine();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = run_multirank(workload, &machine, cfg.clone()).unwrap();
        assert!(out.total_misses() > 0);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e3
}

struct PolicyRow {
    policy: ArbiterPolicy,
    outcome: MultiRankOutcome,
}

fn json_policy(row: &PolicyRow) -> String {
    let o = &row.outcome;
    let dominant = &o.per_rank[0];
    let tail_ms = o
        .per_rank
        .iter()
        .skip(1)
        .map(|r| r.time.millis())
        .fold(0.0f64, f64::max);
    format!(
        "      \"{}\": {{\n        \"node_time_ms\": {:.3},\n        \"dominant_rank_time_ms\": {:.3},\n        \"worst_small_rank_time_ms\": {:.3},\n        \"migrations\": {},\n        \"bytes_moved_kib\": {},\n        \"node_epochs\": {}\n      }}",
        row.policy,
        o.node_time().millis(),
        dominant.time.millis(),
        tail_ms,
        o.total_migrations(),
        o.per_rank
            .iter()
            .map(|r| r.stats.bytes_migrated.bytes())
            .sum::<u64>()
            / 1024,
        o.node_epochs
    )
}

#[allow(clippy::too_many_arguments)]
fn write_baseline(
    ranks: u32,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    fanout_speedup: f64,
    skew_budget: ByteSize,
    rows: &[PolicyRow],
    global_vs_partition: f64,
) {
    let policies = rows.iter().map(json_policy).collect::<Vec<_>>().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"multirank_scaling\",\n  \"machine\": \"loaded tiny_test (DDR 320ns / MCDRAM 180ns loaded latencies)\",\n  \"headline_fanout_speedup\": {fanout_speedup:.2},\n  \"headline_global_vs_partition\": {global_vs_partition:.3},\n  \"fanout\": {{\n    \"ranks\": {ranks},\n    \"worker_threads\": {threads},\n    \"serial_ms\": {serial_ms:.1},\n    \"parallel_ms\": {parallel_ms:.1},\n    \"speedup\": {fanout_speedup:.2}\n  }},\n  \"rank_skew\": {{\n    \"ranks\": 4,\n    \"skew\": 4,\n    \"node_budget_kib\": {},\n    \"policies\": {{\n{policies}\n    }}\n  }}\n}}\n",
        skew_budget.bytes() / 1024
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multirank.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_multirank_scaling(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (array, passes, reps) = if test_mode {
        (ByteSize::from_kib(16), 8, 1)
    } else {
        (ByteSize::from_kib(128), 30, 3)
    };

    assert_single_rank_equivalence(array);

    // ---- shard fan-out scaling: R replicated triads, parallel vs serial.
    let fan_ranks = 8u32;
    let fan = MultiRankWorkload::replicated(PhasedWorkload::steady_triad(array, passes), fan_ranks);
    // Per-rank hot sets fit their partition share: pure scaling measurement.
    let fan_budget = fan.node_hot_set();
    let base_cfg =
        MultiRankConfig::new(ArbiterPolicy::Partition, fan_budget).with_online(online_cfg());
    {
        // Identical results serial vs parallel, asserted before timing.
        let machine = loaded_machine();
        let par = run_multirank(&fan, &machine, base_cfg.clone()).unwrap();
        let ser = run_multirank(&fan, &machine, base_cfg.clone().serial()).unwrap();
        for (a, b) in par.per_rank.iter().zip(&ser.per_rank) {
            assert_eq!(a.engine.counters, b.engine.counters);
            assert_eq!(a.time.nanos().to_bits(), b.time.nanos().to_bits());
        }
    }
    let serial_ms = wall_ms(&fan, &base_cfg.clone().serial(), reps);
    let parallel_ms = wall_ms(&fan, &base_cfg, reps);
    let fanout_speedup = serial_ms / parallel_ms.max(1e-9);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "fan-out over {fan_ranks} ranks: serial {serial_ms:.1} ms, parallel {parallel_ms:.1} ms \
         -> {fanout_speedup:.2}x on {threads} threads"
    );

    // ---- arbitration quality on the rank-skew triad.
    let skew = MultiRankWorkload::rank_skew_triad(array, 4, 4, passes);
    // Enough for every small rank plus two thirds of the dominant one;
    // the static partition caps every rank at a quarter of it.
    let skew_budget = ByteSize::from_bytes(array.bytes() * 18);
    let machine = loaded_machine();
    let rows: Vec<PolicyRow> = ArbiterPolicy::ALL
        .iter()
        .map(|&policy| {
            let cfg = MultiRankConfig::new(policy, skew_budget).with_online(online_cfg());
            let outcome = run_multirank(&skew, &machine, cfg).unwrap();
            println!(
                "rank-skew/{policy}: node {:.3} ms (dominant {:.3} ms), {} moves, {} epochs",
                outcome.node_time().millis(),
                outcome.per_rank[0].time.millis(),
                outcome.total_migrations(),
                outcome.node_epochs
            );
            PolicyRow { policy, outcome }
        })
        .collect();
    let node_ms = |p: ArbiterPolicy| {
        rows.iter()
            .find(|r| r.policy == p)
            .map(|r| r.outcome.node_time().millis())
            .unwrap()
    };
    let global_vs_partition = node_ms(ArbiterPolicy::Partition) / node_ms(ArbiterPolicy::Global);

    if !test_mode {
        // Acceptance criteria, enforced at bench scale: the node-global
        // selection must beat the static per-rank partition on rank skew,
        // and the fan-out must actually scale when cores are available.
        assert!(
            global_vs_partition > 1.0,
            "global ({:.3} ms) must beat partition ({:.3} ms) on rank skew",
            node_ms(ArbiterPolicy::Global),
            node_ms(ArbiterPolicy::Partition)
        );
        if threads >= 4 {
            assert!(
                fanout_speedup > 1.3,
                "shard fan-out speedup {fanout_speedup:.2}x on {threads} threads"
            );
        }
        write_baseline(
            fan_ranks,
            threads,
            serial_ms,
            parallel_ms,
            fanout_speedup,
            skew_budget,
            &rows,
            global_vs_partition,
        );
    }

    // Criterion series: the sharded runtime under each policy.
    let mut group = c.benchmark_group("multirank_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(skew.total_accesses()));
    for policy in ArbiterPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("rank_skew", policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let cfg = MultiRankConfig::new(policy, skew_budget).with_online(online_cfg());
                    run_multirank(&skew, &machine, cfg).unwrap().total_misses()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multirank_scaling
}
criterion_main!(benches);
