//! Figure 4: the placement-approach comparison for every application —
//! figure of merit, MCDRAM high-water mark and ΔFOM/MByte per configuration.
//!
//! Running the whole 8-app grid inside Criterion's measurement loop would be
//! prohibitively slow, so the bench (a) regenerates and prints the complete
//! grid once (this is the artefact to compare against the paper), and (b)
//! benchmarks the end-to-end four-stage pipeline for two representative
//! applications so pipeline-cost regressions are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmem_advisor::SelectionStrategy;
use hmem_core::experiment::{run_full_evaluation, ExperimentConfig};
use hmem_core::pipeline::FrameworkPipeline;
use hmem_core::report;
use hmsim_apps::app_by_name;
use hmsim_common::ByteSize;

fn bench_fig4(c: &mut Criterion) {
    // Regenerate the full grid once and print it.
    let config = ExperimentConfig {
        iterations_override: Some(8),
        ..Default::default()
    };
    println!("\n=== Figure 4: placement approaches per application ===");
    for exp in run_full_evaluation(&config) {
        println!("{}", report::render_app_experiment(&exp));
    }

    // Benchmark the pipeline cost for two representative applications.
    let mut group = c.benchmark_group("fig4_pipeline");
    group.sample_size(10);
    for app in ["miniFE", "HPCG"] {
        let spec = app_by_name(app).unwrap();
        group.bench_with_input(
            BenchmarkId::new("framework_pipeline", app),
            &spec,
            |b, spec| {
                b.iter(|| {
                    FrameworkPipeline::new(
                        ByteSize::from_mib(128),
                        SelectionStrategy::Misses {
                            threshold_percent: 0.0,
                        },
                    )
                    .with_iterations(5)
                    .run(spec)
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// The strategy × budget sweep for one application — the unit the experiment
/// layer now fans out over scoped worker threads. Tracks the wall-clock of a
/// whole per-app grid so parallelization regressions are caught.
fn bench_fig4_parallel_grid(c: &mut Criterion) {
    use hmem_core::experiment::run_app_experiment;

    let spec = app_by_name("miniFE").unwrap();
    let config = ExperimentConfig {
        iterations_override: Some(5),
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig4_parallel_grid");
    group.sample_size(10);
    group.bench_function("minife_full_grid", |b| {
        b.iter(|| run_app_experiment(&spec, &config).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4, bench_fig4_parallel_grid
}
criterion_main!(benches);
