//! Trace-engine hot-path throughput: the before/after number for the
//! page-index + allocation-free-counter overhaul.
//!
//! The `naive` module below preserves the pre-refactor hot path exactly as
//! the seed shipped it — `HashMap<Page, TierId>` page translation with
//! SipHash, `HashMap::entry` per-miss tier-traffic updates, per-probe
//! division/modulo set indexing and a `TierSet` walk + bandwidth-model call
//! per LLC miss. Both paths consume the *same* pre-generated access stream,
//! and the equivalence of their simulation results is asserted before any
//! timing happens, so the measured ratio is pure hot-path cost.
//!
//! Besides the criterion benches, the target writes `BENCH_engine.json` at
//! the repository root with accesses/sec for both paths so the perf
//! trajectory is tracked from PR 1 onward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hmsim_apps::TriadStream;
use hmsim_common::{Address, AddressRange, ByteSize, DetRng, TierId};
use hmsim_machine::{
    AccessPattern, AccessStream, MachineConfig, MemoryAccess, PageTable, ServiceLevel, TraceEngine,
};
use std::time::Instant;

/// Faithful reimplementation of the seed's trace-engine hot path, kept as the
/// "naive" baseline the acceptance criterion compares against.
mod naive {
    use hmsim_common::{Address, Nanos, Page, TierId};
    use hmsim_machine::{AccessKind, BandwidthModel, MachineConfig, MemoryAccess, PerfCounters};
    use std::collections::HashMap;

    pub struct NaivePageTable {
        default_tier: TierId,
        pages: HashMap<Page, TierId>,
    }

    impl NaivePageTable {
        pub fn new(default_tier: TierId) -> Self {
            NaivePageTable {
                default_tier,
                pages: HashMap::new(),
            }
        }

        pub fn map_page(&mut self, page: Page, tier: TierId) {
            self.pages.insert(page, tier);
        }

        fn tier_of(&self, addr: Address) -> TierId {
            self.pages
                .get(&addr.page())
                .copied()
                .unwrap_or(self.default_tier)
        }
    }

    struct Line {
        tag: u64,
        valid: bool,
        dirty: bool,
        last_use: u64,
    }

    /// Set-associative cache with division/modulo set indexing (the
    /// pre-refactor `set_range`) and the seed's per-access hit/miss/writeback
    /// statistics.
    struct NaiveCache {
        line_size: u64,
        sets: u64,
        ways: usize,
        lines: Vec<Line>,
        clock: u64,
        hits: u64,
        misses: u64,
        writebacks: u64,
    }

    impl NaiveCache {
        fn new(size: u64, line_size: u64, ways: u32) -> Self {
            let sets = size / (line_size * u64::from(ways));
            let total = (sets * u64::from(ways)) as usize;
            NaiveCache {
                line_size,
                sets,
                ways: ways as usize,
                lines: (0..total)
                    .map(|_| Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        last_use: 0,
                    })
                    .collect(),
                clock: 0,
                hits: 0,
                misses: 0,
                writebacks: 0,
            }
        }

        fn access(&mut self, addr: Address, is_store: bool) -> bool {
            self.clock += 1;
            let line_addr = addr.value() / self.line_size;
            let set = (line_addr % self.sets) as usize;
            let tag = line_addr / self.sets;
            let base = set * self.ways;
            let slots = &mut self.lines[base..base + self.ways];
            if let Some(line) = slots.iter_mut().find(|l| l.valid && l.tag == tag) {
                line.last_use = self.clock;
                line.dirty |= is_store;
                self.hits += 1;
                return true;
            }
            self.misses += 1;
            let victim = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| if l.valid { l.last_use + 1 } else { 0 })
                .map(|(i, _)| i)
                .expect("cache set has at least one way");
            let line = &mut slots[victim];
            if line.valid && line.dirty {
                self.writebacks += 1;
            }
            *line = Line {
                tag,
                valid: true,
                dirty: is_store,
                last_use: self.clock,
            };
            false
        }
    }

    /// The seed's flat-mode engine loop: per-miss HashMap lookups for both
    /// translation and traffic, per-miss tier walk + latency computation.
    pub struct NaiveEngine {
        config: MachineConfig,
        bandwidth: BandwidthModel,
        l1: NaiveCache,
        l2: NaiveCache,
        pub counters: PerfCounters,
        pub tier_traffic: HashMap<TierId, u64>,
        pub time: Nanos,
    }

    impl NaiveEngine {
        pub fn new(config: &MachineConfig) -> Self {
            NaiveEngine {
                bandwidth: BandwidthModel::new(config),
                l1: NaiveCache::new(config.l1_size.bytes(), config.line_size, config.l1_ways),
                l2: NaiveCache::new(config.l2_size.bytes(), config.line_size, config.l2_ways),
                counters: PerfCounters::default(),
                tier_traffic: HashMap::new(),
                time: Nanos::ZERO,
                config: config.clone(),
            }
        }

        fn charge_time(&mut self, latency: Nanos, is_memory: bool) {
            let effective = if is_memory {
                latency / self.config.mlp
            } else {
                latency / 4.0
            };
            self.time += effective;
            let cycles = (effective.secs() * self.config.frequency_hz) as u64;
            self.counters.cycles += cycles.max(1);
            if is_memory {
                self.counters.stall_cycles += cycles;
            }
        }

        fn access(&mut self, acc: &MemoryAccess, page_table: &NaivePageTable) {
            let is_store = acc.kind == AccessKind::Store;
            self.counters.instructions += 2;
            self.counters.l1_references += 1;
            if self.l1.access(acc.address, is_store) {
                self.charge_time(self.config.l1_latency, false);
                return;
            }
            self.counters.l1_misses += 1;
            self.counters.llc_references += 1;
            if self.l2.access(acc.address, is_store) {
                self.charge_time(self.config.l2_latency, false);
                return;
            }
            self.counters.llc_misses += 1;
            let tier_id = page_table.tier_of(acc.address);
            let tier = self
                .config
                .tiers
                .get(tier_id)
                .unwrap_or_else(|| self.config.tiers.slowest().expect("tiers non-empty"));
            let served_by = tier.id;
            let latency = self.bandwidth.latency(tier);
            *self.tier_traffic.entry(served_by).or_insert(0) += self.config.line_size;
            self.charge_time(latency, true);
        }

        pub fn run(&mut self, accesses: &[MemoryAccess], page_table: &NaivePageTable) -> u64 {
            let before = self.counters.llc_misses;
            for a in accesses {
                self.access(a, page_table);
            }
            self.counters.llc_misses - before
        }
    }
}

/// Build the page tables both engines translate through: an 8 MiB working
/// set with its lower half placed in MCDRAM.
fn page_tables() -> (AddressRange, PageTable, naive::NaivePageTable) {
    let ws = AddressRange::new(Address(0x4000_0000), ByteSize::from_mib(8));
    let mcdram_half = AddressRange::new(ws.start, ByteSize::from_mib(4));

    let mut page_table = PageTable::new(TierId::DDR);
    page_table.map_range(mcdram_half, TierId::MCDRAM);
    let mut naive_pt = naive::NaivePageTable::new(TierId::DDR);
    for page in mcdram_half.pages() {
        naive_pt.map_page(page, TierId::MCDRAM);
    }
    (ws, page_table, naive_pt)
}

/// `stream`: a store-carrying sequential sweep over the working set — the
/// paper's dominant trace-driven pattern (STREAM Triad, Figure 1) and the
/// headline workload of `BENCH_engine.json`.
fn stream_workload(ws: AddressRange, accesses: usize) -> Vec<MemoryAccess> {
    AccessStream::new(ws, AccessPattern::Sequential, 8, 0.3, DetRng::new(1))
        .take(accesses)
        .collect()
}

/// `miss_stream`: a line-stride (64 B) streaming sweep — every access opens a
/// new cache line and, with the working set far beyond the L2, misses all the
/// way to memory. This is the page-translation / tier-traffic stress case the
/// tentpole targeted: the pre-refactor path paid a SipHash page lookup, a
/// `HashMap::entry` traffic update, a `TierSet` walk and floating-point
/// latency math on *every* access here.
fn miss_stream_workload(ws: AddressRange, accesses: usize) -> Vec<MemoryAccess> {
    AccessStream::new(
        ws,
        AccessPattern::Strided { stride: 64 },
        8,
        0.3,
        DetRng::new(1),
    )
    .take(accesses)
    .collect()
}

/// `mixed`: the sequential sweep interleaved 1:1 with an irregular gather,
/// keeping every structural feature of the hot path (both cache levels,
/// translation of non-resident pages, both tiers' traffic counters) hot.
fn mixed_workload(ws: AddressRange, accesses: usize) -> Vec<MemoryAccess> {
    let sequential = AccessStream::new(ws, AccessPattern::Sequential, 8, 0.3, DetRng::new(1));
    let random = AccessStream::new(ws, AccessPattern::Random, 8, 0.1, DetRng::new(2));
    sequential
        .zip(random)
        .flat_map(|(s, r)| [s, r])
        .take(accesses)
        .collect()
}

fn measure<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let misses = f();
        let dt = t0.elapsed().as_secs_f64();
        assert!(misses > 0, "workload produced no LLC misses");
        best = best.min(dt);
    }
    best
}

struct Measured {
    name: &'static str,
    naive_aps: f64,
    optimized_aps: f64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        self.optimized_aps / self.naive_aps
    }
}

fn write_baseline(accesses: usize, results: &[Measured]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut workloads = String::new();
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            workloads.push_str(",\n");
        }
        workloads.push_str(&format!(
            "    \"{}\": {{\n      \"naive_accesses_per_sec\": {:.0},\n      \"optimized_accesses_per_sec\": {:.0},\n      \"speedup\": {:.2}\n    }}",
            m.name, m.naive_aps, m.optimized_aps, m.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"machine\": \"tiny_test, 8 MiB working set, 50% MCDRAM\",\n  \"accesses\": {accesses},\n  \"headline_speedup\": {:.2},\n  \"workloads\": {{\n{workloads}\n  }}\n}}\n",
        results[0].speedup()
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n: usize = if test_mode { 100_000 } else { 4_000_000 };
    let (ws, page_table, naive_pt) = page_tables();
    let config = MachineConfig::tiny_test();
    let reps = if test_mode { 1 } else { 3 };

    let mut results = Vec::new();
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    // `stream` (the Figure-1 STREAM Triad pattern, the ISSUE's motivating
    // workload) is the headline entry; the others track the miss-path and
    // irregular regimes.
    for (name, accesses) in [
        ("stream", stream_workload(ws, n)),
        ("miss_stream", miss_stream_workload(ws, n)),
        ("mixed", mixed_workload(ws, n)),
    ] {
        // Equivalence gate: identical counters and per-tier traffic before
        // any number is reported.
        {
            let mut fast = TraceEngine::new(&config);
            let mut slow = naive::NaiveEngine::new(&config);
            fast.run(&accesses, &page_table);
            slow.run(&accesses, &naive_pt);
            assert_eq!(fast.stats().counters, slow.counters, "hot paths diverged");
            for tier in [TierId::DDR, TierId::MCDRAM] {
                assert_eq!(
                    fast.stats().tier_traffic.bytes(tier),
                    slow.tier_traffic.get(&tier).copied().unwrap_or(0),
                    "tier traffic diverged for {tier}"
                );
            }
        }

        // Direct measurement for the JSON baseline (best of `reps` runs).
        let t_naive = measure(reps, || {
            let mut e = naive::NaiveEngine::new(&config);
            e.run(&accesses, &naive_pt)
        });
        let t_fast = measure(reps, || {
            let mut e = TraceEngine::new(&config);
            e.run(&accesses, &page_table)
        });
        let m = Measured {
            name,
            naive_aps: n as f64 / t_naive,
            optimized_aps: n as f64 / t_fast,
        };
        println!(
            "engine throughput [{name}]: naive {:.2} Macc/s, optimized {:.2} Macc/s, speedup {:.2}x",
            m.naive_aps / 1e6,
            m.optimized_aps / 1e6,
            m.speedup()
        );
        results.push(m);

        group.bench_with_input(BenchmarkId::new("naive", name), &accesses, |b, accs| {
            b.iter(|| {
                let mut e = naive::NaiveEngine::new(&config);
                e.run(accs, &naive_pt)
            });
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &accesses, |b, accs| {
            b.iter(|| {
                let mut e = TraceEngine::new(&config);
                e.run(accs, &page_table)
            });
        });
    }
    group.finish();
    if !test_mode {
        write_baseline(n, &results);
    }

    // Streaming path: the same triad kernel the paper's Figure 1 uses, driven
    // through run_stream with zero materialization.
    let mut group = c.benchmark_group("engine_throughput_stream");
    group.sample_size(10);
    let triad = TriadStream::new(Address(0x8000_0000), ByteSize::from_mib(2), 8, 2);
    group.throughput(Throughput::Elements(triad.total_accesses()));
    let mut triad_pt = PageTable::new(TierId::DDR);
    triad_pt.map_range(triad.array_a(), TierId::MCDRAM);
    group.bench_function("triad_run_stream", |b| {
        b.iter(|| {
            let mut e = TraceEngine::new(&config);
            e.run_stream(triad.clone(), &triad_pt)
        });
    });
    group.finish();

    // Cheap end-to-end smoke that also runs in --test mode: a cold miss to a
    // mapped page must be served by the mapped tier.
    let mut e = TraceEngine::new(&config);
    let mut pt = PageTable::new(TierId::DDR);
    pt.map_range(
        AddressRange::new(Address(0x9000_0000), ByteSize::from_kib(4)),
        TierId::MCDRAM,
    );
    let level = e.access(&MemoryAccess::load(Address(0x9000_0000), 8), &pt);
    assert_eq!(level, ServiceLevel::Memory(TierId::MCDRAM));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput
}
criterion_main!(benches);
