//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! * exact 0/1 knapsack vs. the paper's greedy relaxations (cost and achieved
//!   value) — demonstrating why the exact solver is impractical;
//! * the allocation-site decision cache of Algorithm 1 on vs. off
//!   (interposition cost per allocation);
//! * PEBS sampling-period sweep (samples captured vs. attribution quality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmem_advisor::knapsack::{greedy_by_value, solve_exact, Item};
use hmsim_analysis::analyze_trace;
use hmsim_callstack::{AslrLayout, ProgramImage, SiteCache, SiteDecision, Translator, Unwinder};
use hmsim_common::{ByteSize, DetRng};

fn knapsack_items(n: usize) -> Vec<Item> {
    let mut rng = DetRng::new(42);
    (0..n)
        .map(|_| Item {
            weight_pages: rng.uniform_range(1, 2_000),
            value: rng.uniform_range(1_000, 10_000_000),
        })
        .collect()
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_knapsack");
    group.sample_size(10);
    for n in [20usize, 100, 300] {
        let items = knapsack_items(n);
        // Capacity: 256 MiB in pages.
        let capacity = ByteSize::from_mib(256).pages();
        let exact = solve_exact(&items, capacity);
        let (_, greedy_value) = greedy_by_value(&items, capacity);
        match exact {
            Ok(sol) => println!(
                "knapsack n={n}: exact value {} ({} DP cells) vs greedy value {} ({:.1}% of optimum)",
                sol.total_value,
                sol.cells_evaluated,
                greedy_value,
                100.0 * greedy_value as f64 / sol.total_value.max(1) as f64
            ),
            Err(e) => println!("knapsack n={n}: exact solver refused ({e}); greedy value {greedy_value}"),
        }
        group.bench_with_input(BenchmarkId::new("greedy", n), &items, |b, items| {
            b.iter(|| greedy_by_value(items, capacity));
        });
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("exact_dp", n), &items, |b, items| {
                b.iter(|| solve_exact(items, capacity).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_site_cache(c: &mut Criterion) {
    let image = ProgramImage::synthetic_hpc_app("bench.x", &["alloc_matrix"]);
    let aslr = AslrLayout::randomized(&image, &mut DetRng::new(3));
    let unwinder = Unwinder::new(image.clone(), aslr.clone());
    let translator = Translator::new(image, aslr);
    let stack = ["main", "alloc_matrix", "malloc"];

    let mut group = c.benchmark_group("ablation_site_cache");
    group.bench_function("inspection_with_cache", |b| {
        let mut cache = SiteCache::default();
        b.iter(|| {
            let (raw, _) = unwinder.unwind(&stack).unwrap();
            match cache.lookup(&raw) {
                Some(decision) => decision.promote,
                None => {
                    let (translated, _) = translator.translate(&raw);
                    let promote = !translated.is_empty();
                    cache.annotate(
                        &raw,
                        SiteDecision {
                            promote,
                            allocator: 0,
                        },
                    );
                    promote
                }
            }
        });
    });
    group.bench_function("inspection_without_cache", |b| {
        b.iter(|| {
            let (raw, _) = unwinder.unwind(&stack).unwrap();
            let (translated, _) = translator.translate(&raw);
            !translated.is_empty()
        });
    });
    group.finish();
}

fn bench_sampling_period(c: &mut Criterion) {
    use auto_hbwmalloc::PlacementApproach;
    use hmem_core::simrun::{AppRun, RunConfig};
    use hmsim_apps::app_by_name;
    use hmsim_profiler::ProfilerConfig;

    println!("\n=== Ablation: PEBS sampling period (miniFE) ===");
    let spec = app_by_name("miniFE").unwrap();
    for period in [4_001u64, 37_589, 300_007] {
        let run = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256))
                .with_iterations(5)
                .with_profiling(ProfilerConfig::dense(period)),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        let trace = run.trace.as_ref().unwrap();
        let report = analyze_trace(trace);
        let top = report
            .objects
            .first()
            .map(|o| o.name.clone())
            .unwrap_or_default();
        println!(
            "period {period:>7}: {} samples, overhead {:.3}%, hottest object: {} ({} attributed misses)",
            trace.sample_count(),
            run.monitoring_overhead * 100.0,
            top,
            report.objects.first().map(|o| o.llc_misses).unwrap_or(0),
        );
    }

    let mut group = c.benchmark_group("ablation_sampling_period");
    group.sample_size(10);
    for period in [4_001u64, 37_589] {
        group.bench_with_input(
            BenchmarkId::new("profiled_run", period),
            &period,
            |b, &p| {
                b.iter(|| {
                    AppRun::new(
                        &spec,
                        RunConfig::flat(ByteSize::from_mib(256))
                            .with_iterations(3)
                            .with_profiling(ProfilerConfig::dense(p)),
                    )
                    .execute(PlacementApproach::DdrOnly.router().unwrap())
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_knapsack, bench_site_cache, bench_sampling_period
}
criterion_main!(benches);
