//! Figure 1: STREAM Triad bandwidth as a function of the number of cores for
//! DDR, flat-mode MCDRAM and cache-mode MCDRAM.
//!
//! The bench measures the cost of evaluating the bandwidth model itself and,
//! more importantly, prints the regenerated series so the figure can be
//! compared against the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmsim_apps::StreamBenchmark;
use hmsim_common::TierId;
use hmsim_machine::MachineConfig;

fn bench_fig1(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250();
    let stream = StreamBenchmark::default();

    // Print the regenerated figure once.
    println!("\n=== Figure 1: STREAM Triad bandwidth (GB/s) ===");
    println!(
        "{:>6} {:>10} {:>14} {:>15}",
        "cores", "DDR", "MCDRAM/Flat", "MCDRAM/Cache"
    );
    for (cores, ddr, flat, cache) in stream.figure1(&machine) {
        println!("{cores:>6} {ddr:>10.1} {flat:>14.1} {cache:>15.1}");
    }

    let mut group = c.benchmark_group("fig1_stream");
    for cores in [1u32, 8, 68] {
        group.bench_with_input(BenchmarkId::new("ddr", cores), &cores, |b, &cores| {
            let s = StreamBenchmark {
                core_counts: vec![cores],
                ..StreamBenchmark::default()
            };
            b.iter(|| s.run_flat(&machine, TierId::DDR));
        });
        group.bench_with_input(
            BenchmarkId::new("mcdram_flat", cores),
            &cores,
            |b, &cores| {
                let s = StreamBenchmark {
                    core_counts: vec![cores],
                    ..StreamBenchmark::default()
                };
                b.iter(|| s.run_flat(&machine, TierId::MCDRAM));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mcdram_cache", cores),
            &cores,
            |b, &cores| {
                let s = StreamBenchmark {
                    core_counts: vec![cores],
                    ..StreamBenchmark::default()
                };
                b.iter(|| s.run_cache_mode(&machine));
            },
        );
    }
    group.finish();
}

/// Trace-driven counterpart of Figure 1: the Triad kernel pushed through the
/// cycle-approximate engine via the streaming API (no materialized access
/// vectors), reporting simulated accesses per second for DDR-resident and
/// MCDRAM-resident data.
fn bench_fig1_trace_engine(c: &mut Criterion) {
    use hmsim_apps::TriadStream;
    use hmsim_common::{Address, ByteSize};
    use hmsim_machine::{MachineConfig as Mc, PageTable, TraceEngine};

    let config = Mc::tiny_test();
    let triad = TriadStream::new(Address(0x4000_0000), ByteSize::from_mib(2), 8, 2);

    let mut group = c.benchmark_group("fig1_triad_trace_engine");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(triad.total_accesses()));
    for (label, tier) in [("ddr", TierId::DDR), ("mcdram_flat", TierId::MCDRAM)] {
        let mut pt = PageTable::new(TierId::DDR);
        pt.map_range(triad.working_set(), tier);
        let t = triad.clone();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut e = TraceEngine::new(&config);
                e.run_stream(t.clone(), &pt)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1, bench_fig1_trace_engine
}
criterion_main!(benches);
