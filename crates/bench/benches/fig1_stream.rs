//! Figure 1: STREAM Triad bandwidth as a function of the number of cores for
//! DDR, flat-mode MCDRAM and cache-mode MCDRAM.
//!
//! The bench measures the cost of evaluating the bandwidth model itself and,
//! more importantly, prints the regenerated series so the figure can be
//! compared against the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmsim_apps::StreamBenchmark;
use hmsim_common::TierId;
use hmsim_machine::MachineConfig;

fn bench_fig1(c: &mut Criterion) {
    let machine = MachineConfig::knl_7250();
    let stream = StreamBenchmark::default();

    // Print the regenerated figure once.
    println!("\n=== Figure 1: STREAM Triad bandwidth (GB/s) ===");
    println!("{:>6} {:>10} {:>14} {:>15}", "cores", "DDR", "MCDRAM/Flat", "MCDRAM/Cache");
    for (cores, ddr, flat, cache) in stream.figure1(&machine) {
        println!("{cores:>6} {ddr:>10.1} {flat:>14.1} {cache:>15.1}");
    }

    let mut group = c.benchmark_group("fig1_stream");
    for cores in [1u32, 8, 68] {
        group.bench_with_input(BenchmarkId::new("ddr", cores), &cores, |b, &cores| {
            let s = StreamBenchmark {
                core_counts: vec![cores],
                ..StreamBenchmark::default()
            };
            b.iter(|| s.run_flat(&machine, TierId::DDR));
        });
        group.bench_with_input(BenchmarkId::new("mcdram_flat", cores), &cores, |b, &cores| {
            let s = StreamBenchmark {
                core_counts: vec![cores],
                ..StreamBenchmark::default()
            };
            b.iter(|| s.run_flat(&machine, TierId::MCDRAM));
        });
        group.bench_with_input(BenchmarkId::new("mcdram_cache", cores), &cores, |b, &cores| {
            let s = StreamBenchmark {
                core_counts: vec![cores],
                ..StreamBenchmark::default()
            };
            b.iter(|| s.run_cache_mode(&machine));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1
}
criterion_main!(benches);
