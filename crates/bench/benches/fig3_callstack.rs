//! Figure 3: per-allocation cost of call-stack unwinding and of call-stack
//! translation as a function of the call-stack depth.
//!
//! Two things are measured: the *actual* time of the simulated unwinder and
//! translator (whose work scales with depth exactly like the real machinery —
//! translation does strictly more work per frame), and the calibrated cost
//! model used inside the simulation is printed for comparison with the
//! paper's figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hmsim_callstack::{AslrLayout, CallstackCostModel, ProgramImage, Translator, Unwinder};
use hmsim_common::DetRng;

const FRAME_POOL: &[&str] = &[
    "main",
    "initialize",
    "allocate_state",
    "spmv",
    "symgs",
    "dot",
    "MPI_Allreduce",
    "__kmp_fork_call",
];

fn machinery() -> (Unwinder, Translator) {
    let image = ProgramImage::synthetic_hpc_app("bench.x", &["spmv", "symgs", "dot"]);
    let aslr = AslrLayout::randomized(&image, &mut DetRng::new(99));
    (
        Unwinder::new(image.clone(), aslr.clone()),
        Translator::new(image, aslr),
    )
}

fn logical_stack(depth: usize) -> Vec<&'static str> {
    let mut stack: Vec<&'static str> = FRAME_POOL.iter().copied().cycle().take(depth - 1).collect();
    stack.push("malloc");
    stack
}

fn bench_fig3(c: &mut Criterion) {
    println!("\n=== Figure 3: modelled call-stack costs (us) ===");
    println!("{:>6} {:>10} {:>11}", "depth", "unwind", "translate");
    for (depth, unwind, translate) in CallstackCostModel::knl_7250().figure3_series(9) {
        println!("{depth:>6} {unwind:>10.2} {translate:>11.2}");
    }

    let (unwinder, translator) = machinery();
    let mut group = c.benchmark_group("fig3_callstack");
    for depth in [1usize, 3, 6, 9] {
        let stack = logical_stack(depth);
        group.bench_with_input(BenchmarkId::new("unwind", depth), &depth, |b, _| {
            b.iter(|| unwinder.unwind(&stack).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("translate", depth), &depth, |b, _| {
            let (raw, _) = unwinder.unwind(&stack).unwrap();
            b.iter(|| translator.translate(&raw));
        });
        group.bench_with_input(
            BenchmarkId::new("synthetic_walk", depth),
            &depth,
            |b, &d| {
                b.iter(|| unwinder.walk_synthetic_frames(d));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig3
}
criterion_main!(benches);
