//! # hmsim-bench
//!
//! Criterion benchmark harness of the reproduction. Each bench target
//! regenerates the data behind one table or figure of the paper and prints
//! the series it measured (so `cargo bench` doubles as the
//! evaluation-reproduction driver):
//!
//! | bench target | paper artefact |
//! |---|---|
//! | `fig1_stream` | Figure 1 — STREAM Triad bandwidth vs. cores |
//! | `fig3_callstack` | Figure 3 — unwind vs. translation cost vs. depth |
//! | `table1_characteristics` | Table I — per-application characteristics |
//! | `fig4_placement` | Figure 4 — FOM / MCDRAM HWM / ΔFOM-per-MiB grid |
//! | `fig5_folding` | Figure 5 — SNAP folded-iteration timeline |
//! | `ablations` | design-choice ablations (exact knapsack vs greedy, site cache, sampling period) |
//! | `engine_throughput` | trace-engine hot path, naive vs optimized (`BENCH_engine.json`) |
//! | `trace_io` | binary trace parse/fold throughput (`BENCH_trace.json`) |
//! | `runtime_migration` | online migration runtime vs best static placement (`BENCH_runtime.json`) |
//! | `multirank_scaling` | rank-sharded runtime: fan-out scaling + arbitration policies (`BENCH_multirank.json`) |
//!
//! The [`schema`] module validates every `BENCH_*.json` artifact (CI's
//! schema-check step) so a broken bench writer fails the pipeline instead of
//! silently shipping garbage baselines.

pub mod schema;

pub use hmem_core as core;
