//! Schema check for the `BENCH_*.json` tracking artifacts.
//!
//! Every bench target that writes a baseline file at the workspace root is
//! registered here with the headline keys its JSON must carry. CI runs
//! [`validate_bench_dir`] after the bench smoke, so a bench writer that
//! emits malformed JSON (string formatting is hand-rolled — no serde in the
//! offline build) or silently drops a headline metric fails the pipeline
//! instead of shipping garbage baselines.
//!
//! The parser lives in [`hmsim_common::json`] (the scenario loader in
//! `hmem-core` reads `.scn` files through the same code); this module
//! re-exports it so existing `hmsim_bench::schema::parse_json` callers keep
//! working.

use std::path::Path;

pub use hmsim_common::json::{parse_json, Json};

/// The registered benchmark artifacts: file name → (expected `"bench"`
/// value, headline keys the top-level object must carry).
pub const EXPECTED: &[(&str, &str, &[&str])] = &[
    (
        "BENCH_engine.json",
        "engine_throughput",
        &["headline_speedup", "workloads"],
    ),
    (
        "BENCH_trace.json",
        "trace_io",
        &["binary_parse_speedup", "folding"],
    ),
    (
        "BENCH_runtime.json",
        "runtime_migration",
        &[
            "headline_online_speedup",
            "epoch_overhead_percent",
            "workloads",
        ],
    ),
    (
        "BENCH_multirank.json",
        "multirank_scaling",
        &[
            "headline_fanout_speedup",
            "headline_global_vs_partition",
            "rank_skew",
        ],
    ),
];

/// Validate one artifact's parsed document against its registration.
pub fn validate_document(name: &str, doc: &Json) -> Result<(), String> {
    let Some((_, bench, keys)) = EXPECTED.iter().find(|(n, _, _)| *n == name) else {
        return Err(format!(
            "{name}: unregistered bench artifact — add its headline keys to \
             hmsim_bench::schema::EXPECTED"
        ));
    };
    match doc.get("bench") {
        Some(Json::Str(s)) if s == bench => {}
        other => {
            return Err(format!(
                "{name}: top-level \"bench\" must be \"{bench}\", found {other:?}"
            ))
        }
    }
    for key in *keys {
        if doc.get(key).is_none() {
            return Err(format!("{name}: missing headline key \"{key}\""));
        }
    }
    Ok(())
}

/// Validate every `BENCH_*.json` in `dir`: each must parse as JSON and carry
/// its registered headline keys, and every registered artifact must exist.
/// Returns the validated file names.
pub fn validate_bench_dir(dir: &Path) -> Result<Vec<String>, String> {
    let mut validated = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {dir:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("{name}: unreadable: {e}"))?;
        let doc = parse_json(&text).map_err(|e| format!("{name}: {e}"))?;
        validate_document(&name, &doc)?;
        validated.push(name);
    }
    validated.sort();
    for (name, _, _) in EXPECTED {
        if !validated.iter().any(|v| v == name) {
            return Err(format!(
                "registered artifact {name} is missing from {dir:?}"
            ));
        }
    }
    Ok(validated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_parser_handles_the_bench_shapes() {
        let doc =
            parse_json("{\"bench\": \"x\", \"n\": -3.25e2, \"nested\": {\"a\": []}}").unwrap();
        assert_eq!(doc.get("bench"), Some(&Json::Str("x".into())));
        assert_eq!(doc.get("n"), Some(&Json::Num(-325.0)));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn validation_requires_the_headline_keys() {
        let good = parse_json(
            "{\"bench\": \"trace_io\", \"binary_parse_speedup\": 14.0, \"folding\": {}}",
        )
        .unwrap();
        validate_document("BENCH_trace.json", &good).unwrap();

        let wrong_bench = parse_json("{\"bench\": \"oops\", \"binary_parse_speedup\": 1}").unwrap();
        assert!(validate_document("BENCH_trace.json", &wrong_bench).is_err());

        let missing = parse_json("{\"bench\": \"trace_io\", \"folding\": {}}").unwrap();
        let err = validate_document("BENCH_trace.json", &missing).unwrap_err();
        assert!(err.contains("binary_parse_speedup"), "{err}");

        let unregistered = parse_json("{\"bench\": \"new\"}").unwrap();
        assert!(validate_document("BENCH_new.json", &unregistered).is_err());
    }

    /// The committed artifacts at the workspace root must always validate —
    /// this is the test CI's schema-check step runs after the bench smoke.
    #[test]
    fn schema_of_committed_bench_artifacts() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let validated = validate_bench_dir(root).expect("bench artifacts validate");
        assert_eq!(validated.len(), EXPECTED.len(), "{validated:?}");
    }
}
