//! Schema check for the `BENCH_*.json` tracking artifacts.
//!
//! Every bench target that writes a baseline file at the workspace root is
//! registered here with the headline keys its JSON must carry. CI runs
//! [`validate_bench_dir`] after the bench smoke, so a bench writer that
//! emits malformed JSON (string formatting is hand-rolled — no serde in the
//! offline build) or silently drops a headline metric fails the pipeline
//! instead of shipping garbage baselines.
//!
//! The parser is a deliberately small recursive-descent JSON reader: it
//! accepts exactly the JSON the writers emit (objects, arrays, strings with
//! `\`-escapes, numbers, booleans, null) and rejects everything else.

use std::collections::BTreeMap;
use std::path::Path;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object; insertion order is irrelevant for validation.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// A number (f64, as JSON numbers are).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// null.
    Null,
}

impl Json {
    /// The object's entry for `key`, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str upstream,
                    // so boundaries are valid).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("malformed number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(n))
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the JSON document"));
    }
    Ok(v)
}

/// The registered benchmark artifacts: file name → (expected `"bench"`
/// value, headline keys the top-level object must carry).
pub const EXPECTED: &[(&str, &str, &[&str])] = &[
    (
        "BENCH_engine.json",
        "engine_throughput",
        &["headline_speedup", "workloads"],
    ),
    (
        "BENCH_trace.json",
        "trace_io",
        &["binary_parse_speedup", "folding"],
    ),
    (
        "BENCH_runtime.json",
        "runtime_migration",
        &[
            "headline_online_speedup",
            "epoch_overhead_percent",
            "workloads",
        ],
    ),
    (
        "BENCH_multirank.json",
        "multirank_scaling",
        &[
            "headline_fanout_speedup",
            "headline_global_vs_partition",
            "rank_skew",
        ],
    ),
];

/// Validate one artifact's parsed document against its registration.
pub fn validate_document(name: &str, doc: &Json) -> Result<(), String> {
    let Some((_, bench, keys)) = EXPECTED.iter().find(|(n, _, _)| *n == name) else {
        return Err(format!(
            "{name}: unregistered bench artifact — add its headline keys to \
             hmsim_bench::schema::EXPECTED"
        ));
    };
    match doc.get("bench") {
        Some(Json::Str(s)) if s == bench => {}
        other => {
            return Err(format!(
                "{name}: top-level \"bench\" must be \"{bench}\", found {other:?}"
            ))
        }
    }
    for key in *keys {
        if doc.get(key).is_none() {
            return Err(format!("{name}: missing headline key \"{key}\""));
        }
    }
    Ok(())
}

/// Validate every `BENCH_*.json` in `dir`: each must parse as JSON and carry
/// its registered headline keys, and every registered artifact must exist.
/// Returns the validated file names.
pub fn validate_bench_dir(dir: &Path) -> Result<Vec<String>, String> {
    let mut validated = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {dir:?}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("{name}: unreadable: {e}"))?;
        let doc = parse_json(&text).map_err(|e| format!("{name}: {e}"))?;
        validate_document(&name, &doc)?;
        validated.push(name);
    }
    validated.sort();
    for (name, _, _) in EXPECTED {
        if !validated.iter().any(|v| v == name) {
            return Err(format!(
                "registered artifact {name} is missing from {dir:?}"
            ));
        }
    }
    Ok(validated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_shapes_the_writers_emit() {
        let doc = parse_json(
            "{\n  \"bench\": \"x\",\n  \"n\": -3.25e2,\n  \"ok\": true,\n  \
             \"list\": [1, \"two\\n\", null],\n  \"nested\": {\"a\": {}}\n}",
        )
        .unwrap();
        assert_eq!(doc.get("bench"), Some(&Json::Str("x".into())));
        assert_eq!(doc.get("n"), Some(&Json::Num(-325.0)));
        assert!(matches!(doc.get("list"), Some(Json::Array(v)) if v.len() == 3));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": 1").is_err());
        assert!(parse_json("{\"a\": 1e999}").is_err(), "infinite number");
    }

    #[test]
    fn validation_requires_the_headline_keys() {
        let good = parse_json(
            "{\"bench\": \"trace_io\", \"binary_parse_speedup\": 14.0, \"folding\": {}}",
        )
        .unwrap();
        validate_document("BENCH_trace.json", &good).unwrap();

        let wrong_bench = parse_json("{\"bench\": \"oops\", \"binary_parse_speedup\": 1}").unwrap();
        assert!(validate_document("BENCH_trace.json", &wrong_bench).is_err());

        let missing = parse_json("{\"bench\": \"trace_io\", \"folding\": {}}").unwrap();
        let err = validate_document("BENCH_trace.json", &missing).unwrap_err();
        assert!(err.contains("binary_parse_speedup"), "{err}");

        let unregistered = parse_json("{\"bench\": \"new\"}").unwrap();
        assert!(validate_document("BENCH_new.json", &unregistered).is_err());
    }

    /// The committed artifacts at the workspace root must always validate —
    /// this is the test CI's schema-check step runs after the bench smoke.
    #[test]
    fn schema_of_committed_bench_artifacts() {
        let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let validated = validate_bench_dir(root).expect("bench artifacts validate");
        assert_eq!(validated.len(), EXPECTED.len(), "{validated:?}");
    }
}
