//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (PEBS sample jitter, address
//! pattern generation, ASLR slides, workload irregularity) draws from a
//! [`DetRng`] derived from a master seed and a textual *stream label*. Two
//! runs with the same master seed therefore produce identical traces,
//! identical advisor decisions and identical figures, while distinct
//! components never share a stream.
//!
//! The generator is a self-contained xoshiro256++ (public domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, so the workspace carries no
//! external RNG dependency and the byte stream is stable across toolchains.

/// Deterministic random number generator with labelled sub-streams.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { seed, state }
    }

    /// The master seed this generator (or its ancestors) was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream identified by `label`.
    ///
    /// The derivation is a simple FNV-1a hash of the label folded into the
    /// master seed; it only needs to be stable and well-spread, not
    /// cryptographic.
    pub fn derive(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        DetRng::new(h)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range requires lo < hi ({lo} >= {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift bounded generation; the modulo bias at
        // 64-bit state is far below anything the simulator can observe.
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo + (wide >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Approximately normally distributed value (Irwin–Hall sum of 12
    /// uniforms), mean `mean`, standard deviation `std`.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.uniform()).sum();
        mean + (sum - 6.0) * std
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.uniform();
        -mean * (1.0 - u).ln()
    }

    /// Pick a uniformly random element index weighted by `weights`.
    /// Returns `None` if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_range(0, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_by_label() {
        let root = DetRng::new(7);
        let mut a = root.derive("pebs");
        let mut b = root.derive("aslr");
        let mut c = root.derive("pebs");
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_eq!(xs, zs);
    }

    #[test]
    fn uniform_range_stays_in_bounds() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn uniform_range_covers_whole_span() {
        let mut r = DetRng::new(17);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.uniform_range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let mut r = DetRng::new(11);
        for _ in 0..200 {
            let idx = r.weighted_index(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
        assert!(r.weighted_index(&[]).is_none());
        assert!(r.weighted_index(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn normal_is_centered() {
        let mut r = DetRng::new(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.normal(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut r = DetRng::new(5);
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| r.exponential(4.0)).collect();
        assert!(vals.iter().all(|v| *v >= 0.0));
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
