//! Opaque identifiers shared across the workspace.
//!
//! All identifiers are small integer newtypes. Keeping them distinct at the
//! type level prevents, for example, indexing the per-tier statistics table
//! with an object id.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw index.
            pub const fn from_index(i: usize) -> Self {
                Self(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of one memory tier (e.g. DDR = 0, MCDRAM = 1).
    TierId,
    "tier"
);

id_type!(
    /// Identifier of one live data object (one allocation) in the simulated
    /// address space.
    ObjectId,
    "obj"
);

id_type!(
    /// Identifier of an allocation *site*: a distinct (translated) call-stack
    /// leading to an allocation call. The paper keys all placement decisions
    /// by allocation site.
    SiteId,
    "site"
);

id_type!(
    /// Identifier of one MPI rank (simulated process).
    RankId,
    "rank"
);

id_type!(
    /// Identifier of one physical core of the simulated processor.
    CoreId,
    "core"
);

id_type!(
    /// Identifier of one hardware thread (SMT context).
    ThreadId,
    "thr"
);

impl TierId {
    /// Conventional id of the slow, large DDR tier.
    pub const DDR: TierId = TierId(0);
    /// Conventional id of the fast, small on-package MCDRAM tier.
    pub const MCDRAM: TierId = TierId(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_indices() {
        let o = ObjectId::from_index(42);
        assert_eq!(o.index(), 42);
        assert_eq!(format!("{o}"), "obj42");
        assert_eq!(format!("{o:?}"), "obj42");
    }

    #[test]
    fn tier_constants_are_distinct() {
        assert_ne!(TierId::DDR, TierId::MCDRAM);
        assert_eq!(TierId::DDR.index(), 0);
        assert_eq!(TierId::MCDRAM.index(), 1);
    }

    #[test]
    fn ids_usable_in_hash_sets() {
        let mut s = HashSet::new();
        s.insert(SiteId(1));
        s.insert(SiteId(2));
        s.insert(SiteId(1));
        assert_eq!(s.len(), 2);
    }
}
