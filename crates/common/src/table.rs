//! Plain-text table and CSV rendering.
//!
//! The experiment driver prints each of the paper's tables and figure data
//! series both as aligned text (for humans) and as CSV (for plotting). The
//! same helpers also back the Paramedir-style reports.

use std::fmt::Write as _;

/// A simple column-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows keep their extra cells (they simply widen the
    /// table).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<w$}  ");
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit(&mut out, &sep);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: fields containing commas, quotes or
    /// newlines are quoted, quotes are doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Escape one CSV field.
pub fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parse one CSV line into fields, honouring double-quoted fields with
/// embedded commas and doubled quotes.
pub fn csv_parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' && cur.is_empty() {
            in_quotes = true;
        } else if c == ',' {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

/// Format a float with a sensible number of significant digits for reports
/// (large values get thousands separators, small values keep precision).
pub fn fmt_metric(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1000.0 {
        group_thousands(&format!("{x:.0}"))
    } else if a >= 10.0 {
        format!("{x:.2}")
    } else if a >= 0.01 || a == 0.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

fn group_thousands(digits: &str) -> String {
    let (sign, digits) = match digits.strip_prefix('-') {
        Some(rest) => ("-", rest),
        None => ("", digits),
    };
    let mut out = String::new();
    let bytes: Vec<char> = digits.chars().collect();
    for (i, c) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*c);
    }
    format!("{sign}{out}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["app", "FOM", "speedup"]);
        t.row(["HPCG", "17.2", "1.78"]);
        t.row(["Lulesh", "10234", "1.30"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("HPCG"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_with_quotes() {
        let mut t = TextTable::new(["name", "note"]);
        t.row(["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        let parsed = csv_parse_line(lines[1]);
        assert_eq!(
            parsed,
            vec!["a,b".to_string(), "he said \"hi\"".to_string()]
        );
    }

    #[test]
    fn csv_parse_simple_line() {
        assert_eq!(
            csv_parse_line("a,b,c"),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
        assert_eq!(csv_parse_line(""), vec!["".to_string()]);
    }

    #[test]
    fn fmt_metric_ranges() {
        assert_eq!(fmt_metric(12345.0), "12,345");
        assert_eq!(fmt_metric(-12345.0), "-12,345");
        assert_eq!(fmt_metric(12.3456), "12.35");
        assert_eq!(fmt_metric(0.12345), "0.1235");
        assert_eq!(fmt_metric(0.0001234), "1.234e-4");
        assert_eq!(fmt_metric(0.0), "0.0000");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }
}
