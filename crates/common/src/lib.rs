//! # hmsim-common
//!
//! Shared foundation types for the hybrid-memory placement framework
//! reproduction (Servat et al., *Automating the Application Data Placement in
//! Hybrid Memory Systems*, CLUSTER 2017).
//!
//! This crate deliberately contains no simulation logic; it provides the
//! vocabulary the rest of the workspace speaks:
//!
//! * [`units`] — strongly-typed byte sizes, addresses, pages, times and rates;
//! * [`ids`] — opaque identifiers for tiers, data objects, allocation sites,
//!   ranks, cores and threads;
//! * [`rng`] — deterministic, seed-derivable random number generation so every
//!   experiment in the evaluation is reproducible bit-for-bit;
//! * [`stats`] — running statistics, high-water-mark tracking, histograms and
//!   percentile helpers used by the profiler, the allocators and the
//!   experiment driver;
//! * [`error`] — the shared error type;
//! * [`json`] — the minimal recursive-descent JSON reader shared by the
//!   bench schema check and the scenario loader (no serde in the offline
//!   build);
//! * [`par`] — the scoped-thread work-sharing fan-out used by the experiment
//!   grid and the multi-rank shard runner;
//! * [`table`] — plain-text table/CSV rendering used to print the paper's
//!   tables and figure series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod ids;
pub mod json;
pub mod par;
pub mod rng;
pub mod stats;
pub mod table;
pub mod units;

pub use error::{HmError, HmResult};
pub use ids::{CoreId, ObjectId, RankId, SiteId, ThreadId, TierId};
pub use par::parallel_map;
pub use rng::DetRng;
pub use stats::{HighWaterMark, Histogram, RunningStats};
pub use units::{Address, AddressRange, ByteSize, Cycles, Nanos, Page, PAGE_SIZE};
