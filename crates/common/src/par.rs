//! Tiny scoped-thread work-sharing helper used to parallelize independent
//! simulation runs (the app × budget × strategy grid) without external
//! dependencies.

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is a `parallel_map` worker, so nested
    /// calls run inline instead of multiplying the thread count.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Apply `f` to every item, fanning the work out over up to
/// `available_parallelism` scoped worker threads, and return the results in
/// input order.
///
/// Items are pulled from a shared queue, so heterogeneous run times (a SNAP
/// pipeline next to a CGPOP baseline) balance automatically. With zero or one
/// item, on a single-core machine, or when called from inside another
/// `parallel_map` worker (e.g. the per-app grid inside the full-evaluation
/// fan-out), the work runs inline — the machine is already saturated one
/// level up, and nesting would spawn up to cores² threads.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 || IN_WORKER.with(|w| w.get()) {
        return items.into_iter().map(f).collect();
    }

    // Shared LIFO queue of (original index, item); each worker drains it and
    // tags results with the index so the output order matches the input.
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut out = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue lock not poisoned").pop();
                        match next {
                            Some((i, item)) => out.push((i, f(item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker does not panic"))
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), |i: u64| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(parallel_map(Vec::<u32>::new(), |i| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i| i + 1), vec![8]);
    }

    #[test]
    fn nested_calls_run_inline_in_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::thread::ThreadId;
        let inner_spawns = AtomicUsize::new(0);
        parallel_map((0..8).collect::<Vec<u32>>(), |_| {
            let outer: ThreadId = std::thread::current().id();
            parallel_map((0..8).collect::<Vec<u32>>(), |_| {
                if std::thread::current().id() != outer {
                    inner_spawns.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(
            inner_spawns.load(Ordering::Relaxed),
            0,
            "nested parallel_map must not spawn additional workers"
        );
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        parallel_map((0..64).collect::<Vec<u32>>(), |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = ids.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(distinct > 1, "expected >1 worker, saw {distinct}");
        }
    }
}
