//! Strongly-typed units used throughout the simulator.
//!
//! The simulator manipulates three families of quantities that are easy to
//! confuse when they are all `u64`: *sizes* (bytes), *addresses* (positions in
//! the simulated virtual address space) and *times* (nanoseconds or cycles).
//! Each gets a newtype with the arithmetic that makes sense for it and nothing
//! more.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Range, Sub, SubAssign};

/// Size of a simulated virtual-memory page in bytes (4 KiB, matching the
/// granularity at which `hmem_advisor` packs objects into memory tiers).
pub const PAGE_SIZE: u64 = 4096;

// ---------------------------------------------------------------------------
// ByteSize
// ---------------------------------------------------------------------------

/// A size in bytes.
///
/// ```
/// use hmsim_common::units::ByteSize;
/// let a = ByteSize::from_mib(64);
/// assert_eq!(a.bytes(), 64 * 1024 * 1024);
/// assert_eq!(ByteSize::parse("64M").unwrap(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from kibibytes.
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Construct from mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Construct from gibibytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// The raw number of bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// This size expressed in mebibytes (floating point).
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// This size expressed in gibibytes (floating point).
    pub fn gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of whole pages needed to hold this many bytes (rounded up).
    pub fn pages(self) -> u64 {
        self.0.div_ceil(PAGE_SIZE)
    }

    /// Round this size up to a whole number of pages.
    pub fn page_aligned(self) -> ByteSize {
        ByteSize(self.pages() * PAGE_SIZE)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// `true` if this size is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Parse a human-readable size such as `"4K"`, `"64M"`, `"16G"`, `"123"`.
    ///
    /// Suffixes are case-insensitive and use binary (1024-based) multipliers,
    /// matching the conventions of `memkind`/`autohbw` configuration strings.
    pub fn parse(s: &str) -> Result<ByteSize, String> {
        let s = s.trim();
        if s.is_empty() {
            return Err("empty size string".to_string());
        }
        let (digits, suffix) = match s.find(|c: char| !c.is_ascii_digit() && c != '.') {
            Some(idx) => s.split_at(idx),
            None => (s, ""),
        };
        let value: f64 = digits
            .parse()
            .map_err(|e| format!("invalid size number {digits:?}: {e}"))?;
        let mult: u64 = match suffix.trim().to_ascii_lowercase().as_str() {
            "" | "b" => 1,
            "k" | "kb" | "kib" => 1024,
            "m" | "mb" | "mib" => 1024 * 1024,
            "g" | "gb" | "gib" => 1024 * 1024 * 1024,
            "t" | "tb" | "tib" => 1024u64.pow(4),
            other => return Err(format!("unknown size suffix {other:?}")),
        };
        Ok(ByteSize((value * mult as f64).round() as u64))
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 && b.is_multiple_of(1024 * 1024 * 1024) {
            write!(f, "{}GiB", b / (1024 * 1024 * 1024))
        } else if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", b / (1024 * 1024))
        } else if b >= 1024 && b.is_multiple_of(1024) {
            write!(f, "{}KiB", b / 1024)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

// ---------------------------------------------------------------------------
// Address / AddressRange / Page
// ---------------------------------------------------------------------------

/// A virtual address in the simulated process address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub u64);

impl Address {
    /// The numeric value of the address.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The page this address falls in.
    pub const fn page(self) -> Page {
        Page(self.0 / PAGE_SIZE)
    }

    /// Offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> Address {
        Address(self.0 + bytes)
    }

    /// The cache line (of `line_size` bytes) containing this address.
    pub fn cache_line(self, line_size: u64) -> u64 {
        self.0 / line_size
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl Add<u64> for Address {
    type Output = Address;
    fn add(self, rhs: u64) -> Address {
        Address(self.0 + rhs)
    }
}

impl Sub<Address> for Address {
    type Output = u64;
    fn sub(self, rhs: Address) -> u64 {
        self.0 - rhs.0
    }
}

/// A half-open range `[start, start+len)` of the simulated address space,
/// typically the extent of one allocated data object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddressRange {
    /// First address of the range.
    pub start: Address,
    /// Length of the range in bytes.
    pub len: ByteSize,
}

impl AddressRange {
    /// Create a new range.
    pub fn new(start: Address, len: ByteSize) -> Self {
        AddressRange { start, len }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> Address {
        self.start.offset(self.len.bytes())
    }

    /// Whether `addr` falls inside this range.
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &AddressRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Iterator over all pages touched by this range.
    pub fn pages(&self) -> impl Iterator<Item = Page> {
        let first = self.start.page().0;
        let last = if self.len.is_zero() {
            first
        } else {
            self.end()
                .offset(PAGE_SIZE - 1)
                .page()
                .0
                .saturating_sub(1)
                .max(first)
        };
        (first..=last).map(Page)
    }

    /// The underlying `Range<u64>` of raw addresses.
    pub fn raw(&self) -> Range<u64> {
        self.start.0..self.end().0
    }
}

/// A virtual page number (address divided by [`PAGE_SIZE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Page(pub u64);

impl Page {
    /// The first address of this page.
    pub const fn base(self) -> Address {
        Address(self.0 * PAGE_SIZE)
    }
}

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

/// A time duration or timestamp in nanoseconds (floating point so that
/// sub-nanosecond analytical costs accumulate without truncation).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Debug)]
pub struct Nanos(pub f64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0.0);

    /// From seconds.
    pub fn from_secs(s: f64) -> Nanos {
        Nanos(s * 1e9)
    }

    /// From microseconds.
    pub fn from_micros(us: f64) -> Nanos {
        Nanos(us * 1e3)
    }

    /// From milliseconds.
    pub fn from_millis(ms: f64) -> Nanos {
        Nanos(ms * 1e6)
    }

    /// As seconds.
    pub fn secs(self) -> f64 {
        self.0 / 1e9
    }

    /// As microseconds.
    pub fn micros(self) -> f64 {
        self.0 / 1e3
    }

    /// As milliseconds.
    pub fn millis(self) -> f64 {
        self.0 / 1e6
    }

    /// Raw nanoseconds.
    pub fn nanos(self) -> f64 {
        self.0
    }

    /// Largest of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Smallest of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}s", self.secs())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}ms", self.millis())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}us", self.micros())
        } else {
            write!(f, "{:.1}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<f64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: f64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl std::iter::Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

/// A count of processor clock cycles.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Convert to wall-clock time at the given core frequency (Hz).
    pub fn at_frequency(self, hz: f64) -> Nanos {
        Nanos(self.0 as f64 / hz * 1e9)
    }

    /// Raw cycle count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesize_constructors_agree() {
        assert_eq!(ByteSize::from_kib(1).bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).bytes(), 1024 * 1024);
        assert_eq!(ByteSize::from_gib(1).bytes(), 1024 * 1024 * 1024);
    }

    #[test]
    fn bytesize_parse_suffixes() {
        assert_eq!(ByteSize::parse("4096").unwrap().bytes(), 4096);
        assert_eq!(ByteSize::parse("4K").unwrap(), ByteSize::from_kib(4));
        assert_eq!(ByteSize::parse("64m").unwrap(), ByteSize::from_mib(64));
        assert_eq!(ByteSize::parse("16GiB").unwrap(), ByteSize::from_gib(16));
        assert_eq!(ByteSize::parse("1.5K").unwrap().bytes(), 1536);
        assert!(ByteSize::parse("").is_err());
        assert!(ByteSize::parse("12Q").is_err());
    }

    #[test]
    fn bytesize_display_round_trips_units() {
        assert_eq!(ByteSize::from_mib(64).to_string(), "64MiB");
        assert_eq!(ByteSize::from_bytes(100).to_string(), "100B");
        assert_eq!(ByteSize::from_gib(16).to_string(), "16GiB");
    }

    #[test]
    fn bytesize_pages_round_up() {
        assert_eq!(ByteSize::from_bytes(1).pages(), 1);
        assert_eq!(ByteSize::from_bytes(4096).pages(), 1);
        assert_eq!(ByteSize::from_bytes(4097).pages(), 2);
        assert_eq!(ByteSize::ZERO.pages(), 0);
        assert_eq!(ByteSize::from_bytes(5000).page_aligned().bytes(), 8192);
    }

    #[test]
    fn address_page_arithmetic() {
        let a = Address(PAGE_SIZE * 3 + 17);
        assert_eq!(a.page(), Page(3));
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.offset(10).value(), PAGE_SIZE * 3 + 27);
        assert_eq!(a.cache_line(64), (PAGE_SIZE * 3 + 17) / 64);
    }

    #[test]
    fn address_range_contains_and_overlaps() {
        let r = AddressRange::new(Address(1000), ByteSize::from_bytes(100));
        assert!(r.contains(Address(1000)));
        assert!(r.contains(Address(1099)));
        assert!(!r.contains(Address(1100)));
        assert!(!r.contains(Address(999)));

        let r2 = AddressRange::new(Address(1050), ByteSize::from_bytes(10));
        let r3 = AddressRange::new(Address(1100), ByteSize::from_bytes(10));
        assert!(r.overlaps(&r2));
        assert!(!r.overlaps(&r3));
    }

    #[test]
    fn address_range_page_iteration() {
        let r = AddressRange::new(Address(0), ByteSize::from_bytes(PAGE_SIZE * 2 + 1));
        let pages: Vec<Page> = r.pages().collect();
        assert_eq!(pages, vec![Page(0), Page(1), Page(2)]);

        let single = AddressRange::new(Address(10), ByteSize::from_bytes(8));
        assert_eq!(single.pages().count(), 1);
    }

    #[test]
    fn nanos_conversions() {
        let t = Nanos::from_secs(1.5);
        assert!((t.millis() - 1500.0).abs() < 1e-9);
        assert!((t.micros() - 1.5e6).abs() < 1e-6);
        assert_eq!(format!("{}", Nanos::from_micros(12.0)), "12.000us");
    }

    #[test]
    fn cycles_to_time() {
        let c = Cycles(1_400_000_000);
        let t = c.at_frequency(1.4e9);
        assert!((t.secs() - 1.0).abs() < 1e-9);
    }
}
