//! A deliberately small recursive-descent JSON reader shared by every
//! hand-rolled serialisation surface in the workspace.
//!
//! The offline build carries no serde, so the places that speak JSON — the
//! `BENCH_*.json` schema check in `hmsim-bench` and the `.scn` scenario
//! files of the `hmem-core` Scenario layer — write their documents through
//! hand-rolled formatting and read them back through this one parser. It
//! accepts exactly the JSON those writers emit (objects, arrays, strings
//! with `\`-escapes, finite numbers, booleans, null) and rejects everything
//! else, including trailing garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// An object; insertion order is irrelevant for validation.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// A number (f64, as JSON numbers are).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// null.
    Null,
}

impl Json {
    /// The object's entry for `key`, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape `text` as the body of a JSON string literal (no surrounding
/// quotes). The escape set mirrors what [`parse_json`] understands: `"`,
/// `\`, the C0 control characters (as `\n`/`\r`/`\t` or `\u00XX`), and
/// everything else verbatim UTF-8.
pub fn escape_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str upstream,
                    // so boundaries are valid).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("malformed number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(n))
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the JSON document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_the_shapes_the_writers_emit() {
        let doc = parse_json(
            "{\n  \"bench\": \"x\",\n  \"n\": -3.25e2,\n  \"ok\": true,\n  \
             \"list\": [1, \"two\\n\", null],\n  \"nested\": {\"a\": {}}\n}",
        )
        .unwrap();
        assert_eq!(doc.get("bench"), Some(&Json::Str("x".into())));
        assert_eq!(doc.get("n"), Some(&Json::Num(-325.0)));
        assert!(matches!(doc.get("list"), Some(Json::Array(v)) if v.len() == 3));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": 1").is_err());
        assert!(parse_json("{\"a\": 1e999}").is_err(), "infinite number");
    }

    #[test]
    fn escaped_strings_survive_a_round_trip() {
        let hostile = "quote\" slash\\ nl\n cr\r tab\t nul\u{1} unicode é✓ 名前";
        let doc = format!("{{\"k\": \"{}\"}}", escape_str(hostile));
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(parsed.get("k").and_then(Json::as_str), Some(hostile));
    }

    #[test]
    fn accessors_distinguish_value_kinds() {
        let doc = parse_json("{\"s\": \"v\", \"n\": 2.5}").unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(doc.get("n").and_then(Json::as_num), Some(2.5));
        assert_eq!(doc.get("s").and_then(Json::as_num), None);
        assert_eq!(doc.get("missing"), None);
    }
}
