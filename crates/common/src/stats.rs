//! Running statistics, high-water-mark tracking and histograms.
//!
//! These helpers back the book-keeping that the paper's `auto-hbwmalloc`
//! library performs (allocation counts, average allocation size, observed
//! high-water mark) as well as the experiment driver's summaries.

use crate::units::ByteSize;

/// Incrementally maintained summary statistics (count, mean, variance, min,
/// max) using Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New, empty statistics.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Tracks the current value and the highest value ever reached of a byte
/// quantity — the *high-water mark* (HWM) reported per allocator by
/// `auto-hbwmalloc` and per process in Table I of the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct HighWaterMark {
    current: u64,
    peak: u64,
}

impl HighWaterMark {
    /// New tracker at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account for an allocation of `size` bytes.
    pub fn grow(&mut self, size: ByteSize) {
        self.current += size.bytes();
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Account for a deallocation of `size` bytes.
    pub fn shrink(&mut self, size: ByteSize) {
        self.current = self.current.saturating_sub(size.bytes());
    }

    /// Currently live bytes.
    pub fn current(&self) -> ByteSize {
        ByteSize::from_bytes(self.current)
    }

    /// Highest number of live bytes observed.
    pub fn peak(&self) -> ByteSize {
        ByteSize::from_bytes(self.peak)
    }
}

/// A fixed-bucket histogram over `f64` observations, used for sample latency
/// distributions and for the Folding timeline.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram covering `[lo, hi)` with `n` equally sized buckets.
    ///
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The centre value of bucket `i`.
    pub fn bucket_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from the bucket counts.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(self.bucket_center(i));
            }
        }
        Some(self.hi)
    }
}

/// Compute the exact percentile of a data set (interpolated, like numpy's
/// `percentile` with linear interpolation). Returns `None` on empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Geometric mean of a set of strictly positive values (`None` if empty or if
/// any value is non-positive).
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_matches_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = RunningStats::new();
        data.iter().for_each(|x| whole.record(*x));

        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        data[..40].iter().for_each(|x| a.record(*x));
        data[40..].iter().for_each(|x| b.record(*x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn hwm_tracks_peak() {
        let mut h = HighWaterMark::new();
        h.grow(ByteSize::from_mib(10));
        h.grow(ByteSize::from_mib(20));
        h.shrink(ByteSize::from_mib(25));
        h.grow(ByteSize::from_mib(2));
        assert_eq!(h.peak(), ByteSize::from_mib(30));
        assert_eq!(h.current(), ByteSize::from_mib(7));
    }

    #[test]
    fn hwm_shrink_saturates() {
        let mut h = HighWaterMark::new();
        h.grow(ByteSize::from_kib(4));
        h.shrink(ByteSize::from_mib(1));
        assert_eq!(h.current(), ByteSize::ZERO);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.buckets().iter().sum::<u64>(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() <= 1.0, "median was {median}");
    }

    #[test]
    fn histogram_under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-1.0);
        h.record(2.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets().iter().sum::<u64>(), 1);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
    }
}
