//! The shared error type used across the workspace.

use std::fmt;

/// Result alias using [`HmError`].
pub type HmResult<T> = Result<T, HmError>;

/// Errors produced anywhere in the hybrid-memory framework.
#[derive(Debug, Clone, PartialEq)]
pub enum HmError {
    /// A configuration value was missing, malformed or inconsistent.
    Config(String),
    /// A memory tier ran out of capacity and the request could not fall back.
    OutOfMemory {
        /// Human-readable tier name.
        tier: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available in that tier.
        available: u64,
    },
    /// An address was not backed by any live allocation.
    UnknownAddress(u64),
    /// A trace file or report could not be parsed.
    Parse {
        /// Line number (1-based) where the problem was found, if known.
        line: Option<usize>,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error, stringified (keeps the error type `Clone`/`PartialEq`).
    Io(String),
    /// A request referenced an entity (object, site, tier, app) that does not
    /// exist.
    NotFound(String),
    /// An operation was attempted in an invalid state (e.g. freeing an
    /// address twice, finishing a phase that was never started).
    InvalidState(String),
}

impl fmt::Display for HmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmError::Config(msg) => write!(f, "configuration error: {msg}"),
            HmError::OutOfMemory {
                tier,
                requested,
                available,
            } => write!(
                f,
                "out of memory in tier {tier}: requested {requested} bytes, {available} available"
            ),
            HmError::UnknownAddress(addr) => {
                write!(
                    f,
                    "address 0x{addr:x} does not belong to any live allocation"
                )
            }
            HmError::Parse { line, message } => match line {
                Some(line) => write!(f, "parse error at line {line}: {message}"),
                None => write!(f, "parse error: {message}"),
            },
            HmError::Io(msg) => write!(f, "I/O error: {msg}"),
            HmError::NotFound(what) => write!(f, "not found: {what}"),
            HmError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for HmError {}

impl From<std::io::Error> for HmError {
    fn from(e: std::io::Error) -> Self {
        HmError::Io(e.to_string())
    }
}

impl HmError {
    /// Convenience constructor for parse errors without a line number.
    pub fn parse(message: impl Into<String>) -> Self {
        HmError::Parse {
            line: None,
            message: message.into(),
        }
    }

    /// Convenience constructor for parse errors at a specific line.
    pub fn parse_at(line: usize, message: impl Into<String>) -> Self {
        HmError::Parse {
            line: Some(line),
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = HmError::OutOfMemory {
            tier: "MCDRAM".to_string(),
            requested: 1024,
            available: 512,
        };
        let s = e.to_string();
        assert!(s.contains("MCDRAM"));
        assert!(s.contains("1024"));
        assert!(s.contains("512"));

        assert!(HmError::UnknownAddress(0xdead)
            .to_string()
            .contains("0xdead"));
        assert!(HmError::parse_at(7, "bad field")
            .to_string()
            .contains("line 7"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: HmError = io.into();
        assert!(matches!(e, HmError::Io(_)));
    }
}
