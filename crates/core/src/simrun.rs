//! Execution of one application model under one placement approach.
//!
//! The runner builds the simulated process (address space, tier allocators,
//! program image with ASLR), performs every allocation the application model
//! prescribes through the chosen [`AllocationRouter`], costs each kernel of
//! each iteration with the analytical machine engine, and optionally attaches
//! the Extrae-style profiler to produce a trace. It is used both for the
//! profiling run (step 1) and for the final, placement-honouring run (step 4)
//! as well as for every baseline.

use auto_hbwmalloc::{AllocationRouter, ApproachKind};
use hmsim_apps::{AllocTiming, AppSpec};
use hmsim_callstack::{AslrLayout, ProgramImage, Translator, Unwinder};
use hmsim_common::{Address, ByteSize, DetRng, HmResult, Nanos, ObjectId, TierId};
use hmsim_heap::{ObjectKind, ProcessHeap};
use hmsim_machine::{
    AnalyticEngine, MachineConfig, MemoryMode, ObjectTraffic, PerfCounters, PhaseProfile, Placement,
};
use hmsim_profiler::{Profiler, ProfilerConfig};
use hmsim_runtime::{
    ArbiterPolicy, MigrationCostModel, NodeArbiter, ObjectPlacement, OnlineConfig,
    PlacementController,
};
use hmsim_trace::{TraceFile, TraceMetadata};
use std::collections::HashMap;

/// Configuration of one run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Machine to run on (memory mode matters: cache-mode baselines flip it).
    pub machine: MachineConfig,
    /// Per-rank MCDRAM capacity available to the allocators (the budget for
    /// framework runs, the FCFS share for numactl/autohbw runs). Ignored in
    /// cache mode.
    pub mcdram_capacity: ByteSize,
    /// Override the number of main-loop iterations (None = the spec's value).
    pub iterations_override: Option<u32>,
    /// Attach the profiler and produce a trace.
    pub profile: Option<ProfilerConfig>,
    /// Knobs of the online migration runtime, used when the run executes
    /// under [`auto_hbwmalloc::PlacementApproach::Online`] (None =
    /// defaults). The analytic runner treats one main-loop iteration as one
    /// epoch.
    pub online: Option<OnlineConfig>,
    /// How the node-level MCDRAM pool (`mcdram_capacity × ranks`) is
    /// arbitrated between ranks for online runs. The per-epoch migration
    /// budget is drawn from a [`NodeArbiter`] rather than the raw per-rank
    /// capacity; the default static partition hands every rank exactly
    /// `mcdram_capacity` back, reproducing the per-rank budgets of the
    /// Figure-4 grid. The analytic runner models one process with symmetric
    /// peers — asymmetric (rank-skew) arbitration lives in the trace-driven
    /// multi-rank runner (`hmsim_runtime::multirank`).
    pub rank_policy: ArbiterPolicy,
    /// Master seed.
    pub seed: u64,
}

impl RunConfig {
    /// A flat-mode run on the paper's KNL node with the given per-rank
    /// MCDRAM capacity.
    pub fn flat(mcdram_capacity: ByteSize) -> RunConfig {
        RunConfig {
            machine: MachineConfig::knl_7250(),
            mcdram_capacity,
            iterations_override: None,
            profile: None,
            online: None,
            rank_policy: ArbiterPolicy::default(),
            seed: 0xC0FFEE,
        }
    }

    /// A cache-mode run.
    pub fn cache_mode() -> RunConfig {
        RunConfig {
            machine: MachineConfig::knl_7250().with_memory_mode(MemoryMode::Cache),
            mcdram_capacity: ByteSize::ZERO,
            iterations_override: None,
            profile: None,
            online: None,
            rank_policy: ArbiterPolicy::default(),
            seed: 0xC0FFEE,
        }
    }

    /// Attach a profiler.
    pub fn with_profiling(mut self, config: ProfilerConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// Override the iteration count (useful to keep tests fast).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations_override = Some(iterations);
        self
    }

    /// Configure the online migration runtime for this run.
    pub fn with_online(mut self, online: OnlineConfig) -> Self {
        self.online = Some(online);
        self
    }

    /// Choose how the node-level MCDRAM pool is arbitrated between ranks.
    pub fn with_rank_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.rank_policy = policy;
        self
    }
}

/// Outcome of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The application's figure of merit (higher is better).
    pub fom: f64,
    /// Total wall-clock time of the run.
    pub total_time: Nanos,
    /// Time spent in the main iteration loop only.
    pub loop_time: Nanos,
    /// High-water mark of dynamically allocated MCDRAM (per process), the
    /// quantity plotted in the middle column of Figure 4.
    pub mcdram_hwm: ByteSize,
    /// Aggregated hardware counters (node level).
    pub counters: PerfCounters,
    /// Per-kernel average time per iteration.
    pub kernel_times: Vec<(String, Nanos)>,
    /// Monitoring overhead fraction when profiling was attached.
    pub monitoring_overhead: f64,
    /// CPU time spent inside allocators and the interposition library.
    pub allocator_time: Nanos,
    /// Latency charged for online object migrations (zero for every static
    /// approach).
    pub migration_time: Nanos,
    /// Object migrations the online runtime executed.
    pub migrations: u64,
    /// Planned migrations the heap rejected (capacity races). The controller
    /// plans against the same occupancy the heap enforces, so anything
    /// non-zero here deserves investigation.
    pub migrations_rejected: u64,
    /// The trace, when profiling was attached.
    pub trace: Option<TraceFile>,
    /// The placement approach that produced this result (typed; its
    /// `Display` is the single source of the figure-legend names).
    pub approach: ApproachKind,
}

/// The runner for one (application, approach) pair.
pub struct AppRun<'a> {
    spec: &'a AppSpec,
    config: RunConfig,
}

struct LiveChurn {
    object_ids: Vec<(ObjectId, Address)>,
}

impl<'a> AppRun<'a> {
    /// Create a runner.
    pub fn new(spec: &'a AppSpec, config: RunConfig) -> Self {
        AppRun { spec, config }
    }

    /// Build the program image for this application: every function named in
    /// an allocation site becomes a symbol of the main module.
    pub fn program_image(spec: &AppSpec) -> ProgramImage {
        let mut functions: Vec<&str> = Vec::new();
        for o in &spec.objects {
            for f in o.site {
                if !functions.contains(f)
                    && !matches!(
                        *f,
                        "main"
                            | "initialize"
                            | "allocate_state"
                            | "finalize"
                            | "malloc"
                            | "kmp_malloc"
                            | "MPI_Init"
                            | "MPI_Allreduce"
                            | "MPI_Finalize"
                            | "calloc"
                            | "realloc"
                            | "posix_memalign"
                            | "free"
                            | "backtrace"
                            | "__kmp_fork_call"
                            | "__kmp_invoke_microtask"
                    )
                {
                    functions.push(f);
                }
            }
        }
        for k in &spec.kernels {
            if !functions.contains(&k.name) {
                functions.push(k.name);
            }
        }
        ProgramImage::synthetic_hpc_app(spec.name, &functions)
    }

    /// Build the unwinder/translator pair for one process instance of this
    /// application (a fresh ASLR layout per seed).
    pub fn callstack_machinery(spec: &AppSpec, seed: u64) -> (Unwinder, Translator) {
        let image = Self::program_image(spec);
        let mut rng = DetRng::new(seed).derive(&format!("aslr/{}", spec.name));
        let aslr = AslrLayout::randomized(&image, &mut rng);
        (
            Unwinder::new(image.clone(), aslr.clone()),
            Translator::new(image, aslr),
        )
    }

    fn cores_used(&self) -> u32 {
        let requested = self.spec.ranks * self.spec.threads_per_rank;
        requested.min(self.config.machine.cores * self.config.machine.threads_per_core)
    }

    /// Execute the run with the given router.
    pub fn execute(&self, mut router: AllocationRouter) -> HmResult<RunResult> {
        let spec = self.spec;
        let machine = &self.config.machine;
        let engine = AnalyticEngine::new(machine);
        let mut heap = ProcessHeap::new(machine)?;
        if machine.memory_mode == MemoryMode::Flat && !self.config.mcdram_capacity.is_zero() {
            heap.set_capacity_cap(TierId::MCDRAM, self.config.mcdram_capacity)?;
        } else if machine.memory_mode != MemoryMode::Flat {
            heap.set_capacity_cap(TierId::MCDRAM, machine.flat_mcdram_capacity())?;
        }

        let mut profiler = self.config.profile.clone().map(|cfg| {
            Profiler::new(
                TraceMetadata {
                    application: spec.name.to_string(),
                    ranks: spec.ranks,
                    threads_per_rank: spec.threads_per_rank,
                    rank: 0,
                    ..Default::default()
                },
                cfg,
            )
        });

        let mut now = Nanos::ZERO;
        let mut allocator_time = Nanos::ZERO;

        // The online migration runtime: the controller re-plans placement
        // after every main-loop iteration (the analytic engine's natural
        // epoch), and every move is charged bytes × per-tier bandwidth. The
        // per-epoch budget is drawn from the node arbiter over the whole
        // node's MCDRAM pool rather than taken as a fixed per-process
        // number; under the default static partition the arbiter hands back
        // exactly `mcdram_capacity` every epoch.
        let mut online = (router.kind() == ApproachKind::Online).then(|| {
            let cfg = self.config.online.clone().unwrap_or_default();
            let cost = MigrationCostModel::with_streams(machine, cfg.migration_streams);
            let ranks = spec.ranks.max(1);
            let node_pool = self.config.mcdram_capacity * u64::from(ranks);
            let arbiter = NodeArbiter::new(self.config.rank_policy, node_pool, ranks);
            (PlacementController::new(cfg), cost, arbiter)
        });
        let mut migration_time = Nanos::ZERO;
        let mut migrations = 0u64;
        let mut migrations_rejected = 0u64;
        let mut mcdram_migrated_peak = ByteSize::ZERO;

        // Canonical (ASLR-independent) site keys for every dynamic object:
        // derived through the same unwind/translate machinery the framework
        // uses, so the profiling trace, the advisor report and the
        // interposition library all speak the same site language.
        let (site_unwinder, site_translator) = Self::callstack_machinery(spec, self.config.seed);
        let canonical_sites: HashMap<&str, hmsim_callstack::SiteKey> = spec
            .objects
            .iter()
            .filter(|o| o.kind == ObjectKind::Dynamic && !o.site.is_empty())
            .filter_map(|o| {
                let (raw, _) = site_unwinder.unwind(o.site).ok()?;
                let (translated, _) = site_translator.translate(&raw);
                Some((o.name, translated.site_key()))
            })
            .collect();

        // ------------------------------------------------------------------
        // Initialisation: static/stack definitions and init-time allocations
        // in the order the application performs them.
        // ------------------------------------------------------------------
        let mut object_ids: HashMap<&str, ObjectId> = HashMap::new();
        for o in &spec.objects {
            match o.kind {
                ObjectKind::Static => {
                    let tier = router.static_tier(&heap, o.size);
                    let (id, _) = heap.define_static(o.name, o.size, tier, now)?;
                    object_ids.insert(o.name, id);
                    if let Some(p) = profiler.as_mut() {
                        if let Some(obj) = heap.registry().get(id) {
                            p.record_alloc(obj, now);
                        }
                    }
                }
                ObjectKind::Stack => {
                    let tier = router.stack_tier(&heap, o.size);
                    let (id, _) = heap.define_stack(o.name, o.size, tier, now)?;
                    object_ids.insert(o.name, id);
                }
                ObjectKind::Dynamic => {
                    if matches!(o.timing, AllocTiming::Init) {
                        let (id, _, cost) = router.malloc(
                            &mut heap,
                            o.size,
                            o.name,
                            o.site,
                            canonical_sites.get(o.name),
                            now,
                        )?;
                        allocator_time += cost;
                        object_ids.insert(o.name, id);
                        if let Some(p) = profiler.as_mut() {
                            if let Some(obj) = heap.registry().get(id) {
                                p.record_alloc(obj, now);
                            }
                        }
                    }
                }
            }
        }
        now += spec.init_time;

        // ------------------------------------------------------------------
        // Main iteration loop.
        // ------------------------------------------------------------------
        let iterations = self
            .config
            .iterations_override
            .unwrap_or(spec.iterations)
            .max(1);
        let ranks = u64::from(spec.ranks);
        let cores = self.cores_used();
        let node_instructions = spec.instructions_per_iteration * ranks;
        let node_misses = spec.misses_per_iteration * ranks;
        let working_set = ByteSize::from_bytes(spec.hot_working_set.bytes() * ranks);

        let mut counters = PerfCounters::default();
        let mut loop_time = Nanos::ZERO;
        let mut kernel_time_acc: Vec<(String, Nanos)> = if spec.kernels.is_empty() {
            vec![("iteration".to_string(), Nanos::ZERO)]
        } else {
            spec.kernels
                .iter()
                .map(|k| (k.name.to_string(), Nanos::ZERO))
                .collect()
        };

        for _iter in 0..iterations {
            if let Some(p) = profiler.as_mut() {
                p.phase_begin("iteration", now);
            }
            // Per-object LLC misses observed this iteration (the heat the
            // online controller consumes at the epoch boundary).
            let mut iter_heat: HashMap<ObjectId, u64> = HashMap::new();

            // Per-iteration churn allocations.
            let mut churn = LiveChurn {
                object_ids: Vec::new(),
            };
            for o in &spec.objects {
                if let AllocTiming::PerIteration {
                    allocs_per_iteration,
                } = o.timing
                {
                    for i in 0..allocs_per_iteration {
                        let (id, range, cost) = router.malloc(
                            &mut heap,
                            if i == 0 { o.size } else { o.min_size },
                            o.name,
                            o.site,
                            canonical_sites.get(o.name),
                            now,
                        )?;
                        allocator_time += cost;
                        churn.object_ids.push((id, range.start));
                        if i == 0 {
                            object_ids.insert(o.name, id);
                        }
                        if let Some(p) = profiler.as_mut() {
                            if let Some(obj) = heap.registry().get(id) {
                                p.record_alloc(obj, now);
                            }
                        }
                    }
                }
            }

            // Placement snapshot for this iteration.
            let mut placement = Placement::all_in(TierId::DDR);
            for (name, id) in &object_ids {
                if let Some(obj) = heap.registry().get(*id) {
                    let _ = name;
                    placement.place(*id, obj.tier);
                }
            }

            // Kernels: (name, instruction share, miss share, object weights).
            type KernelRow<'s> = (String, f64, f64, Vec<(&'s str, f64)>);
            let kernel_list: Vec<KernelRow<'_>> = if spec.kernels.is_empty() {
                vec![("iteration".to_string(), 1.0, 1.0, Vec::new())]
            } else {
                spec.kernels
                    .iter()
                    .map(|k| {
                        (
                            k.name.to_string(),
                            k.instruction_share,
                            k.miss_share,
                            k.object_weights.to_vec(),
                        )
                    })
                    .collect()
            };

            for (ki, (kname, instr_share, miss_share, weights)) in kernel_list.iter().enumerate() {
                // Distribute the kernel's misses over its objects.
                let kernel_misses_node = (node_misses as f64 * miss_share) as u64;
                // The profiler observes one monitored hardware thread's share
                // of the misses (each thread has its own PEBS counter), which
                // is what keeps Table I's sample counts in the tens of
                // thousands rather than the millions.
                let kernel_misses_process = (spec.misses_per_iteration as f64 * miss_share
                    / f64::from(spec.threads_per_rank.max(1)))
                    as u64;
                let distribution: Vec<(&str, f64)> = if weights.is_empty() {
                    let total: f64 = spec.objects.iter().map(|o| o.miss_share).sum();
                    spec.objects
                        .iter()
                        .map(|o| (o.name, o.miss_share / total.max(1e-12)))
                        .collect()
                } else {
                    let total: f64 = weights.iter().map(|(_, w)| w).sum();
                    weights
                        .iter()
                        .map(|(n, w)| (*n, w / total.max(1e-12)))
                        .collect()
                };

                let mut traffic = Vec::new();
                let mut profiler_misses: Vec<(ObjectId, u64)> = Vec::new();
                for (obj_name, frac) in &distribution {
                    let Some(id) = object_ids.get(obj_name) else {
                        continue;
                    };
                    let spec_obj = spec.objects.iter().find(|o| o.name == *obj_name);
                    let irregular = spec_obj.map(|o| o.irregular).unwrap_or(0.0);
                    let node = (kernel_misses_node as f64 * frac) as u64;
                    let process = (kernel_misses_process as f64 * frac) as u64;
                    traffic.push(ObjectTraffic::new(*id, node, irregular));
                    if online.is_some() {
                        *iter_heat.entry(*id).or_insert(0) += node;
                    }
                    profiler_misses.push((*id, process));
                }

                let phase = PhaseProfile {
                    name: kname.clone(),
                    instructions: (node_instructions as f64 * instr_share) as u64,
                    cores_used: cores,
                    traffic,
                };
                let cost = engine.cost_phase(&phase, &placement, working_set);
                counters.accumulate(&cost.counters);

                if let Some(p) = profiler.as_mut() {
                    p.phase_begin(kname.clone(), now);
                    let refs: Vec<(&hmsim_heap::DataObject, u64)> = profiler_misses
                        .iter()
                        .filter_map(|(id, m)| heap.registry().get(*id).map(|o| (o, *m)))
                        .collect();
                    p.record_interval(
                        now,
                        cost.time,
                        (spec.instructions_per_iteration as f64 * instr_share) as u64,
                        &refs,
                    );
                    p.phase_end(kname.clone(), now + cost.time);
                }

                now += cost.time;
                loop_time += cost.time;
                let slot = ki.min(kernel_time_acc.len().saturating_sub(1));
                kernel_time_acc[slot].1 += cost.time;
            }

            // Free the churn objects.
            for (id, addr) in churn.object_ids {
                if let Some(p) = profiler.as_mut() {
                    p.record_free(id, addr, now);
                }
                let (_, cost) = router.free(&mut heap, addr, now)?;
                allocator_time += cost;
            }

            // Online epoch boundary: fold this iteration's misses into the
            // controller's heat, re-run the selection against the budget and
            // execute the migration delta. The moved bytes are charged at
            // per-tier bandwidth and serialise into the loop time, exactly
            // like allocator overhead does.
            if let Some((controller, cost_model, arbiter)) = online.as_mut() {
                for (id, misses) in iter_heat.drain() {
                    controller.record(id, misses as f64);
                }
                let live = ObjectPlacement::snapshot_live(&heap);
                let epoch_budget = arbiter.analytic_budget(heap.tier_occupancy(TierId::MCDRAM));
                let plan = controller.end_epoch(&live, TierId::MCDRAM, epoch_budget);
                let mut epoch_cost = Nanos::ZERO;
                for (ids, to) in [
                    (&plan.demotions, TierId::DDR),
                    (&plan.promotions, TierId::MCDRAM),
                ] {
                    for id in ids {
                        let from = heap.registry().get(*id).map(|o| o.tier).unwrap_or(to);
                        match heap.migrate_object(*id, to) {
                            Ok(bytes) => {
                                epoch_cost += cost_model.charge(bytes, from, to);
                                migrations += 1;
                            }
                            // The controller plans against the same occupancy
                            // the heap enforces, so this is a should-not-
                            // happen path — but it must stay observable.
                            Err(_) => migrations_rejected += 1,
                        }
                    }
                }
                now += epoch_cost;
                loop_time += epoch_cost;
                migration_time += epoch_cost;
                mcdram_migrated_peak =
                    mcdram_migrated_peak.max(heap.tier_occupancy(TierId::MCDRAM));
            }

            if let Some(p) = profiler.as_mut() {
                p.phase_end("iteration", now);
            }
        }

        // ------------------------------------------------------------------
        // Wrap-up: totals, FOM, overheads.
        // ------------------------------------------------------------------
        // Allocator/interposition CPU time is serial per process.
        let interposition = router.interposition_overhead();
        let per_process_overhead = allocator_time + interposition;
        loop_time += per_process_overhead;
        now += per_process_overhead;

        let monitoring_overhead = profiler
            .as_ref()
            .map(|p| p.overhead_fraction(loop_time))
            .unwrap_or(0.0);
        let monitored_loop_time = loop_time * (1.0 + monitoring_overhead);
        let total_time = spec.init_time + monitored_loop_time;

        let fom = spec.fom_work_per_iteration * f64::from(iterations)
            / monitored_loop_time.secs().max(1e-12);

        let kernel_times = kernel_time_acc
            .into_iter()
            .map(|(name, t)| (name, t / f64::from(iterations)))
            .collect();

        // Online runs never allocate in MCDRAM, so their footprint shows up
        // as migrated residency rather than allocator HWM.
        let mcdram_hwm = heap
            .allocator(TierId::MCDRAM)
            .map(|a| a.hwm())
            .unwrap_or(ByteSize::ZERO)
            .max(mcdram_migrated_peak);

        Ok(RunResult {
            fom,
            total_time,
            loop_time: monitored_loop_time,
            mcdram_hwm,
            counters,
            kernel_times,
            monitoring_overhead,
            allocator_time: per_process_overhead,
            migration_time,
            migrations,
            migrations_rejected,
            trace: profiler.map(|p| p.finish()),
            approach: router.kind(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auto_hbwmalloc::PlacementApproach;
    use hmsim_apps::app_by_name;

    #[test]
    fn ddr_run_produces_sane_results() {
        let spec = app_by_name("miniFE").unwrap();
        let run = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256)).with_iterations(10),
        );
        let result = run
            .execute(PlacementApproach::DdrOnly.router().unwrap())
            .unwrap();
        assert!(result.fom > 0.0);
        assert!(result.total_time > Nanos::ZERO);
        assert_eq!(result.mcdram_hwm, ByteSize::ZERO);
        assert!(result.counters.llc_misses > 0);
        assert_eq!(result.approach, ApproachKind::Ddr);
        assert!(result.trace.is_none());
    }

    #[test]
    fn numactl_run_uses_mcdram_and_beats_ddr() {
        let spec = app_by_name("miniFE").unwrap();
        let cfg = RunConfig::flat(ByteSize::from_mib(256)).with_iterations(10);
        let ddr = AppRun::new(&spec, cfg.clone())
            .execute(PlacementApproach::DdrOnly.router().unwrap())
            .unwrap();
        let numactl = AppRun::new(&spec, cfg)
            .execute(PlacementApproach::NumactlPreferred.router().unwrap())
            .unwrap();
        assert!(numactl.mcdram_hwm > ByteSize::ZERO);
        assert!(
            numactl.fom > ddr.fom,
            "numactl {} vs ddr {}",
            numactl.fom,
            ddr.fom
        );
    }

    #[test]
    fn cache_mode_run_beats_ddr_for_fitting_hot_sets() {
        let spec = app_by_name("miniFE").unwrap();
        let ddr = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256)).with_iterations(10),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        let cache = AppRun::new(&spec, RunConfig::cache_mode().with_iterations(10))
            .execute(PlacementApproach::CacheMode.router().unwrap())
            .unwrap();
        assert!(
            cache.fom > ddr.fom,
            "cache {} vs ddr {}",
            cache.fom,
            ddr.fom
        );
        assert_eq!(cache.approach, ApproachKind::Cache);
    }

    #[test]
    fn profiled_run_produces_a_trace_with_samples_and_allocs() {
        let spec = app_by_name("HPCG").unwrap();
        let cfg = RunConfig::flat(ByteSize::from_mib(256))
            .with_iterations(5)
            .with_profiling(ProfilerConfig::default());
        let result = AppRun::new(&spec, cfg)
            .execute(PlacementApproach::DdrOnly.router().unwrap())
            .unwrap();
        let trace = result.trace.expect("trace present");
        assert!(trace.alloc_count() >= spec.dynamic_objects().count());
        assert!(trace.sample_count() > 0, "PEBS samples recorded");
        assert!(result.monitoring_overhead > 0.0 && result.monitoring_overhead < 0.2);
    }

    #[test]
    fn online_run_migrates_hot_objects_and_beats_ddr() {
        let spec = app_by_name("miniFE").unwrap();
        let cfg = RunConfig::flat(ByteSize::from_mib(256)).with_iterations(10);
        let ddr = AppRun::new(&spec, cfg.clone())
            .execute(PlacementApproach::DdrOnly.router().unwrap())
            .unwrap();
        let online = AppRun::new(&spec, cfg)
            .execute(PlacementApproach::Online.router().unwrap())
            .unwrap();
        assert_eq!(online.approach, ApproachKind::Online);
        assert!(online.migrations > 0, "the hot objects must migrate");
        assert!(online.migration_time > Nanos::ZERO);
        assert!(
            online.mcdram_hwm > ByteSize::ZERO,
            "migrated residency counts as footprint"
        );
        assert!(
            online.mcdram_hwm <= ByteSize::from_mib(256),
            "budget respected: {}",
            online.mcdram_hwm
        );
        assert!(
            online.fom > ddr.fom,
            "online {} vs ddr {}",
            online.fom,
            ddr.fom
        );
        // Static approaches never migrate.
        assert_eq!(ddr.migrations, 0);
        assert_eq!(ddr.migration_time, Nanos::ZERO);
    }

    #[test]
    fn rank_policies_wire_through_online_runs() {
        // The analytic runner models one process with symmetric peer ranks,
        // so every arbitration policy resolves to the same per-epoch budget
        // (the partition share) — bitwise. The wiring still matters: the
        // budget is drawn from the NodeArbiter each epoch, and the
        // trace-driven multi-rank runner shares the same arbiter for the
        // asymmetric cases.
        let spec = app_by_name("miniFE").unwrap();
        let base = RunConfig::flat(ByteSize::from_mib(256)).with_iterations(8);
        let reference = AppRun::new(&spec, base.clone())
            .execute(PlacementApproach::Online.router().unwrap())
            .unwrap();
        assert!(reference.migrations > 0);
        for policy in hmsim_runtime::ArbiterPolicy::ALL {
            let run = AppRun::new(&spec, base.clone().with_rank_policy(policy))
                .execute(PlacementApproach::Online.router().unwrap())
                .unwrap();
            assert_eq!(
                run.fom.to_bits(),
                reference.fom.to_bits(),
                "{policy}: symmetric ranks must make every policy equivalent"
            );
            assert_eq!(run.migrations, reference.migrations, "{policy}");
            assert!(run.mcdram_hwm <= ByteSize::from_mib(256), "{policy}");
        }
    }

    #[test]
    fn kernel_times_are_reported_per_kernel() {
        let spec = app_by_name("SNAP").unwrap();
        let result = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(256)).with_iterations(3),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        assert_eq!(result.kernel_times.len(), spec.kernels.len());
        assert!(result.kernel_times.iter().all(|(_, t)| *t > Nanos::ZERO));
    }

    #[test]
    fn iterations_override_scales_time_but_not_fom_much() {
        let spec = app_by_name("miniFE").unwrap();
        let short = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(128)).with_iterations(5),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        let long = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(128)).with_iterations(20),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        assert!(long.loop_time > short.loop_time * 2.0);
        let rel = (long.fom - short.fom).abs() / long.fom;
        assert!(
            rel < 0.1,
            "FOM should be roughly iteration-count independent ({rel})"
        );
    }
}
