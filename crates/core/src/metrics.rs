//! The ΔFOM/MByte efficiency metric (paper §IV-C, equation 1).
//!
//! `ΔFOM/mbyte_x(y) = (FOM_x(y) − FOM_ddr(y)) / MEM_x` — "the performance
//! increase achieved when using a given amount of fast memory". It is the
//! paper's proposed tool for locating the sweet spot when dimensioning memory
//! tiers: past the sweet spot, additional MCDRAM stops paying for itself.

/// Compute ΔFOM/MByte for one experiment.
///
/// * `fom` — the figure of merit achieved by the experiment;
/// * `fom_ddr` — the figure of merit of the DDR-only reference;
/// * `mcdram_mib` — the amount of fast memory the experiment was given
///   (per rank), in MiB. For the cache-mode and `numactl` configurations the
///   paper charges the full 16 GiB.
///
/// Returns 0 when no fast memory was used.
pub fn delta_fom_per_mbyte(fom: f64, fom_ddr: f64, mcdram_mib: f64) -> f64 {
    if mcdram_mib <= 0.0 {
        return 0.0;
    }
    (fom - fom_ddr) / mcdram_mib
}

/// Locate the sweet spot: the configuration index with the highest
/// ΔFOM/MByte. Returns `None` for an empty slice.
pub fn sweet_spot(series: &[(f64, f64)]) -> Option<usize> {
    // series: (mcdram_mib, dfom_per_mbyte)
    series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("no NaN"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_matches_the_paper_formula() {
        // +4 GFLOPS using 128 MiB -> 0.03125 GFLOPS per MiB.
        let v = delta_fom_per_mbyte(15.0, 11.0, 128.0);
        assert!((v - 0.03125).abs() < 1e-12);
        // A slowdown yields a negative value.
        assert!(delta_fom_per_mbyte(10.0, 11.0, 128.0) < 0.0);
        // Zero memory is guarded.
        assert_eq!(delta_fom_per_mbyte(15.0, 11.0, 0.0), 0.0);
    }

    #[test]
    fn sweet_spot_picks_the_most_efficient_budget() {
        // Diminishing returns: the small budget is the most efficient.
        let series = vec![(32.0, 0.05), (64.0, 0.04), (128.0, 0.02), (256.0, 0.012)];
        assert_eq!(sweet_spot(&series), Some(0));
        // A hot set that only fits at 128 MiB moves the sweet spot there.
        let series = vec![(32.0, 0.001), (64.0, 0.002), (128.0, 0.03), (256.0, 0.02)];
        assert_eq!(sweet_spot(&series), Some(2));
        assert_eq!(sweet_spot(&[]), None);
    }
}
