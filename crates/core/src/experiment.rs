//! The Figure-4 experiment grid.
//!
//! For every application the paper evaluates the framework under four MCDRAM
//! budgets and four selection strategies and compares against four
//! approaches that need no profiling: DDR-only, `numactl -p 1`, `autohbw`
//! with a 1 MiB threshold, and MCDRAM cache mode. This module drives exactly
//! that grid and computes, per configuration, the figure of merit, the MCDRAM
//! high-water mark and the ΔFOM/MByte efficiency metric — the three columns
//! of Figure 4.

use crate::metrics::delta_fom_per_mbyte;
use crate::par::parallel_map;
use crate::scenario::Scenario;
use crate::session::Simulation;
use auto_hbwmalloc::{ApproachKind, PlacementApproach};
use hmem_advisor::SelectionStrategy;
use hmsim_apps::{all_apps, AppSpec};
use hmsim_common::{ByteSize, HmResult};

/// Grid configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Per-rank MCDRAM budgets explored for MPI applications.
    pub budgets: Vec<ByteSize>,
    /// Budgets explored for single-process (OpenMP-only) applications.
    pub single_process_budgets: Vec<ByteSize>,
    /// Selection strategies (the paper's four).
    pub strategies: Vec<SelectionStrategy>,
    /// Iteration override to keep the grid fast (None = full length).
    pub iterations_override: Option<u32>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            budgets: vec![
                ByteSize::from_mib(32),
                ByteSize::from_mib(64),
                ByteSize::from_mib(128),
                ByteSize::from_mib(256),
            ],
            single_process_budgets: vec![
                ByteSize::from_mib(32),
                ByteSize::from_mib(256),
                ByteSize::from_gib(2),
                ByteSize::from_gib(16),
            ],
            strategies: SelectionStrategy::paper_set(),
            iterations_override: Some(10),
            seed: 0xF1607,
        }
    }
}

impl ExperimentConfig {
    /// The budgets applicable to one application (MPI apps get per-rank
    /// budgets, the OpenMP-only BT gets the 32 MiB – 16 GiB sweep).
    pub fn budgets_for(&self, spec: &AppSpec) -> &[ByteSize] {
        if spec.ranks == 1 {
            &self.single_process_budgets
        } else {
            &self.budgets
        }
    }

    /// The MCDRAM share one rank gets under FCFS policies (`numactl`,
    /// `autohbw`): the 16 GiB divided evenly among ranks.
    pub fn fcfs_share(&self, spec: &AppSpec) -> ByteSize {
        ByteSize::from_gib(16) / u64::from(spec.ranks.max(1))
    }
}

/// One configuration's outcome.
#[derive(Clone, Debug)]
pub struct ApproachResult {
    /// Label as it appears in the figure legend (e.g. `"Density/128MiB"`,
    /// `"Cache"`, `"MCDRAM*"`).
    pub label: String,
    /// Figure of merit.
    pub fom: f64,
    /// MCDRAM high-water mark per process (dynamic allocations).
    pub mcdram_hwm: ByteSize,
    /// Fast memory charged to this configuration for the efficiency metric
    /// (the budget for framework runs, 16 GiB for cache/numactl), in MiB.
    pub charged_mcdram_mib: f64,
    /// ΔFOM/MByte relative to the DDR reference.
    pub dfom_per_mbyte: f64,
    /// Whether this row is one of the framework configurations (as opposed
    /// to a baseline).
    pub is_framework: bool,
}

/// The full Figure-4 data for one application.
#[derive(Clone, Debug)]
pub struct AppExperiment {
    /// Application name.
    pub app: String,
    /// Name of its figure of merit.
    pub fom_name: String,
    /// The DDR-only reference FOM.
    pub ddr_fom: f64,
    /// Every configuration (framework grid + baselines).
    pub results: Vec<ApproachResult>,
}

impl AppExperiment {
    /// The best framework configuration.
    pub fn best_framework(&self) -> Option<&ApproachResult> {
        self.results
            .iter()
            .filter(|r| r.is_framework)
            .max_by(|a, b| a.fom.partial_cmp(&b.fom).expect("no NaN"))
    }

    /// A named baseline result.
    pub fn baseline(&self, label: &str) -> Option<&ApproachResult> {
        self.results
            .iter()
            .find(|r| !r.is_framework && r.label == label)
    }

    /// The overall winner.
    pub fn winner(&self) -> Option<&ApproachResult> {
        self.results
            .iter()
            .max_by(|a, b| a.fom.partial_cmp(&b.fom).expect("no NaN"))
    }

    /// Speedup of the best framework configuration over DDR.
    pub fn framework_speedup(&self) -> f64 {
        self.best_framework()
            .map(|r| r.fom / self.ddr_fom.max(1e-12))
            .unwrap_or(1.0)
    }

    /// The best online-runtime configuration (the dynamic columns).
    pub fn best_online(&self) -> Option<&ApproachResult> {
        self.results
            .iter()
            .filter(|r| r.label.starts_with("Online/"))
            .max_by(|a, b| a.fom.partial_cmp(&b.fom).expect("no NaN"))
    }

    /// FOM of the best online run relative to the best static framework
    /// configuration (> 1 means migrating online beat every offline
    /// placement).
    pub fn online_vs_static(&self) -> Option<f64> {
        let online = self.best_online()?;
        let stat = self.best_framework()?;
        Some(online.fom / stat.fom.max(1e-12))
    }
}

/// One baseline approach of the Figure-4 comparison.
/// One independent simulation of the per-app grid: a framework
/// strategy × budget configuration, a profiling-free baseline, or an online
/// migration run. Folding all kinds into one job list lets a single
/// `parallel_map` overlap baseline runs with grid stragglers instead of
/// draining two barriers.
#[derive(Clone, Copy, Debug)]
enum GridJob {
    Framework(SelectionStrategy, ByteSize),
    /// The online migration runtime at one fast-tier budget — the dynamic
    /// column the static framework grid is compared against.
    Online(ByteSize),
    Numactl,
    Autohbw,
    Cache,
}

/// Run the whole grid for one application. The framework's strategy × budget
/// configurations and the profiling-free baselines are all independent
/// simulations, so they are fanned out over scoped worker threads. Every
/// job is a declarative [`Scenario`] dispatched through the [`Simulation`]
/// facade — the grid is now literally a list of scenario values.
pub fn run_app_experiment(spec: &AppSpec, config: &ExperimentConfig) -> HmResult<AppExperiment> {
    // A malformed spec fails this application's experiment with a typed,
    // attributable error instead of poisoning the whole sweep.
    spec.validate()?;
    let scenario = |approach: PlacementApproach, budget: ByteSize| {
        let mut s = Scenario::app(spec.name, approach, budget).with_seed(config.seed);
        if let Some(it) = config.iterations_override {
            s = s.with_iterations(it);
        }
        s
    };

    // DDR reference first: every other configuration's efficiency metric is
    // relative to it.
    let share = config.fcfs_share(spec);
    let ddr = Simulation::new().run(&scenario(PlacementApproach::DdrOnly, share))?;
    let ddr_fom = ddr.node.fom;

    let full_mcdram_mib = ByteSize::from_gib(16).mib();

    // Framework grid (strategies × budgets) plus the three baselines, in the
    // order the results list reports them.
    let jobs: Vec<GridJob> = config
        .strategies
        .iter()
        .flat_map(|s| {
            config
                .budgets_for(spec)
                .iter()
                .map(move |b| GridJob::Framework(*s, *b))
        })
        .chain(config.budgets_for(spec).iter().map(|b| GridJob::Online(*b)))
        .chain([GridJob::Numactl, GridJob::Autohbw, GridJob::Cache])
        .collect();
    let outcomes = parallel_map(jobs, |job| -> HmResult<ApproachResult> {
        Ok(match job {
            GridJob::Framework(strategy, budget) => {
                let outcome = Simulation::new()
                    .run(&scenario(PlacementApproach::framework(strategy), budget))?;
                let mib = budget.mib();
                ApproachResult {
                    label: format!("{}/{}", strategy, budget),
                    fom: outcome.node.fom,
                    mcdram_hwm: outcome.node.mcdram_hwm,
                    charged_mcdram_mib: mib,
                    dfom_per_mbyte: delta_fom_per_mbyte(outcome.node.fom, ddr_fom, mib),
                    is_framework: true,
                }
            }
            GridJob::Online(budget) => {
                let run = Simulation::new().run(&scenario(PlacementApproach::Online, budget))?;
                let mib = budget.mib();
                ApproachResult {
                    label: format!("{}/{}", ApproachKind::Online, budget),
                    fom: run.node.fom,
                    mcdram_hwm: run.node.mcdram_hwm,
                    charged_mcdram_mib: mib,
                    dfom_per_mbyte: delta_fom_per_mbyte(run.node.fom, ddr_fom, mib),
                    is_framework: false,
                }
            }
            GridJob::Numactl => {
                let run =
                    Simulation::new().run(&scenario(PlacementApproach::NumactlPreferred, share))?;
                ApproachResult {
                    label: ApproachKind::Numactl.to_string(),
                    fom: run.node.fom,
                    mcdram_hwm: run.node.mcdram_hwm,
                    charged_mcdram_mib: full_mcdram_mib,
                    dfom_per_mbyte: delta_fom_per_mbyte(run.node.fom, ddr_fom, full_mcdram_mib),
                    is_framework: false,
                }
            }
            GridJob::Autohbw => {
                let run =
                    Simulation::new().run(&scenario(PlacementApproach::autohbw_1m(), share))?;
                ApproachResult {
                    label: format!("{}/1m", ApproachKind::AutoHbw),
                    fom: run.node.fom,
                    mcdram_hwm: run.node.mcdram_hwm,
                    charged_mcdram_mib: 0.0,
                    dfom_per_mbyte: 0.0,
                    is_framework: false,
                }
            }
            GridJob::Cache => {
                let run = Simulation::new()
                    .run(&scenario(PlacementApproach::CacheMode, ByteSize::ZERO))?;
                ApproachResult {
                    label: ApproachKind::Cache.to_string(),
                    fom: run.node.fom,
                    mcdram_hwm: ByteSize::ZERO,
                    charged_mcdram_mib: full_mcdram_mib,
                    dfom_per_mbyte: delta_fom_per_mbyte(run.node.fom, ddr_fom, full_mcdram_mib),
                    is_framework: false,
                }
            }
        })
    });

    let mut results = Vec::new();
    for r in outcomes {
        results.push(r?);
    }
    results.push(ApproachResult {
        label: ApproachKind::Ddr.to_string(),
        fom: ddr_fom,
        mcdram_hwm: ByteSize::ZERO,
        charged_mcdram_mib: 0.0,
        dfom_per_mbyte: 0.0,
        is_framework: false,
    });

    Ok(AppExperiment {
        app: spec.name.to_string(),
        fom_name: spec.fom_name.to_string(),
        ddr_fom,
        results,
    })
}

/// Run the grid for every application, in parallel (work-shared across the
/// machine's cores).
pub fn run_full_evaluation(config: &ExperimentConfig) -> Vec<AppExperiment> {
    parallel_map(all_apps(), |spec| run_app_experiment(&spec, config).ok())
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_apps::app_by_name;

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig {
            budgets: vec![ByteSize::from_mib(64), ByteSize::from_mib(256)],
            single_process_budgets: vec![ByteSize::from_mib(256), ByteSize::from_gib(16)],
            strategies: vec![
                SelectionStrategy::Density,
                SelectionStrategy::Misses {
                    threshold_percent: 0.0,
                },
            ],
            iterations_override: Some(6),
            seed: 7,
        }
    }

    #[test]
    fn grid_contains_all_configurations() {
        let spec = app_by_name("miniFE").unwrap();
        let exp = run_app_experiment(&spec, &quick_config()).unwrap();
        // 2 strategies × 2 budgets + 2 online budgets
        // + 4 baselines (MCDRAM*, autohbw, Cache, DDR).
        assert_eq!(exp.results.len(), 2 * 2 + 2 + 4);
        assert!(exp.best_framework().is_some());
        assert!(exp.baseline("Cache").is_some());
        assert!(exp.baseline("MCDRAM*").is_some());
        assert!(exp.baseline("DDR").unwrap().fom > 0.0);
        assert!((exp.baseline("DDR").unwrap().fom - exp.ddr_fom).abs() < 1e-9);
    }

    #[test]
    fn online_columns_ride_along_and_track_the_static_grid() {
        let spec = app_by_name("miniFE").unwrap();
        let exp = run_app_experiment(&spec, &quick_config()).unwrap();
        let online = exp.best_online().expect("online rows present");
        assert!(!online.is_framework);
        assert!(
            online.fom > exp.ddr_fom,
            "online {} must beat DDR {}",
            online.fom,
            exp.ddr_fom
        );
        // miniFE is stationary, so online cannot beat the best offline
        // placement — but it must land in its neighbourhood (it pays one
        // cold iteration plus the migration bytes).
        let ratio = exp.online_vs_static().unwrap();
        assert!(
            ratio > 0.7 && ratio <= 1.05,
            "online/static ratio {ratio} out of band"
        );
    }

    #[test]
    fn framework_wins_for_minife() {
        let spec = app_by_name("miniFE").unwrap();
        let exp = run_app_experiment(&spec, &quick_config()).unwrap();
        let winner = exp.winner().unwrap();
        assert!(winner.is_framework, "winner was {}", winner.label);
        assert!(exp.framework_speedup() > 1.3);
    }

    #[test]
    fn budgets_for_respects_single_process_apps() {
        let cfg = quick_config();
        let bt = app_by_name("BT").unwrap();
        let hpcg = app_by_name("HPCG").unwrap();
        assert_eq!(cfg.budgets_for(&bt).len(), 2);
        assert_eq!(cfg.budgets_for(&bt)[1], ByteSize::from_gib(16));
        assert_eq!(cfg.budgets_for(&hpcg)[0], ByteSize::from_mib(64));
        assert_eq!(cfg.fcfs_share(&hpcg), ByteSize::from_mib(256));
        assert_eq!(cfg.fcfs_share(&bt), ByteSize::from_gib(16));
    }

    #[test]
    fn efficiency_metric_is_consistent_with_fom() {
        let spec = app_by_name("miniFE").unwrap();
        let exp = run_app_experiment(&spec, &quick_config()).unwrap();
        for r in exp.results.iter().filter(|r| r.is_framework) {
            let expected = (r.fom - exp.ddr_fom) / r.charged_mcdram_mib;
            assert!((r.dfom_per_mbyte - expected).abs() < 1e-9);
        }
    }
}
