//! Declarative, serializable simulation sessions.
//!
//! A [`Scenario`] is the complete, self-describing recipe for one simulation
//! run: which workload (an analytic application model, a trace-driven phased
//! workload, or a multi-rank bundle), which machine, how the MCDRAM is
//! exposed, which [`PlacementApproach`] decides data placement (with that
//! approach's configuration embedded as enum payload), the online-runtime
//! knobs, the node-level arbitration policy, optional profiling, and the
//! master seed. The [`Simulation`](crate::session::Simulation) facade turns
//! a validated scenario into a run without the caller wiring `RunConfig`,
//! routers and runtimes by hand — the mismatch class the old
//! `RouterFactory`-vs-`RunConfig` split allowed is gone, because everything
//! derives from one value.
//!
//! Scenarios serialize to and parse from a small JSON text format (`.scn`
//! files, read through the workspace-shared [`hmsim_common::json`] parser —
//! the same code the bench schema check uses). Serialization is canonical:
//! `parse → serialize` of a canonical document is byte-identical, which the
//! round-trip tests pin for every committed file under `scenarios/`.

use auto_hbwmalloc::PlacementApproach;
use hmem_advisor::SelectionStrategy;
use hmsim_common::json::{escape_str, parse_json, Json};
use hmsim_common::{ByteSize, HmError, HmResult, Nanos};
use hmsim_machine::{MachineConfig, MemoryMode};
use hmsim_profiler::ProfilerConfig;
use hmsim_runtime::{ArbiterPolicy, OnlineConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

// ---------------------------------------------------------------------------
// Selectors
// ---------------------------------------------------------------------------

/// Which simulated machine a scenario runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineSelector {
    /// The paper's Intel Xeon Phi 7250 node ([`MachineConfig::knl_7250`]).
    Knl7250,
    /// The small unit-test machine ([`MachineConfig::tiny_test`]).
    TinyTest,
    /// The tiny machine with *loaded* memory latencies the trace-driven
    /// placement studies use ([`hmsim_runtime::harness::loaded_machine`]).
    LoadedTinyTest,
}

impl MachineSelector {
    fn key(self) -> &'static str {
        match self {
            MachineSelector::Knl7250 => "knl-7250",
            MachineSelector::TinyTest => "tiny-test",
            MachineSelector::LoadedTinyTest => "loaded-tiny-test",
        }
    }

    /// Build the machine configuration this selector names (flat mode; the
    /// scenario's memory mode is applied on top).
    pub fn config(self) -> MachineConfig {
        match self {
            MachineSelector::Knl7250 => MachineConfig::knl_7250(),
            MachineSelector::TinyTest => MachineConfig::tiny_test(),
            MachineSelector::LoadedTinyTest => hmsim_runtime::harness::loaded_machine(),
        }
    }
}

/// The workload a scenario simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSelector {
    /// One of the paper's eight analytic application models, by registry
    /// name (case-insensitive; see [`hmsim_apps::app_by_name`]).
    App {
        /// Application name (e.g. `"miniFE"`).
        name: String,
    },
    /// A registered trace-driven phased workload
    /// ([`hmsim_apps::phased_workload_by_name`]) at a per-array scale.
    Phased {
        /// Workload family name (e.g. `"rotating-triad"`).
        name: String,
        /// Per-array size.
        array_size: ByteSize,
    },
    /// A multi-rank trace workload bundle driven by the sharded runtime.
    MultiRank(MultiRankSelector),
}

/// The multi-rank workload families of [`hmsim_apps::MultiRankWorkload`].
#[derive(Clone, Debug, PartialEq)]
pub enum MultiRankSelector {
    /// Every rank runs its own copy of a registered phased workload.
    Replicated {
        /// Phased workload family name.
        workload: String,
        /// Per-array size of each rank's copy.
        array_size: ByteSize,
        /// Number of ranks.
        ranks: u32,
    },
    /// The rank-skew triad: rank 0's arrays are `skew`× larger.
    RankSkewTriad {
        /// Base per-array size (small ranks).
        array_size: ByteSize,
        /// Number of ranks.
        ranks: u32,
        /// Size multiplier of rank 0's arrays.
        skew: u32,
        /// Triad passes every rank runs.
        passes: u32,
    },
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// One declarative simulation session.
///
/// Build one with the [`Scenario::app`] / [`Scenario::phased`] /
/// [`Scenario::multirank`] constructors plus the `with_*` builders, or parse
/// one from its `.scn` text form with [`Scenario::parse`]. Run it through
/// [`Simulation::run`](crate::session::Simulation::run).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Identifier (used in reports and as the conventional file stem).
    pub name: String,
    /// What to simulate.
    pub workload: WorkloadSelector,
    /// Which machine to simulate it on.
    pub machine: MachineSelector,
    /// How the MCDRAM is exposed ([`MemoryMode::Cache`] is required by — and
    /// requires — the [`PlacementApproach::CacheMode`] approach).
    pub memory_mode: MemoryMode,
    /// The placement approach, its configuration embedded as enum payload.
    pub approach: PlacementApproach,
    /// Fast-tier budget: per rank for [`WorkloadSelector::App`] and
    /// [`WorkloadSelector::Phased`], the whole node's pool for
    /// [`WorkloadSelector::MultiRank`]. Must be zero in cache mode.
    pub mcdram_budget: ByteSize,
    /// Main-loop iteration override for analytic runs (None = the spec's
    /// count). Ignored by trace-driven workloads, whose length is part of
    /// the workload itself.
    pub iterations: Option<u32>,
    /// Online-runtime knobs (None = defaults). Only meaningful — and only
    /// accepted by [`Scenario::validate`] — under the Online approach.
    pub online: Option<OnlineConfig>,
    /// How the node-level fast-tier pool is arbitrated between ranks
    /// (Online approach and multi-rank workloads; must stay the default
    /// partition otherwise).
    pub rank_policy: ArbiterPolicy,
    /// Attach the profiler (analytic workloads only). The Framework
    /// approach profiles its pipeline's stage-1 run with this configuration
    /// when set.
    pub profiling: Option<ProfilerConfig>,
    /// Master seed for the analytic runner (ASLR layouts, derived streams).
    pub seed: u64,
}

impl Scenario {
    /// A scenario running analytic application `app` under `approach` with
    /// the given per-rank MCDRAM budget. Choosing
    /// [`PlacementApproach::CacheMode`] automatically flips the machine's
    /// memory mode to cache and zeroes the budget — the two can no longer
    /// disagree.
    pub fn app(app: &str, approach: PlacementApproach, mcdram_budget: ByteSize) -> Scenario {
        let cache = approach == PlacementApproach::CacheMode;
        Scenario {
            name: format!(
                "{}-{}",
                app.to_ascii_lowercase().replace(' ', "-"),
                approach.kind().key()
            ),
            workload: WorkloadSelector::App {
                name: app.to_string(),
            },
            machine: MachineSelector::Knl7250,
            memory_mode: if cache {
                MemoryMode::Cache
            } else {
                MemoryMode::Flat
            },
            approach,
            mcdram_budget: if cache { ByteSize::ZERO } else { mcdram_budget },
            iterations: None,
            online: None,
            rank_policy: ArbiterPolicy::default(),
            profiling: None,
            seed: 0xC0FFEE,
        }
    }

    /// A scenario driving a registered phased trace workload through the
    /// online migration runtime on the loaded trace-study machine.
    pub fn phased(workload: &str, array_size: ByteSize, fast_budget: ByteSize) -> Scenario {
        Scenario {
            name: format!("{workload}-online"),
            workload: WorkloadSelector::Phased {
                name: workload.to_string(),
                array_size,
            },
            machine: MachineSelector::LoadedTinyTest,
            memory_mode: MemoryMode::Flat,
            approach: PlacementApproach::Online,
            mcdram_budget: fast_budget,
            iterations: None,
            online: None,
            rank_policy: ArbiterPolicy::default(),
            profiling: None,
            seed: 0xC0FFEE,
        }
    }

    /// A multi-rank scenario: R shards in lock-step epochs under
    /// `node_budget` of fast memory arbitrated by `policy`.
    pub fn multirank(
        selector: MultiRankSelector,
        policy: ArbiterPolicy,
        node_budget: ByteSize,
    ) -> Scenario {
        let family = match &selector {
            MultiRankSelector::Replicated { workload, .. } => format!("replicated-{workload}"),
            MultiRankSelector::RankSkewTriad { .. } => "rank-skew-triad".to_string(),
        };
        Scenario {
            name: format!("{family}-{policy}"),
            workload: WorkloadSelector::MultiRank(selector),
            machine: MachineSelector::LoadedTinyTest,
            memory_mode: MemoryMode::Flat,
            approach: PlacementApproach::Online,
            mcdram_budget: node_budget,
            iterations: None,
            online: None,
            rank_policy: policy,
            profiling: None,
            seed: 0xC0FFEE,
        }
    }

    /// Rename the scenario.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Override the iteration count (analytic workloads).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the online-runtime knobs (Online approach only).
    pub fn with_online(mut self, online: OnlineConfig) -> Self {
        self.online = Some(online);
        self
    }

    /// Choose the node-level arbitration policy (Online approach only).
    pub fn with_rank_policy(mut self, policy: ArbiterPolicy) -> Self {
        self.rank_policy = policy;
        self
    }

    /// Attach the profiler (analytic workloads).
    pub fn with_profiling(mut self, profiling: ProfilerConfig) -> Self {
        self.profiling = Some(profiling);
        self
    }

    /// Pick the machine.
    pub fn with_machine(mut self, machine: MachineSelector) -> Self {
        self.machine = machine;
        self
    }

    // -----------------------------------------------------------------------
    // Validation
    // -----------------------------------------------------------------------

    /// Check the scenario for internal consistency, returning a typed
    /// [`HmError::Config`] naming the first problem.
    /// [`Simulation::run`](crate::session::Simulation::run) validates
    /// before dispatching, so a malformed `.scn` file fails with an
    /// actionable message instead of a silently-ignored knob.
    pub fn validate(&self) -> HmResult<()> {
        let fail = |msg: String| Err(HmError::Config(format!("scenario {:?}: {msg}", self.name)));
        if self.name.is_empty() {
            return Err(HmError::Config("scenario name must not be empty".into()));
        }

        // Approach ⇔ memory mode: cache mode is placement-transparent, so it
        // only makes sense (and is required) for the cache approach.
        let cache_approach = self.approach == PlacementApproach::CacheMode;
        let cache_mode = self.memory_mode == MemoryMode::Cache;
        if cache_approach != cache_mode {
            return fail(format!(
                "the cache approach and cache memory mode imply each other \
                 (approach {}, memory mode {:?})",
                self.approach, self.memory_mode
            ));
        }
        if self.memory_mode != MemoryMode::Flat && !self.mcdram_budget.is_zero() {
            return fail(format!(
                "mcdram_budget only applies to flat-mode allocations and would be \
                 silently ignored under {:?}; set it to 0",
                self.memory_mode
            ));
        }
        if matches!(self.approach, PlacementApproach::Framework { .. })
            && (self.machine != MachineSelector::Knl7250 || self.memory_mode != MemoryMode::Flat)
        {
            return fail(
                "the Framework approach runs the four-stage pipeline on the paper's \
                 flat-mode KNL node (machine knl-7250, memory_mode flat)"
                    .to_string(),
            );
        }
        if let MemoryMode::Hybrid {
            cache_fraction_percent,
        } = self.memory_mode
        {
            if cache_fraction_percent > 100 {
                return fail(format!(
                    "hybrid cache fraction {cache_fraction_percent}% exceeds 100%"
                ));
            }
        }
        if let PlacementApproach::AutoHbw { threshold } = &self.approach {
            if threshold.is_zero() {
                return fail("autohbw threshold must be positive".to_string());
            }
        }
        // Every f64 knob must stay finite: the canonical serializer writes
        // them as bare JSON numbers, and JSON has no NaN/inf — a non-finite
        // value would produce a .scn file that can never be parsed back.
        if let PlacementApproach::Framework { strategy } = &self.approach {
            validate_strategy(strategy, "approach.framework_strategy")
                .map_err(|e| HmError::Config(format!("scenario {:?}: {e}", self.name)))?;
        }

        // Knobs that only the Online approach reads must not be silently
        // ignored under any other approach.
        let online_approach = self.approach == PlacementApproach::Online;
        if self.online.is_some() && !online_approach {
            return fail(format!(
                "online knobs are set but the approach is {}; only the Online \
                 approach reads them",
                self.approach
            ));
        }
        if self.rank_policy != ArbiterPolicy::default() && !online_approach {
            return fail(format!(
                "rank_policy {} is set but the approach is {}; arbitration only \
                 applies to online runs",
                self.rank_policy, self.approach
            ));
        }
        if let Some(online) = &self.online {
            if !(0.0..=1.0).contains(&online.heat_decay) {
                return fail(format!(
                    "online.heat_decay {} outside [0, 1]",
                    online.heat_decay
                ));
            }
            if !online.heat_deadband.is_finite() || online.heat_deadband < 0.0 {
                return fail(format!(
                    "online.heat_deadband {} must be finite and non-negative",
                    online.heat_deadband
                ));
            }
            if online.epoch_accesses == 0 {
                return fail("online.epoch_accesses must be at least 1".to_string());
            }
            validate_strategy(&online.strategy, "online.strategy")
                .map_err(|e| HmError::Config(format!("scenario {:?}: {e}", self.name)))?;
        }
        if let Some(profiling) = &self.profiling {
            if !profiling.counter_snapshot_interval.nanos().is_finite() {
                return fail(format!(
                    "profiling.counter_snapshot_interval_ns {} must be finite",
                    profiling.counter_snapshot_interval.nanos()
                ));
            }
        }

        // Workload-specific checks.
        match &self.workload {
            WorkloadSelector::App { name } => {
                hmsim_apps::app_by_name(name)?;
            }
            WorkloadSelector::Phased { name, array_size } => {
                lookup_phased(name, *array_size)?;
                if self.memory_mode != MemoryMode::Flat {
                    return fail("trace-driven workloads run on flat-mode machines".to_string());
                }
                if !matches!(
                    self.approach,
                    PlacementApproach::Online | PlacementApproach::DdrOnly
                ) {
                    return fail(format!(
                        "phased trace workloads run online or as the DDR reference, \
                         not under {}",
                        self.approach
                    ));
                }
                if self.profiling.is_some() {
                    return fail(
                        "the Extrae-style profiler attaches to analytic workloads only".to_string(),
                    );
                }
                if self.iterations.is_some() {
                    return fail(
                        "trace workload length is part of the workload; iterations does \
                         not apply"
                            .to_string(),
                    );
                }
            }
            WorkloadSelector::MultiRank(sel) => {
                if self.memory_mode != MemoryMode::Flat {
                    return fail("trace-driven workloads run on flat-mode machines".to_string());
                }
                if !online_approach {
                    return fail(format!(
                        "multi-rank workloads run under the Online approach, not {}",
                        self.approach
                    ));
                }
                if self.profiling.is_some() {
                    return fail(
                        "the Extrae-style profiler attaches to analytic workloads only".to_string(),
                    );
                }
                if self.iterations.is_some() {
                    return fail(
                        "trace workload length is part of the workload; iterations does \
                         not apply"
                            .to_string(),
                    );
                }
                match sel {
                    MultiRankSelector::Replicated {
                        workload,
                        array_size,
                        ranks,
                    } => {
                        lookup_phased(workload, *array_size)?;
                        if *ranks == 0 {
                            return fail("replicated ranks must be at least 1".to_string());
                        }
                    }
                    MultiRankSelector::RankSkewTriad {
                        array_size,
                        ranks,
                        skew,
                        passes,
                    } => {
                        if array_size.is_zero() {
                            return fail("rank-skew array_size must be positive".to_string());
                        }
                        if *ranks < 2 || *skew < 2 || *passes == 0 {
                            return fail(format!(
                                "rank-skew-triad needs ranks >= 2, skew >= 2, passes >= 1 \
                                 (got ranks {ranks}, skew {skew}, passes {passes})"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Serialization
    // -----------------------------------------------------------------------

    /// Render the canonical `.scn` text form. `parse(serialize(s)) == s`
    /// for every scenario whose f64 knobs are finite (JSON has no NaN/inf;
    /// [`Scenario::validate`] rejects non-finite values), and serializing a
    /// parsed canonical document reproduces it byte for byte.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", escape_str(&self.name));
        out.push_str("  \"workload\": ");
        out.push_str(&workload_json(&self.workload));
        out.push_str(",\n");
        let _ = writeln!(out, "  \"machine\": \"{}\",", self.machine.key());
        let _ = writeln!(
            out,
            "  \"memory_mode\": {},",
            memory_mode_json(self.memory_mode)
        );
        let _ = writeln!(out, "  \"approach\": {},", approach_json(&self.approach));
        let _ = writeln!(out, "  \"mcdram_budget\": \"{}\",", self.mcdram_budget);
        if let Some(iters) = self.iterations {
            let _ = writeln!(out, "  \"iterations\": {iters},");
        }
        if let Some(online) = &self.online {
            out.push_str("  \"online\": ");
            out.push_str(&online_json(online));
            out.push_str(",\n");
        }
        let _ = writeln!(out, "  \"rank_policy\": \"{}\",", self.rank_policy);
        if let Some(profiling) = &self.profiling {
            out.push_str("  \"profiling\": ");
            out.push_str(&profiling_json(profiling));
            out.push_str(",\n");
        }
        let _ = writeln!(out, "  \"seed\": \"{}\"", self.seed);
        out.push_str("}\n");
        out
    }

    /// Parse the `.scn` text form (strict: unknown or missing keys are
    /// errors; sizes accept both exact forms like `"96KiB"`/`"98304"` and
    /// the lenient human spellings [`ByteSize::parse`] knows).
    pub fn parse(text: &str) -> HmResult<Scenario> {
        let doc = parse_json(text).map_err(|e| HmError::parse(format!("scenario: {e}")))?;
        let mut map = into_object(doc, "scenario document")?;
        let scenario = Scenario {
            name: take_string(&mut map, "scenario")?,
            workload: parse_workload(take(&mut map, "workload")?)?,
            machine: parse_machine(&take_string(&mut map, "machine")?)?,
            memory_mode: parse_memory_mode(take(&mut map, "memory_mode")?)?,
            approach: parse_approach(take(&mut map, "approach")?)?,
            mcdram_budget: parse_size(&take_string(&mut map, "mcdram_budget")?)?,
            iterations: match map.remove("iterations") {
                None => None,
                Some(v) => Some(parse_u32(&v, "iterations")?),
            },
            online: match map.remove("online") {
                None => None,
                Some(v) => Some(parse_online(v)?),
            },
            rank_policy: parse_rank_policy(&take_string(&mut map, "rank_policy")?)?,
            profiling: match map.remove("profiling") {
                None => None,
                Some(v) => Some(parse_profiling(v)?),
            },
            seed: parse_u64(&take(&mut map, "seed")?, "seed")?,
        };
        reject_unknown(&map, "scenario")?;
        Ok(scenario)
    }

    /// Load and parse a `.scn` file.
    pub fn load(path: impl AsRef<Path>) -> HmResult<Scenario> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| HmError::Io(format!("{}: {e}", path.display())))?;
        Scenario::parse(&text).map_err(|e| HmError::parse(format!("{}: {e}", path.display())))
    }

    /// Serialize to a `.scn` file in canonical form.
    pub fn save(&self, path: impl AsRef<Path>) -> HmResult<()> {
        let path = path.as_ref();
        std::fs::write(path, self.serialize())
            .map_err(|e| HmError::Io(format!("{}: {e}", path.display())))
    }
}

/// A strategy's embedded f64 must be finite or the serialized form stops
/// being JSON.
fn validate_strategy(strategy: &SelectionStrategy, what: &str) -> HmResult<()> {
    if let SelectionStrategy::Misses { threshold_percent } = strategy {
        if !threshold_percent.is_finite() {
            return Err(HmError::Config(format!(
                "{what}: misses threshold {threshold_percent} must be finite"
            )));
        }
    }
    Ok(())
}

pub(crate) fn lookup_phased(
    name: &str,
    array_size: ByteSize,
) -> HmResult<hmsim_apps::PhasedWorkload> {
    if array_size.is_zero() {
        return Err(HmError::Config(
            "phased array_size must be positive".to_string(),
        ));
    }
    hmsim_apps::phased_workload_by_name(name, array_size).ok_or_else(|| {
        let candidates: Vec<&str> = hmsim_apps::phased_workloads(ByteSize::from_kib(1))
            .iter()
            .map(|w| w.name)
            .collect();
        HmError::Config(format!(
            "unknown phased workload {name:?}; candidates: {}",
            candidates.join(", ")
        ))
    })
}

// ---------------------------------------------------------------------------
// JSON rendering helpers (canonical form)
// ---------------------------------------------------------------------------

fn workload_json(w: &WorkloadSelector) -> String {
    match w {
        WorkloadSelector::App { name } => {
            format!("{{\n    \"app\": \"{}\"\n  }}", escape_str(name))
        }
        WorkloadSelector::Phased { name, array_size } => format!(
            "{{\n    \"phased\": \"{}\",\n    \"array_size\": \"{array_size}\"\n  }}",
            escape_str(name)
        ),
        WorkloadSelector::MultiRank(MultiRankSelector::Replicated {
            workload,
            array_size,
            ranks,
        }) => format!(
            "{{\n    \"multirank\": \"replicated\",\n    \"workload\": \"{}\",\n    \
             \"array_size\": \"{array_size}\",\n    \"ranks\": {ranks}\n  }}",
            escape_str(workload)
        ),
        WorkloadSelector::MultiRank(MultiRankSelector::RankSkewTriad {
            array_size,
            ranks,
            skew,
            passes,
        }) => format!(
            "{{\n    \"multirank\": \"rank-skew-triad\",\n    \"array_size\": \
             \"{array_size}\",\n    \"ranks\": {ranks},\n    \"skew\": {skew},\n    \
             \"passes\": {passes}\n  }}"
        ),
    }
}

fn memory_mode_json(mode: MemoryMode) -> String {
    match mode {
        MemoryMode::Flat => "\"flat\"".to_string(),
        MemoryMode::Cache => "\"cache\"".to_string(),
        MemoryMode::Hybrid {
            cache_fraction_percent,
        } => format!("{{ \"hybrid_cache_percent\": {cache_fraction_percent} }}"),
    }
}

fn approach_json(approach: &PlacementApproach) -> String {
    match approach {
        PlacementApproach::DdrOnly
        | PlacementApproach::NumactlPreferred
        | PlacementApproach::CacheMode
        | PlacementApproach::Online => format!("\"{}\"", approach.kind().key()),
        PlacementApproach::AutoHbw { threshold } => {
            format!("{{ \"autohbw_threshold\": \"{threshold}\" }}")
        }
        PlacementApproach::Framework { strategy } => {
            format!("{{ \"framework_strategy\": {} }}", strategy_json(*strategy))
        }
    }
}

fn strategy_json(strategy: SelectionStrategy) -> String {
    match strategy {
        SelectionStrategy::Density => "\"density\"".to_string(),
        SelectionStrategy::ExactKnapsack => "\"exact-knapsack\"".to_string(),
        SelectionStrategy::Misses { threshold_percent } => {
            format!(
                "{{ \"misses_threshold_percent\": {} }}",
                fmt_f64(threshold_percent)
            )
        }
    }
}

fn online_json(cfg: &OnlineConfig) -> String {
    format!(
        "{{\n    \"epoch_accesses\": \"{}\",\n    \"max_moves_per_epoch\": {},\n    \
         \"min_residency_epochs\": \"{}\",\n    \"heat_deadband\": {},\n    \
         \"heat_decay\": {},\n    \"strategy\": {},\n    \"pebs_period\": \"{}\",\n    \
         \"migration_streams\": {},\n    \"seed\": \"{}\"\n  }}",
        cfg.epoch_accesses,
        cfg.max_moves_per_epoch,
        cfg.min_residency_epochs,
        fmt_f64(cfg.heat_deadband),
        fmt_f64(cfg.heat_decay),
        strategy_json(cfg.strategy),
        cfg.pebs_period,
        cfg.migration_streams,
        cfg.seed,
    )
}

fn profiling_json(cfg: &ProfilerConfig) -> String {
    format!(
        "{{\n    \"sampling_period\": \"{}\",\n    \"min_alloc_size\": \"{}\",\n    \
         \"counter_snapshot_interval_ns\": {},\n    \"seed\": \"{}\"\n  }}",
        cfg.sampling_period,
        cfg.min_alloc_size,
        fmt_f64(cfg.counter_snapshot_interval.nanos()),
        cfg.seed,
    )
}

/// Shortest decimal representation that parses back to the same f64 bits
/// (Rust's `{:?}` guarantee), kept JSON-compatible by rejecting non-finite
/// values upstream.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

// ---------------------------------------------------------------------------
// JSON interpretation helpers (strict)
// ---------------------------------------------------------------------------

fn into_object(v: Json, what: &str) -> HmResult<BTreeMap<String, Json>> {
    match v {
        Json::Object(map) => Ok(map),
        other => Err(HmError::parse(format!(
            "{what} must be a JSON object, found {other:?}"
        ))),
    }
}

fn take(map: &mut BTreeMap<String, Json>, key: &str) -> HmResult<Json> {
    map.remove(key)
        .ok_or_else(|| HmError::parse(format!("missing required key \"{key}\"")))
}

fn take_string(map: &mut BTreeMap<String, Json>, key: &str) -> HmResult<String> {
    match take(map, key)? {
        Json::Str(s) => Ok(s),
        other => Err(HmError::parse(format!(
            "key \"{key}\" must be a string, found {other:?}"
        ))),
    }
}

fn reject_unknown(map: &BTreeMap<String, Json>, what: &str) -> HmResult<()> {
    if let Some(key) = map.keys().next() {
        return Err(HmError::parse(format!("{what}: unknown key \"{key}\"")));
    }
    Ok(())
}

/// Exact size parse: integer-digits + optional binary suffix go through u64
/// arithmetic (no f64 round-off even at u64::MAX), anything else falls back
/// to the lenient [`ByteSize::parse`].
fn parse_size(s: &str) -> HmResult<ByteSize> {
    let t = s.trim();
    let split = t.find(|c: char| !c.is_ascii_digit()).unwrap_or(t.len());
    let (digits, suffix) = t.split_at(split);
    let mult: Option<u64> = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => Some(1),
        "k" | "kb" | "kib" => Some(1024),
        "m" | "mb" | "mib" => Some(1024 * 1024),
        "g" | "gb" | "gib" => Some(1024 * 1024 * 1024),
        "t" | "tb" | "tib" => Some(1024u64.pow(4)),
        _ => None,
    };
    if let (Ok(value), Some(mult)) = (digits.parse::<u64>(), mult) {
        return value
            .checked_mul(mult)
            .map(ByteSize::from_bytes)
            .ok_or_else(|| HmError::parse(format!("size {s:?} overflows u64 bytes")));
    }
    ByteSize::parse(t).map_err(|e| HmError::parse(format!("size {s:?}: {e}")))
}

fn parse_u64(v: &Json, key: &str) -> HmResult<u64> {
    match v {
        Json::Str(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|e| HmError::parse(format!("key \"{key}\": {s:?} is not a u64: {e}"))),
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
            Ok(*n as u64)
        }
        other => Err(HmError::parse(format!(
            "key \"{key}\" must be an unsigned integer (as string for exactness), \
             found {other:?}"
        ))),
    }
}

fn parse_u32(v: &Json, key: &str) -> HmResult<u32> {
    let n = parse_u64(v, key)?;
    u32::try_from(n).map_err(|_| HmError::parse(format!("key \"{key}\": {n} exceeds u32")))
}

fn parse_f64(v: &Json, key: &str) -> HmResult<f64> {
    match v {
        Json::Num(n) => Ok(*n),
        other => Err(HmError::parse(format!(
            "key \"{key}\" must be a number, found {other:?}"
        ))),
    }
}

fn parse_workload(v: Json) -> HmResult<WorkloadSelector> {
    let mut map = into_object(v, "workload")?;
    let selector = if map.contains_key("app") {
        WorkloadSelector::App {
            name: take_string(&mut map, "app")?,
        }
    } else if map.contains_key("phased") {
        WorkloadSelector::Phased {
            name: take_string(&mut map, "phased")?,
            array_size: parse_size(&take_string(&mut map, "array_size")?)?,
        }
    } else if map.contains_key("multirank") {
        let family = take_string(&mut map, "multirank")?;
        match family.as_str() {
            "replicated" => WorkloadSelector::MultiRank(MultiRankSelector::Replicated {
                workload: take_string(&mut map, "workload")?,
                array_size: parse_size(&take_string(&mut map, "array_size")?)?,
                ranks: parse_u32(&take(&mut map, "ranks")?, "ranks")?,
            }),
            "rank-skew-triad" => WorkloadSelector::MultiRank(MultiRankSelector::RankSkewTriad {
                array_size: parse_size(&take_string(&mut map, "array_size")?)?,
                ranks: parse_u32(&take(&mut map, "ranks")?, "ranks")?,
                skew: parse_u32(&take(&mut map, "skew")?, "skew")?,
                passes: parse_u32(&take(&mut map, "passes")?, "passes")?,
            }),
            other => {
                return Err(HmError::parse(format!(
                    "unknown multirank family {other:?} (replicated, rank-skew-triad)"
                )))
            }
        }
    } else {
        return Err(HmError::parse(
            "workload must carry one of \"app\", \"phased\", \"multirank\"".to_string(),
        ));
    };
    reject_unknown(&map, "workload")?;
    Ok(selector)
}

fn parse_machine(s: &str) -> HmResult<MachineSelector> {
    match s {
        "knl-7250" => Ok(MachineSelector::Knl7250),
        "tiny-test" => Ok(MachineSelector::TinyTest),
        "loaded-tiny-test" => Ok(MachineSelector::LoadedTinyTest),
        other => Err(HmError::parse(format!(
            "unknown machine {other:?} (knl-7250, tiny-test, loaded-tiny-test)"
        ))),
    }
}

fn parse_memory_mode(v: Json) -> HmResult<MemoryMode> {
    match v {
        Json::Str(s) => match s.as_str() {
            "flat" => Ok(MemoryMode::Flat),
            "cache" => Ok(MemoryMode::Cache),
            other => Err(HmError::parse(format!(
                "unknown memory mode {other:?} (flat, cache, {{hybrid_cache_percent}})"
            ))),
        },
        Json::Object(mut map) => {
            let percent = parse_u32(
                &take(&mut map, "hybrid_cache_percent")?,
                "hybrid_cache_percent",
            )?;
            reject_unknown(&map, "memory_mode")?;
            let percent = u8::try_from(percent).map_err(|_| {
                HmError::parse(format!("hybrid_cache_percent {percent} exceeds u8"))
            })?;
            Ok(MemoryMode::Hybrid {
                cache_fraction_percent: percent,
            })
        }
        other => Err(HmError::parse(format!(
            "memory_mode must be a string or object, found {other:?}"
        ))),
    }
}

fn parse_approach(v: Json) -> HmResult<PlacementApproach> {
    match v {
        Json::Str(s) => match s.as_str() {
            "ddr" => Ok(PlacementApproach::DdrOnly),
            "numactl" => Ok(PlacementApproach::NumactlPreferred),
            "cache" => Ok(PlacementApproach::CacheMode),
            "online" => Ok(PlacementApproach::Online),
            other => Err(HmError::parse(format!(
                "unknown approach {other:?} (ddr, numactl, cache, online, \
                 {{autohbw_threshold}}, {{framework_strategy}})"
            ))),
        },
        Json::Object(mut map) => {
            let approach = if map.contains_key("autohbw_threshold") {
                PlacementApproach::AutoHbw {
                    threshold: parse_size(&take_string(&mut map, "autohbw_threshold")?)?,
                }
            } else if map.contains_key("framework_strategy") {
                PlacementApproach::Framework {
                    strategy: parse_strategy(take(&mut map, "framework_strategy")?)?,
                }
            } else {
                return Err(HmError::parse(
                    "approach object must carry \"autohbw_threshold\" or \
                     \"framework_strategy\""
                        .to_string(),
                ));
            };
            reject_unknown(&map, "approach")?;
            Ok(approach)
        }
        other => Err(HmError::parse(format!(
            "approach must be a string or object, found {other:?}"
        ))),
    }
}

fn parse_strategy(v: Json) -> HmResult<SelectionStrategy> {
    match v {
        Json::Str(s) => match s.as_str() {
            "density" => Ok(SelectionStrategy::Density),
            "exact-knapsack" => Ok(SelectionStrategy::ExactKnapsack),
            other => Err(HmError::parse(format!(
                "unknown strategy {other:?} (density, exact-knapsack, \
                 {{misses_threshold_percent}})"
            ))),
        },
        Json::Object(mut map) => {
            let threshold = parse_f64(
                &take(&mut map, "misses_threshold_percent")?,
                "misses_threshold_percent",
            )?;
            reject_unknown(&map, "strategy")?;
            Ok(SelectionStrategy::Misses {
                threshold_percent: threshold,
            })
        }
        other => Err(HmError::parse(format!(
            "strategy must be a string or object, found {other:?}"
        ))),
    }
}

fn parse_rank_policy(s: &str) -> HmResult<ArbiterPolicy> {
    match s {
        "fcfs" => Ok(ArbiterPolicy::Fcfs),
        "partition" => Ok(ArbiterPolicy::Partition),
        "global" => Ok(ArbiterPolicy::Global),
        other => Err(HmError::parse(format!(
            "unknown rank policy {other:?} (fcfs, partition, global)"
        ))),
    }
}

fn parse_online(v: Json) -> HmResult<OnlineConfig> {
    let mut map = into_object(v, "online")?;
    let cfg = OnlineConfig {
        epoch_accesses: parse_u64(&take(&mut map, "epoch_accesses")?, "epoch_accesses")?,
        max_moves_per_epoch: parse_u32(
            &take(&mut map, "max_moves_per_epoch")?,
            "max_moves_per_epoch",
        )?,
        min_residency_epochs: parse_u64(
            &take(&mut map, "min_residency_epochs")?,
            "min_residency_epochs",
        )?,
        heat_deadband: parse_f64(&take(&mut map, "heat_deadband")?, "heat_deadband")?,
        heat_decay: parse_f64(&take(&mut map, "heat_decay")?, "heat_decay")?,
        strategy: parse_strategy(take(&mut map, "strategy")?)?,
        pebs_period: parse_u64(&take(&mut map, "pebs_period")?, "pebs_period")?,
        migration_streams: parse_u32(&take(&mut map, "migration_streams")?, "migration_streams")?,
        seed: parse_u64(&take(&mut map, "seed")?, "seed")?,
    };
    reject_unknown(&map, "online")?;
    Ok(cfg)
}

fn parse_profiling(v: Json) -> HmResult<ProfilerConfig> {
    let mut map = into_object(v, "profiling")?;
    let cfg = ProfilerConfig {
        sampling_period: parse_u64(&take(&mut map, "sampling_period")?, "sampling_period")?,
        min_alloc_size: parse_size(&take_string(&mut map, "min_alloc_size")?)?,
        counter_snapshot_interval: Nanos(parse_f64(
            &take(&mut map, "counter_snapshot_interval_ns")?,
            "counter_snapshot_interval_ns",
        )?),
        seed: parse_u64(&take(&mut map, "seed")?, "seed")?,
    };
    reject_unknown(&map, "profiling")?;
    Ok(cfg)
}

// ---------------------------------------------------------------------------
// The committed scenario set
// ---------------------------------------------------------------------------

/// The curated scenarios committed under `scenarios/` at the workspace root
/// (one per approach on representative workloads plus the trace-driven and
/// multi-rank paths). The `run_scenario` example executes any of them; the
/// ignored `regenerate_committed_scenarios` test rewrites the files in
/// canonical form after a format change.
pub fn committed_scenarios() -> Vec<Scenario> {
    let budget = ByteSize::from_mib(256);
    let iters = 8;
    vec![
        Scenario::app("miniFE", PlacementApproach::DdrOnly, budget).with_iterations(iters),
        Scenario::app("miniFE", PlacementApproach::NumactlPreferred, budget).with_iterations(iters),
        Scenario::app("miniFE", PlacementApproach::autohbw_1m(), budget).with_iterations(iters),
        Scenario::app("miniFE", PlacementApproach::CacheMode, ByteSize::ZERO)
            .with_iterations(iters),
        Scenario::app(
            "miniFE",
            PlacementApproach::framework(SelectionStrategy::Misses {
                threshold_percent: 0.0,
            }),
            ByteSize::from_mib(128),
        )
        .with_iterations(iters),
        Scenario::app(
            "HPCG",
            PlacementApproach::framework(SelectionStrategy::Density),
            budget,
        )
        .with_iterations(iters),
        Scenario::app("SNAP", PlacementApproach::Online, budget).with_iterations(iters),
        Scenario::phased(
            "rotating-triad",
            ByteSize::from_kib(32),
            ByteSize::from_kib(96),
        )
        .with_online(OnlineConfig::default().with_epoch_accesses(8_192)),
        Scenario::multirank(
            MultiRankSelector::RankSkewTriad {
                array_size: ByteSize::from_kib(16),
                ranks: 4,
                skew: 4,
                passes: 10,
            },
            ArbiterPolicy::Global,
            ByteSize::from_kib(288),
        )
        .with_online(OnlineConfig::default().with_epoch_accesses(8_192)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_serialize_parse_round_trips() {
        for scenario in committed_scenarios() {
            let text = scenario.serialize();
            let back = Scenario::parse(&text).unwrap();
            assert_eq!(back, scenario, "value round-trip of {}", scenario.name);
            assert_eq!(
                back.serialize(),
                text,
                "byte round-trip of {}",
                scenario.name
            );
        }
    }

    #[test]
    fn committed_scenarios_validate_and_have_unique_names() {
        let scenarios = committed_scenarios();
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        for s in &scenarios {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn sizes_parse_exactly_even_at_u64_extremes() {
        assert_eq!(parse_size("96KiB").unwrap(), ByteSize::from_kib(96));
        assert_eq!(parse_size("268435456").unwrap(), ByteSize::from_mib(256));
        let max = ByteSize::from_bytes(u64::MAX);
        assert_eq!(parse_size(&max.to_string()).unwrap(), max);
        let odd = ByteSize::from_bytes((1 << 60) + 3);
        assert_eq!(parse_size(&odd.to_string()).unwrap(), odd);
        assert!(parse_size("99999999999GiB").is_err(), "overflow detected");
        // Lenient human spellings still work.
        assert_eq!(parse_size("1.5K").unwrap(), ByteSize::from_bytes(1536));
    }

    #[test]
    fn cache_approach_and_mode_must_agree() {
        let mut s = Scenario::app("miniFE", PlacementApproach::CacheMode, ByteSize::ZERO);
        s.validate().unwrap();
        s.memory_mode = MemoryMode::Flat;
        assert!(s.validate().is_err(), "cache approach needs cache mode");

        let mut s = Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64));
        s.memory_mode = MemoryMode::Cache;
        assert!(s.validate().is_err(), "cache mode needs the cache approach");
    }

    #[test]
    fn silently_ignored_knobs_are_rejected() {
        let s = Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64))
            .with_online(OnlineConfig::default());
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("online"), "{err}");

        let s = Scenario::app(
            "miniFE",
            PlacementApproach::NumactlPreferred,
            ByteSize::from_mib(64),
        )
        .with_rank_policy(ArbiterPolicy::Global);
        assert!(s.validate().is_err(), "rank policy without online approach");
    }

    #[test]
    fn non_finite_f64_knobs_are_rejected_before_they_can_poison_a_file() {
        let s = Scenario::app(
            "miniFE",
            PlacementApproach::framework(SelectionStrategy::Misses {
                threshold_percent: f64::NAN,
            }),
            ByteSize::from_mib(64),
        );
        let err = s.validate().unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");

        let online = OnlineConfig {
            strategy: SelectionStrategy::Misses {
                threshold_percent: f64::INFINITY,
            },
            ..OnlineConfig::default()
        };
        let s = Scenario::app("miniFE", PlacementApproach::Online, ByteSize::from_mib(64))
            .with_online(online);
        assert!(s.validate().is_err(), "infinite strategy threshold");

        let profiling = ProfilerConfig {
            counter_snapshot_interval: Nanos(f64::NAN),
            ..ProfilerConfig::default()
        };
        let s = Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64))
            .with_profiling(profiling);
        assert!(s.validate().is_err(), "NaN snapshot interval");
    }

    #[test]
    fn unknown_app_error_is_actionable() {
        let s = Scenario::app(
            "does-not-exist",
            PlacementApproach::DdrOnly,
            ByteSize::from_mib(64),
        );
        let err = s.validate().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("candidates") && msg.contains("miniFE"),
            "{msg}"
        );
    }

    #[test]
    fn parser_rejects_unknown_and_missing_keys() {
        let base = Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64));
        let text = base.serialize();
        let with_extra = text.replacen("\"scenario\"", "\"surprise\": 1,\n  \"scenario\"", 1);
        let err = Scenario::parse(&with_extra).unwrap_err();
        assert!(err.to_string().contains("surprise"), "{err}");

        let without_seed = text.replace("  \"seed\": \"12648430\"\n", "  \"seed2\": \"1\"\n");
        assert!(Scenario::parse(&without_seed).is_err());
    }

    /// Maintenance helper, not a check: rewrites the committed
    /// `scenarios/*.scn` files in canonical form after a format change.
    /// Run with `cargo test -p hmem-core --lib -- --ignored regenerate`.
    #[test]
    #[ignore = "maintenance helper; rewrites scenarios/ at the workspace root"]
    fn regenerate_committed_scenarios() {
        let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"));
        std::fs::create_dir_all(dir).unwrap();
        for s in committed_scenarios() {
            s.save(dir.join(format!("{}.scn", s.name))).unwrap();
        }
    }

    #[test]
    fn hostile_names_survive_serialization() {
        let hostile = "quote\" back\\slash\nnew\tline é✓ 名前";
        let s = Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64))
            .with_name(hostile);
        let back = Scenario::parse(&s.serialize()).unwrap();
        assert_eq!(back.name, hostile);
        assert_eq!(back, s);
    }
}
