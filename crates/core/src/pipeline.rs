//! The four-stage framework pipeline (Figure 2 of the paper).
//!
//! 1. **Profile** the application with the Extrae-analogue profiler on a
//!    DDR-resident run, producing a trace of allocations and PEBS samples.
//! 2. **Analyse** the trace with the Paramedir analogue, producing the
//!    per-object LLC-miss/size report.
//! 3. **Advise**: `hmem_advisor` selects the objects to promote for the given
//!    MCDRAM budget and strategy.
//! 4. **Re-run** the unmodified application with `auto-hbwmalloc` interposed,
//!    honouring the advisor's report.

use crate::simrun::{AppRun, RunConfig, RunResult};
use auto_hbwmalloc::{AllocationRouter, AutoHbwMalloc, PlacementApproach};
use hmem_advisor::{Advisor, MemorySpec, PlacementReport, SelectionStrategy};
use hmsim_analysis::{analyze_trace, analyze_try_stream, ObjectReport};
use hmsim_apps::AppSpec;
use hmsim_common::{ByteSize, HmError, HmResult};
use hmsim_profiler::ProfilerConfig;
use hmsim_trace::{write_binary_to, TraceFile, TraceReader, TraceSummary};
use std::path::PathBuf;

/// Configuration of one end-to-end pipeline execution.
#[derive(Clone, Debug)]
pub struct FrameworkPipeline {
    /// Per-rank MCDRAM budget handed to the advisor and to auto-hbwmalloc.
    pub mcdram_budget: ByteSize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Profiler configuration for the profiling run.
    pub profiler: ProfilerConfig,
    /// Iteration override applied to both runs (None = the spec's count).
    pub iterations_override: Option<u32>,
    /// Master seed; the profiling and final runs use different derived ASLR
    /// layouts, exercising the translation path exactly as a real re-run
    /// under ASLR would.
    pub seed: u64,
    /// When set, the profiling trace is written to this path through the
    /// chunked binary writer and stage 2 re-reads it as a stream from disk —
    /// the out-of-core hand-off between Extrae and Paramedir (the in-memory
    /// trace is dropped before analysis).
    pub trace_spill: Option<PathBuf>,
}

impl FrameworkPipeline {
    /// A pipeline with the paper's defaults for a given budget and strategy.
    pub fn new(mcdram_budget: ByteSize, strategy: SelectionStrategy) -> Self {
        FrameworkPipeline {
            mcdram_budget,
            strategy,
            profiler: ProfilerConfig::default(),
            iterations_override: None,
            seed: 0xBA5E,
            trace_spill: None,
        }
    }

    /// Spill the profiling trace to a binary file at `path` and run the
    /// analysis stage as a stream over it (out-of-core mode).
    pub fn with_trace_spill(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_spill = Some(path.into());
        self
    }

    /// Override the iteration count (both runs).
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations_override = Some(iterations);
        self
    }

    /// Override the profiler configuration.
    pub fn with_profiler(mut self, profiler: ProfilerConfig) -> Self {
        self.profiler = profiler;
        self
    }

    fn run_config(&self, budget: ByteSize) -> RunConfig {
        let mut cfg = RunConfig::flat(budget);
        cfg.seed = self.seed;
        if let Some(it) = self.iterations_override {
            cfg = cfg.with_iterations(it);
        }
        cfg
    }

    /// Execute the four stages for one application.
    pub fn run(&self, spec: &AppSpec) -> HmResult<FrameworkOutcome> {
        // Stage 1: profiling run (data in DDR, Extrae attached).
        let profile_cfg = self
            .run_config(self.mcdram_budget)
            .with_profiling(self.profiler.clone());
        let mut profile_run =
            AppRun::new(spec, profile_cfg).execute(PlacementApproach::DdrOnly.router()?)?;
        let trace = profile_run
            .trace
            .take()
            .ok_or_else(|| HmError::InvalidState("profiling run produced no trace".into()))?;
        let trace_summary = TraceSummary::of(&trace);

        // Stage 2: Paramedir-style analysis. In spill mode the trace goes to
        // disk through the chunked binary writer and is dropped before the
        // analysis streams it back, so events and report never coexist in
        // memory.
        let object_report: ObjectReport = match &self.trace_spill {
            None => analyze_trace(&trace),
            Some(path) => {
                Self::write_trace(&trace, path)?;
                drop(trace);
                Self::analyze_spilled(path)?
            }
        };

        // Stage 3: hmem_advisor.
        let memspec = MemorySpec::knl_budget(self.mcdram_budget);
        let placement: PlacementReport =
            Advisor::new().advise(&object_report, &memspec, self.strategy)?;

        // Stage 4: re-run with auto-hbwmalloc interposed, under a different
        // ASLR layout (different process instance).
        let (unwinder, translator) = AppRun::callstack_machinery(spec, self.seed ^ 0x5a5a_5a5a);
        let library = AutoHbwMalloc::new(placement.clone(), unwinder, translator)
            .with_budget(self.mcdram_budget);
        let final_cfg = self.run_config(self.mcdram_budget);
        let result = AppRun::new(spec, final_cfg).execute(AllocationRouter::framework(library))?;

        Ok(FrameworkOutcome {
            trace_summary,
            object_report,
            placement,
            profiling_overhead: profile_run.monitoring_overhead,
            result,
        })
    }

    /// Write `trace` to `path` through the chunked binary writer.
    fn write_trace(trace: &TraceFile, path: &PathBuf) -> HmResult<()> {
        let file = std::fs::File::create(path)?;
        write_binary_to(std::io::BufWriter::new(file), trace)?;
        Ok(())
    }

    /// Stream a spilled binary trace from disk into the per-object report.
    fn analyze_spilled(path: &PathBuf) -> HmResult<ObjectReport> {
        let reader = TraceReader::open(path)?;
        let application = reader.metadata().application.clone();
        analyze_try_stream(application, reader)
    }
}

/// Everything the pipeline produces for one application.
#[derive(Clone, Debug)]
pub struct FrameworkOutcome {
    /// Summary of the profiling trace (sample counts, allocation counts, …).
    pub trace_summary: TraceSummary,
    /// The per-object report handed to the advisor.
    pub object_report: ObjectReport,
    /// The advisor's selection.
    pub placement: PlacementReport,
    /// Monitoring overhead of the profiling run (fraction).
    pub profiling_overhead: f64,
    /// The final, placement-honouring run.
    pub result: RunResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simrun::{AppRun, RunConfig};
    use hmsim_apps::app_by_name;

    fn quick(
        budget_mib: u64,
        strategy: SelectionStrategy,
        app: &str,
    ) -> (FrameworkOutcome, RunResult) {
        let spec = app_by_name(app).unwrap();
        let pipeline =
            FrameworkPipeline::new(ByteSize::from_mib(budget_mib), strategy).with_iterations(8);
        let outcome = pipeline.run(&spec).unwrap();
        let ddr = AppRun::new(
            &spec,
            RunConfig::flat(ByteSize::from_mib(budget_mib)).with_iterations(8),
        )
        .execute(PlacementApproach::DdrOnly.router().unwrap())
        .unwrap();
        (outcome, ddr)
    }

    #[test]
    fn pipeline_improves_minife_over_ddr() {
        let (outcome, ddr) = quick(
            128,
            SelectionStrategy::Misses {
                threshold_percent: 0.0,
            },
            "miniFE",
        );
        assert!(
            outcome.result.fom > ddr.fom * 1.2,
            "framework {} vs ddr {}",
            outcome.result.fom,
            ddr.fom
        );
        // The advisor selected the hot CG objects.
        let names: Vec<&str> = outcome
            .placement
            .automatic_entries()
            .map(|e| e.name.as_str())
            .collect();
        assert!(names.contains(&"A.coefs"), "selected {names:?}");
        // And MCDRAM usage stays within the budget.
        assert!(outcome.result.mcdram_hwm <= ByteSize::from_mib(128));
        assert!(outcome.result.mcdram_hwm > ByteSize::ZERO);
    }

    #[test]
    fn pipeline_profiling_stage_matches_paper_scale() {
        let (outcome, _) = quick(64, SelectionStrategy::Density, "miniFE");
        // Sample counts per process in the thousands at most (Table I scale),
        // never the millions an instruction-level tool would produce.
        assert!(outcome.trace_summary.samples < 50_000);
        assert!(outcome.profiling_overhead < 0.1);
        assert!(outcome.object_report.total_misses > 0);
    }

    #[test]
    fn trace_spill_mode_produces_the_same_outcome() {
        let spec = app_by_name("miniFE").unwrap();
        let budget = ByteSize::from_mib(128);
        let strategy = SelectionStrategy::Misses {
            threshold_percent: 0.0,
        };
        let in_memory = FrameworkPipeline::new(budget, strategy)
            .with_iterations(6)
            .run(&spec)
            .unwrap();
        let spill_path = std::env::temp_dir().join(format!(
            "hmsim_pipeline_spill_test_{}.hmtb",
            std::process::id()
        ));
        let spilled = FrameworkPipeline::new(budget, strategy)
            .with_iterations(6)
            .with_trace_spill(&spill_path)
            .run(&spec)
            .unwrap();
        // The on-disk streamed analysis must match the in-memory analysis
        // bitwise, and everything downstream of it too.
        assert_eq!(spilled.object_report, in_memory.object_report);
        assert_eq!(spilled.placement.entries, in_memory.placement.entries);
        assert_eq!(spilled.result.fom, in_memory.result.fom);
        assert!(spill_path.exists(), "binary trace file written");
        let reader = hmsim_trace::TraceReader::open(&spill_path).unwrap();
        assert_eq!(reader.metadata().application, "miniFE");
        let _ = std::fs::remove_file(&spill_path);
    }

    #[test]
    fn bigger_budgets_never_hurt_hpcg() {
        let strategies = SelectionStrategy::Misses {
            threshold_percent: 0.0,
        };
        let (small, _) = quick(32, strategies, "HPCG");
        let (large, _) = quick(256, strategies, "HPCG");
        assert!(
            large.result.fom >= small.result.fom * 0.98,
            "256 MiB {} vs 32 MiB {}",
            large.result.fom,
            small.result.fom
        );
    }
}
