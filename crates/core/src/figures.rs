//! Generators for the paper's remaining figures and tables: the STREAM
//! scaling curves (Figure 1), the call-stack cost breakdown (Figure 3), the
//! application-characteristics table (Table I) and the SNAP Folding timeline
//! (Figure 5).

use crate::pipeline::FrameworkPipeline;
use crate::simrun::{AppRun, RunConfig, RunResult};
use auto_hbwmalloc::{AllocationRouter, AutoHbwMalloc, PlacementApproach};
use hmem_advisor::SelectionStrategy;
use hmsim_analysis::FoldedTimeline;
use hmsim_apps::{all_apps, app_by_name, AppSpec, StreamBenchmark};
use hmsim_callstack::CallstackCostModel;
use hmsim_common::{ByteSize, HmResult, Nanos};
use hmsim_machine::MachineConfig;
use hmsim_profiler::ProfilerConfig;

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// One row of Figure 1: `(cores, DDR GB/s, MCDRAM-flat GB/s, MCDRAM-cache GB/s)`.
pub type Figure1Row = (u32, f64, f64, f64);

/// Generate the Figure-1 data on the paper's KNL node.
pub fn figure1() -> Vec<Figure1Row> {
    StreamBenchmark::default().figure1(&MachineConfig::knl_7250())
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One row of Figure 3: `(call-stack depth, unwind µs, translate µs)`.
pub type Figure3Row = (usize, f64, f64);

/// Generate the Figure-3 data (depths 1–9 as in the paper).
pub fn figure3() -> Vec<Figure3Row> {
    CallstackCostModel::knl_7250().figure3_series(9)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One application's row of Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Application name and version.
    pub application: String,
    /// Source lines of code.
    pub lines_of_code: u32,
    /// Implementation language.
    pub language: String,
    /// Parallelisation model.
    pub parallelism: String,
    /// Execution geometry (ranks × threads).
    pub geometry: String,
    /// Problem size.
    pub problem_size: String,
    /// Figure-of-merit name.
    pub fom_name: String,
    /// Direct allocation statements (m/r/f/n/d/a/D).
    pub alloc_statements: String,
    /// Allocations per process per second (traced + untraced).
    pub allocs_per_process_per_second: f64,
    /// Memory high-water mark per process, MiB.
    pub memory_hwm_mib: f64,
    /// Monitoring overhead (percent of the uninstrumented run time).
    pub monitoring_overhead_percent: f64,
    /// PEBS samples captured per process.
    pub samples_per_process: u64,
    /// PEBS samples per process per second.
    pub samples_per_process_per_second: f64,
}

/// Generate Table I by running the profiler over every application model.
///
/// `iterations_override` keeps the runs short (None = the full iteration
/// counts from the specs).
pub fn table1(iterations_override: Option<u32>) -> HmResult<Vec<Table1Row>> {
    all_apps()
        .iter()
        .map(|spec| table1_row(spec, iterations_override))
        .collect()
}

/// Generate one application's Table-I row.
pub fn table1_row(spec: &AppSpec, iterations_override: Option<u32>) -> HmResult<Table1Row> {
    let mut cfg = RunConfig::flat(ByteSize::from_gib(16) / u64::from(spec.ranks.max(1)))
        .with_profiling(ProfilerConfig::default());
    if let Some(it) = iterations_override {
        cfg = cfg.with_iterations(it);
    }
    let result = AppRun::new(spec, cfg).execute(PlacementApproach::DdrOnly.router()?)?;
    let trace = result
        .trace
        .as_ref()
        .expect("profiled run always produces a trace");
    let summary = hmsim_trace::TraceSummary::of(trace);
    let secs = result.loop_time.secs().max(1e-9);

    // Scale the measured per-iteration sample rate up to the paper's full
    // iteration count so the table is comparable even with a short override.
    let full_iterations = f64::from(spec.iterations);
    let run_iterations = f64::from(iterations_override.unwrap_or(spec.iterations).max(1));
    let scale = full_iterations / run_iterations;

    Ok(Table1Row {
        application: format!("{} {}", spec.name, spec.version),
        lines_of_code: spec.lines_of_code,
        language: spec.language.to_string(),
        parallelism: spec.parallelism.to_string(),
        geometry: if spec.ranks == 1 {
            format!("{} threads", spec.threads_per_rank)
        } else {
            format!(
                "{} ranks, {} threads/rank",
                spec.ranks, spec.threads_per_rank
            )
        },
        problem_size: spec.problem_size.to_string(),
        fom_name: spec.fom_name.to_string(),
        alloc_statements: spec.alloc_statement_counts.to_string(),
        allocs_per_process_per_second: spec.small_allocs_per_second
            + spec.traced_alloc_rate(result.loop_time / run_iterations),
        memory_hwm_mib: spec.footprint().mib(),
        monitoring_overhead_percent: result.monitoring_overhead * 100.0,
        samples_per_process: (summary.samples as f64 * scale) as u64,
        samples_per_process_per_second: summary.samples as f64 / secs,
    })
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// The data behind Figure 5: SNAP's folded iteration timeline under the
/// framework and under `numactl -p 1`, plus the per-kernel MIPS that explain
/// the dip in `outer_src_calc`.
#[derive(Clone, Debug)]
pub struct Figure5Data {
    /// Folded timeline of the framework run.
    pub framework: FoldedTimeline,
    /// Folded timeline of the numactl run.
    pub numactl: FoldedTimeline,
    /// Per-kernel (name, framework MIPS, numactl MIPS).
    pub kernel_mips: Vec<(String, f64, f64)>,
}

/// Generate the Figure-5 data.
pub fn figure5(iterations: u32, bins: usize) -> HmResult<Figure5Data> {
    let spec = app_by_name("SNAP").expect("SNAP model exists");
    let budget = ByteSize::from_mib(256);

    // Dense profiling so the folded timeline has enough counter snapshots.
    let dense_profiler = ProfilerConfig {
        sampling_period: 4_001,
        counter_snapshot_interval: Nanos::from_millis(1.0),
        ..Default::default()
    };

    // Framework run: pipeline to get the placement, then a profiled re-run.
    let pipeline = FrameworkPipeline::new(
        budget,
        SelectionStrategy::Misses {
            threshold_percent: 0.0,
        },
    )
    .with_iterations(iterations);
    let outcome = pipeline.run(&spec)?;
    let (unwinder, translator) = AppRun::callstack_machinery(&spec, 0xF165);
    let library =
        AutoHbwMalloc::new(outcome.placement.clone(), unwinder, translator).with_budget(budget);
    let framework_run = AppRun::new(
        &spec,
        RunConfig::flat(budget)
            .with_iterations(iterations)
            .with_profiling(dense_profiler.clone()),
    )
    .execute(AllocationRouter::framework(library))?;

    // numactl run, also profiled.
    let numactl_run = AppRun::new(
        &spec,
        RunConfig::flat(ByteSize::from_mib(256))
            .with_iterations(iterations)
            .with_profiling(dense_profiler),
    )
    .execute(PlacementApproach::NumactlPreferred.router()?)?;

    let fold = |run: &RunResult| {
        FoldedTimeline::fold(
            run.trace.as_ref().expect("profiled run has a trace"),
            "iteration",
            bins,
        )
    };
    let framework_folded = fold(&framework_run);
    let numactl_folded = fold(&numactl_run);

    let kernel_mips = spec
        .kernels
        .iter()
        .map(|k| {
            let mips = |run: &RunResult| {
                let time = run
                    .kernel_times
                    .iter()
                    .find(|(name, _)| name == k.name)
                    .map(|(_, t)| *t)
                    .unwrap_or(Nanos::ZERO);
                let instructions = spec.instructions_per_iteration as f64 * k.instruction_share;
                if time.secs() <= 0.0 {
                    0.0
                } else {
                    instructions / time.secs() / 1e6
                }
            };
            (k.name.to_string(), mips(&framework_run), mips(&numactl_run))
        })
        .collect();

    Ok(Figure5Data {
        framework: framework_folded,
        numactl: numactl_folded,
        kernel_mips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_nine_points_with_the_expected_ordering() {
        let rows = figure1();
        assert_eq!(rows.len(), 9);
        let (_, ddr, flat, cache) = rows[rows.len() - 1];
        assert!(flat > cache && cache > ddr);
    }

    #[test]
    fn figure3_shows_the_crossover() {
        let rows = figure3();
        assert_eq!(rows.len(), 9);
        assert!(rows[0].1 > rows[0].2, "unwind dominates at depth 1");
        assert!(rows[8].2 > rows[8].1, "translate dominates at depth 9");
    }

    #[test]
    fn table1_covers_all_eight_apps_with_paper_scale_numbers() {
        let rows = table1(Some(4)).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.memory_hwm_mib > 100.0,
                "{} HWM {}",
                row.application,
                row.memory_hwm_mib
            );
            assert!(
                row.monitoring_overhead_percent < 10.0,
                "{} overhead {}",
                row.application,
                row.monitoring_overhead_percent
            );
            assert!(row.samples_per_process > 0);
        }
        // The allocation-heavy apps report the highest allocation rates.
        let rate = |name: &str| {
            rows.iter()
                .find(|r| r.application.starts_with(name))
                .unwrap()
                .allocs_per_process_per_second
        };
        assert!(rate("MAXW-DGTD") > rate("CGPOP"));
        assert!(rate("HPCG") > rate("BT"));
    }

    #[test]
    fn figure5_shows_the_outer_src_calc_dip_under_the_framework_only() {
        let data = figure5(4, 12).unwrap();
        assert!(data.framework.instances >= 4);
        let outer = data
            .kernel_mips
            .iter()
            .find(|(name, _, _)| name == "outer_src_calc")
            .unwrap();
        let sweep = data
            .kernel_mips
            .iter()
            .find(|(name, _, _)| name == "octsweep")
            .unwrap();
        // Under the framework the spill-bound routine runs at a lower MIPS
        // rate relative to numactl; the sweep kernel does not suffer as much.
        let outer_ratio = outer.1 / outer.2.max(1e-9);
        let sweep_ratio = sweep.1 / sweep.2.max(1e-9);
        assert!(
            outer_ratio < sweep_ratio,
            "outer {outer_ratio} vs sweep {sweep_ratio}"
        );
        assert!(
            outer_ratio < 1.0,
            "framework MIPS dip missing ({outer_ratio})"
        );
    }
}
