//! Text and CSV rendering of experiment results, tables and figure data.

use crate::experiment::AppExperiment;
use crate::figures::{Figure1Row, Figure3Row, Table1Row};
use hmsim_common::table::{fmt_metric, TextTable};

/// Render one application's Figure-4 data as an aligned text table.
pub fn render_app_experiment(exp: &AppExperiment) -> String {
    let mut t = TextTable::new([
        "configuration",
        "FOM",
        "speedup vs DDR",
        "MCDRAM HWM (MiB)",
        "dFOM/MiB",
    ]);
    for r in &exp.results {
        t.row([
            r.label.clone(),
            fmt_metric(r.fom),
            format!("{:.3}", r.fom / exp.ddr_fom.max(1e-12)),
            format!("{:.1}", r.mcdram_hwm.mib()),
            fmt_metric(r.dfom_per_mbyte),
        ]);
    }
    format!(
        "== {} (FOM: {}, DDR reference: {}) ==\n{}",
        exp.app,
        exp.fom_name,
        fmt_metric(exp.ddr_fom),
        t.render()
    )
}

/// Render one application's Figure-4 data as CSV.
pub fn app_experiment_csv(exp: &AppExperiment) -> String {
    let mut t = TextTable::new([
        "app",
        "configuration",
        "is_framework",
        "fom",
        "speedup",
        "mcdram_hwm_mib",
        "dfom_per_mbyte",
    ]);
    for r in &exp.results {
        t.row([
            exp.app.clone(),
            r.label.clone(),
            r.is_framework.to_string(),
            format!("{}", r.fom),
            format!("{}", r.fom / exp.ddr_fom.max(1e-12)),
            format!("{}", r.mcdram_hwm.mib()),
            format!("{}", r.dfom_per_mbyte),
        ]);
    }
    t.to_csv()
}

/// Render the Figure-1 series as an aligned table.
pub fn render_figure1(rows: &[Figure1Row]) -> String {
    let mut t = TextTable::new(["cores", "DDR GB/s", "MCDRAM/Flat GB/s", "MCDRAM/Cache GB/s"]);
    for (cores, ddr, flat, cache) in rows {
        t.row([
            cores.to_string(),
            format!("{ddr:.1}"),
            format!("{flat:.1}"),
            format!("{cache:.1}"),
        ]);
    }
    t.render()
}

/// Render the Figure-3 series as an aligned table.
pub fn render_figure3(rows: &[Figure3Row]) -> String {
    let mut t = TextTable::new(["call-stack depth", "unwind (us)", "translate (us)"]);
    for (depth, unwind, translate) in rows {
        t.row([
            depth.to_string(),
            format!("{unwind:.2}"),
            format!("{translate:.2}"),
        ]);
    }
    t.render()
}

/// Render Table I as an aligned table (the subset of columns that are
/// measured rather than purely descriptive).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = TextTable::new([
        "application",
        "LoC",
        "parallelism",
        "geometry",
        "FOM",
        "allocs/proc/s",
        "HWM (MiB/proc)",
        "overhead %",
        "samples/proc",
        "samples/proc/s",
    ]);
    for r in rows {
        t.row([
            r.application.clone(),
            r.lines_of_code.to_string(),
            r.parallelism.clone(),
            r.geometry.clone(),
            r.fom_name.clone(),
            format!("{:.2}", r.allocs_per_process_per_second),
            format!("{:.0}", r.memory_hwm_mib),
            format!("{:.2}", r.monitoring_overhead_percent),
            r.samples_per_process.to_string(),
            format!("{:.2}", r.samples_per_process_per_second),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ApproachResult;
    use hmsim_common::ByteSize;

    fn experiment() -> AppExperiment {
        AppExperiment {
            app: "HPCG".to_string(),
            fom_name: "GFLOPS".to_string(),
            ddr_fom: 11.0,
            results: vec![
                ApproachResult {
                    label: "Misses(0%)/256MiB".to_string(),
                    fom: 17.4,
                    mcdram_hwm: ByteSize::from_mib(250),
                    charged_mcdram_mib: 256.0,
                    dfom_per_mbyte: 0.025,
                    is_framework: true,
                },
                ApproachResult {
                    label: "Cache".to_string(),
                    fom: 13.9,
                    mcdram_hwm: ByteSize::ZERO,
                    charged_mcdram_mib: 16384.0,
                    dfom_per_mbyte: 0.0002,
                    is_framework: false,
                },
            ],
        }
    }

    #[test]
    fn text_rendering_contains_every_configuration() {
        let text = render_app_experiment(&experiment());
        assert!(text.contains("HPCG"));
        assert!(text.contains("Misses(0%)/256MiB"));
        assert!(text.contains("Cache"));
        assert!(text.contains("1.582"), "speedup column rendered: {text}");
    }

    #[test]
    fn csv_rendering_round_trips_through_the_csv_parser() {
        let csv = app_experiment_csv(&experiment());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let parsed = hmsim_common::table::csv_parse_line(lines[1]);
        assert_eq!(parsed[0], "HPCG");
        assert_eq!(parsed[2], "true");
    }

    #[test]
    fn figure_renderers_produce_one_row_per_point() {
        let f1 = render_figure1(&[(1, 7.0, 7.2, 6.5), (68, 85.0, 380.0, 300.0)]);
        assert_eq!(f1.lines().count(), 4);
        let f3 = render_figure3(&[(1, 7.1, 3.0), (9, 16.3, 19.4)]);
        assert!(f3.contains("call-stack depth"));
    }
}
