//! # hmem-core
//!
//! The top of the reproduction: this crate wires the substrates together into
//! the four-stage framework of the paper and drives the whole evaluation.
//!
//! * [`scenario`] — declarative, serializable simulation sessions: one
//!   [`Scenario`] value describes workload, machine, memory mode, placement
//!   approach (configuration embedded as enum payload), online knobs,
//!   arbitration, profiling and seed, and round-trips through the `.scn`
//!   text format;
//! * [`session`] — the [`Simulation`] facade dispatching a scenario to the
//!   analytic runner, the online runtime or the multi-rank runtime and
//!   returning one unified [`Outcome`];
//! * [`simrun`] — executes one application model on the machine model under a
//!   chosen placement approach, producing a figure of merit, MCDRAM usage and
//!   (optionally) an Extrae-style trace;
//! * [`pipeline`] — the profile → analyse → advise → re-run loop (steps 1–4
//!   of the paper);
//! * [`experiment`] — the Figure-4 grid: every application × MCDRAM budget ×
//!   selection strategy, plus the DDR / `numactl` / `autohbw` / cache-mode
//!   baselines;
//! * [`metrics`] — the ΔFOM/MByte efficiency metric (the paper's fourth
//!   contribution);
//! * [`figures`] — generators that print the data behind Figure 1, Figure 3,
//!   Figure 5 and Table I;
//! * [`report`] — text/CSV rendering of all of the above.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod figures;
pub mod metrics;
pub mod pipeline;

/// Scoped-thread work sharing for independent simulation runs. The
/// implementation lives in `hmsim_common` so lower layers (the multi-rank
/// shard runner in `hmsim-runtime`) can share it; this alias keeps the
/// historical `hmem_core::parallel_map` path working.
pub mod par {
    pub use hmsim_common::parallel_map;
}
pub mod report;
pub mod scenario;
pub mod session;
pub mod simrun;

pub use experiment::{
    run_app_experiment, run_full_evaluation, AppExperiment, ApproachResult, ExperimentConfig,
};
pub use metrics::delta_fom_per_mbyte;
pub use par::parallel_map;
pub use pipeline::{FrameworkOutcome, FrameworkPipeline};
pub use scenario::{
    committed_scenarios, MachineSelector, MultiRankSelector, Scenario, WorkloadSelector,
};
pub use session::{NodeAggregates, Outcome, Simulation};
pub use simrun::{AppRun, RunConfig, RunResult};
