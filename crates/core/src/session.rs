//! The `Simulation` facade: one dispatch surface for every scenario.
//!
//! [`Simulation::run`] takes a validated [`Scenario`] and routes it to the
//! right execution engine — the analytic [`AppRun`] (optionally through the
//! four-stage [`FrameworkPipeline`] when the approach embeds an advisor
//! strategy), the trace-driven [`OnlineRuntime`], or the sharded
//! [`MultiRankRuntime`](hmsim_runtime::MultiRankRuntime) — and returns one
//! unified [`Outcome`]: per-rank [`RunResult`]s plus node-level aggregates,
//! labelled with the typed [`ApproachKind`].
//!
//! The facade reproduces the hand-wired call paths bit for bit (pinned by
//! `tests/scenario_equivalence.rs`): a scenario is a *description* of a run,
//! not a different runner.

use crate::pipeline::{FrameworkOutcome, FrameworkPipeline};
use crate::scenario::{MultiRankSelector, Scenario, WorkloadSelector};
use crate::simrun::{AppRun, RunConfig, RunResult};
use auto_hbwmalloc::{ApproachKind, PlacementApproach};
use hmsim_apps::MultiRankWorkload;
use hmsim_common::{ByteSize, HmError, HmResult, Nanos};
use hmsim_machine::{EngineStats, MachineConfig, MemoryMode, TraceEngine};
use hmsim_runtime::harness::provision;
use hmsim_runtime::{run_multirank, MultiRankConfig, OnlineRuntime};

/// Node-level aggregates of one scenario run. For single-process scenarios
/// these mirror the one rank; for multi-rank runs they fold the shard
/// outcomes under the BSP assumption (ranks synchronize, so the slowest
/// shard is the node).
#[derive(Clone, Debug)]
pub struct NodeAggregates {
    /// Node wall-clock estimate (max over ranks).
    pub time: Nanos,
    /// Node figure of merit. Analytic runs report the application's FOM;
    /// trace-driven runs report throughput (accesses per second).
    pub fom: f64,
    /// LLC misses summed over ranks.
    pub llc_misses: u64,
    /// Object migrations summed over ranks (zero for static approaches).
    pub migrations: u64,
    /// Latency charged for migrations, summed over ranks.
    pub migration_time: Nanos,
    /// Fast-tier footprint: the per-rank high-water mark for single-process
    /// runs; for multi-rank runs the per-rank peaks summed (an upper bound
    /// on the simultaneous node footprint — the ranks share one pool but
    /// need not peak in the same epoch).
    pub mcdram_hwm: ByteSize,
    /// Lock-step node epochs executed (multi-rank runs; zero otherwise).
    pub node_epochs: u64,
}

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Name of the scenario that produced this outcome.
    pub scenario: String,
    /// Typed label of the placement approach.
    pub approach: ApproachKind,
    /// Per-rank results, rank order. Single-process scenarios have exactly
    /// one entry.
    pub per_rank: Vec<RunResult>,
    /// Node-level aggregates.
    pub node: NodeAggregates,
    /// The four-stage pipeline's artefacts (trace summary, object report,
    /// advisor placement) when the approach was [`ApproachKind::Framework`].
    pub framework: Option<FrameworkOutcome>,
}

impl Outcome {
    /// The single rank's result (first rank of a multi-rank run).
    pub fn result(&self) -> &RunResult {
        &self.per_rank[0]
    }

    fn single(scenario: &Scenario, result: RunResult) -> Outcome {
        let node = NodeAggregates {
            time: result.total_time,
            fom: result.fom,
            llc_misses: result.counters.llc_misses,
            migrations: result.migrations,
            migration_time: result.migration_time,
            mcdram_hwm: result.mcdram_hwm,
            node_epochs: 0,
        };
        Outcome {
            scenario: scenario.name.clone(),
            approach: result.approach,
            per_rank: vec![result],
            node,
            framework: None,
        }
    }
}

/// The one dispatch surface for scenario execution.
///
/// ```no_run
/// use hmem_core::{Scenario, Simulation};
/// use auto_hbwmalloc::PlacementApproach;
/// use hmsim_common::ByteSize;
///
/// let scenario = Scenario::app(
///     "miniFE",
///     PlacementApproach::NumactlPreferred,
///     ByteSize::from_mib(256),
/// );
/// let outcome = Simulation::new().run(&scenario).unwrap();
/// println!("{}: FOM {:.2}", outcome.scenario, outcome.node.fom);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulation;

impl Simulation {
    /// Create the facade.
    pub fn new() -> Simulation {
        Simulation
    }

    /// Validate `scenario` and execute it on the engine its workload and
    /// approach select.
    pub fn run(&self, scenario: &Scenario) -> HmResult<Outcome> {
        scenario.validate()?;
        match &scenario.workload {
            WorkloadSelector::App { name } => self.run_app(scenario, name),
            WorkloadSelector::Phased { name, array_size } => {
                self.run_phased(scenario, name, *array_size)
            }
            WorkloadSelector::MultiRank(selector) => self.run_multirank(scenario, selector),
        }
    }

    /// The machine a scenario runs on, with its memory mode applied.
    fn machine(scenario: &Scenario) -> MachineConfig {
        scenario
            .machine
            .config()
            .with_memory_mode(scenario.memory_mode)
    }

    /// The analytic path: [`AppRun`] for self-contained approaches, the
    /// four-stage [`FrameworkPipeline`] when the approach embeds a strategy.
    fn run_app(&self, scenario: &Scenario, app: &str) -> HmResult<Outcome> {
        let spec = hmsim_apps::app_by_name(app)?;

        if let PlacementApproach::Framework { strategy } = &scenario.approach {
            let mut pipeline = FrameworkPipeline::new(scenario.mcdram_budget, *strategy);
            pipeline.seed = scenario.seed;
            if let Some(iterations) = scenario.iterations {
                pipeline = pipeline.with_iterations(iterations);
            }
            if let Some(profiler) = &scenario.profiling {
                pipeline = pipeline.with_profiler(profiler.clone());
            }
            let fw = pipeline.run(&spec)?;
            let mut outcome = Outcome::single(scenario, fw.result.clone());
            outcome.framework = Some(fw);
            return Ok(outcome);
        }

        let config = RunConfig {
            machine: Self::machine(scenario),
            mcdram_capacity: if scenario.memory_mode == MemoryMode::Flat {
                scenario.mcdram_budget
            } else {
                ByteSize::ZERO
            },
            iterations_override: scenario.iterations,
            profile: scenario.profiling.clone(),
            online: scenario.online.clone(),
            rank_policy: scenario.rank_policy,
            seed: scenario.seed,
        };
        let result = AppRun::new(&spec, config).execute(scenario.approach.router()?)?;
        Ok(Outcome::single(scenario, result))
    }

    /// The trace-driven single-process path: the online migration runtime,
    /// or the plain trace engine for the DDR reference.
    fn run_phased(
        &self,
        scenario: &Scenario,
        name: &str,
        array_size: ByteSize,
    ) -> HmResult<Outcome> {
        let machine = Self::machine(scenario);
        let workload = crate::scenario::lookup_phased(name, array_size)?;
        let accesses = workload.total_accesses();

        let result = match &scenario.approach {
            PlacementApproach::Online => {
                let cfg = scenario.online.clone().unwrap_or_default();
                let mut p = provision(&workload, &machine, scenario.mcdram_budget)?;
                let mut rt = OnlineRuntime::new(&machine, scenario.mcdram_budget, cfg);
                rt.run(workload.stream(&p.ranges), &mut p.heap);
                let stats = rt.stats();
                trace_result(
                    ApproachKind::Online,
                    rt.total_time(),
                    rt.engine_stats(),
                    accesses,
                    stats.migrations,
                    stats.migration_time,
                    stats.rejected_moves,
                    stats.fast_residency_peak,
                )
            }
            PlacementApproach::DdrOnly => {
                let p = provision(&workload, &machine, scenario.mcdram_budget)?;
                let mut engine = TraceEngine::new(&machine);
                engine.run_stream(workload.stream(&p.ranges), p.heap.page_table());
                trace_result(
                    ApproachKind::Ddr,
                    engine.stats().time,
                    engine.stats(),
                    accesses,
                    0,
                    Nanos::ZERO,
                    0,
                    ByteSize::ZERO,
                )
            }
            other => {
                return Err(HmError::Config(format!(
                    "phased workloads cannot run under {other}"
                )))
            }
        };
        Ok(Outcome::single(scenario, result))
    }

    /// The sharded node path: R lock-step shards under the scenario's
    /// arbitration policy.
    fn run_multirank(
        &self,
        scenario: &Scenario,
        selector: &MultiRankSelector,
    ) -> HmResult<Outcome> {
        let machine = Self::machine(scenario);
        let workload = match selector {
            MultiRankSelector::Replicated {
                workload,
                array_size,
                ranks,
            } => MultiRankWorkload::replicated(
                crate::scenario::lookup_phased(workload, *array_size)?,
                *ranks,
            ),
            MultiRankSelector::RankSkewTriad {
                array_size,
                ranks,
                skew,
                passes,
            } => MultiRankWorkload::rank_skew_triad(*array_size, *ranks, *skew, *passes),
        };
        let mut config = MultiRankConfig::new(scenario.rank_policy, scenario.mcdram_budget);
        if let Some(online) = &scenario.online {
            config = config.with_online(online.clone());
        }
        let out = run_multirank(&workload, &machine, config)?;

        let per_rank: Vec<RunResult> = out
            .per_rank
            .iter()
            .map(|r| {
                trace_result(
                    ApproachKind::Online,
                    r.time,
                    &r.engine,
                    workload.rank(r.rank).total_accesses(),
                    r.stats.migrations,
                    r.stats.migration_time,
                    r.stats.rejected_moves,
                    r.stats.fast_residency_peak,
                )
            })
            .collect();
        let node_time = out.node_time();
        let node = NodeAggregates {
            time: node_time,
            fom: workload.total_accesses() as f64 / node_time.secs().max(1e-12),
            llc_misses: out.total_misses(),
            migrations: out.total_migrations(),
            migration_time: out
                .per_rank
                .iter()
                .fold(Nanos::ZERO, |acc, r| acc + r.stats.migration_time),
            mcdram_hwm: out
                .per_rank
                .iter()
                .map(|r| r.stats.fast_residency_peak)
                .sum(),
            node_epochs: out.node_epochs,
        };
        Ok(Outcome {
            scenario: scenario.name.clone(),
            approach: ApproachKind::Online,
            per_rank,
            node,
            framework: None,
        })
    }
}

/// Map a trace-engine run into the unified [`RunResult`] shape. Trace
/// workloads have no application FOM, so throughput (accesses per second)
/// stands in; kernel breakdown and profiling fields stay empty.
#[allow(clippy::too_many_arguments)]
fn trace_result(
    approach: ApproachKind,
    time: Nanos,
    engine: &EngineStats,
    accesses: u64,
    migrations: u64,
    migration_time: Nanos,
    migrations_rejected: u64,
    fast_residency: ByteSize,
) -> RunResult {
    RunResult {
        fom: accesses as f64 / time.secs().max(1e-12),
        total_time: time,
        loop_time: time,
        mcdram_hwm: fast_residency,
        counters: engine.counters,
        kernel_times: Vec::new(),
        monitoring_overhead: 0.0,
        allocator_time: Nanos::ZERO,
        migration_time,
        migrations,
        migrations_rejected,
        trace: None,
        approach,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_runtime::{ArbiterPolicy, OnlineConfig};

    #[test]
    fn facade_runs_every_self_contained_analytic_approach() {
        let budget = ByteSize::from_mib(256);
        for approach in [
            PlacementApproach::DdrOnly,
            PlacementApproach::NumactlPreferred,
            PlacementApproach::autohbw_1m(),
            PlacementApproach::CacheMode,
            PlacementApproach::Online,
        ] {
            let kind = approach.kind();
            let scenario = Scenario::app("miniFE", approach, budget).with_iterations(6);
            let outcome = Simulation::new().run(&scenario).unwrap();
            assert_eq!(outcome.approach, kind);
            assert_eq!(outcome.per_rank.len(), 1);
            assert!(outcome.node.fom > 0.0, "{kind}");
            assert!(outcome.framework.is_none());
            assert_eq!(outcome.result().approach, kind);
        }
    }

    #[test]
    fn facade_runs_the_framework_pipeline_and_returns_its_artefacts() {
        let scenario = Scenario::app(
            "miniFE",
            PlacementApproach::framework(hmem_advisor::SelectionStrategy::Misses {
                threshold_percent: 0.0,
            }),
            ByteSize::from_mib(128),
        )
        .with_iterations(6);
        let outcome = Simulation::new().run(&scenario).unwrap();
        assert_eq!(outcome.approach, ApproachKind::Framework);
        let fw = outcome.framework.as_ref().expect("pipeline artefacts");
        assert!(fw.placement.automatic_entries().count() > 0);
        assert!(outcome.node.fom > 0.0);
        assert!(outcome.result().mcdram_hwm > ByteSize::ZERO);
    }

    #[test]
    fn facade_rejects_invalid_scenarios_before_running() {
        let mut scenario =
            Scenario::app("miniFE", PlacementApproach::DdrOnly, ByteSize::from_mib(64));
        scenario.memory_mode = MemoryMode::Cache;
        assert!(Simulation::new().run(&scenario).is_err());
    }

    #[test]
    fn facade_runs_trace_and_multirank_scenarios() {
        let online = OnlineConfig::default().with_epoch_accesses(8_192);
        let phased = Scenario::phased(
            "rotating-triad",
            ByteSize::from_kib(16),
            ByteSize::from_kib(48),
        )
        .with_online(online.clone());
        let out = Simulation::new().run(&phased).unwrap();
        assert_eq!(out.approach, ApproachKind::Online);
        assert!(out.node.migrations > 0, "hot set rotates, objects move");
        assert!(out.node.fom > 0.0);

        let multirank = Scenario::multirank(
            MultiRankSelector::RankSkewTriad {
                array_size: ByteSize::from_kib(16),
                ranks: 4,
                skew: 4,
                passes: 10,
            },
            ArbiterPolicy::Global,
            ByteSize::from_kib(288),
        )
        .with_online(online);
        let out = Simulation::new().run(&multirank).unwrap();
        assert_eq!(out.per_rank.len(), 4);
        assert!(out.node.node_epochs > 0);
        assert!(out.node.migrations > 0);
        assert!(
            out.node.time
                >= out
                    .per_rank
                    .iter()
                    .map(|r| r.total_time)
                    .fold(Nanos::ZERO, Nanos::max)
        );
    }
}
