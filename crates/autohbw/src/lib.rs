//! # auto-hbwmalloc
//!
//! Step 4 of the paper's framework: the interposition library that re-runs
//! the unmodified application binary and transparently redirects the dynamic
//! allocations selected by `hmem_advisor` to the MCDRAM allocator.
//!
//! The centre-piece is [`interpose::AutoHbwMalloc`], a faithful
//! implementation of the paper's Algorithm 1: size pre-filtering with the
//! advisor's `lb_size`/`ub_size`, call-stack unwinding, a decision cache
//! keyed by the raw (ASLR-dependent) addresses, call-stack translation on
//! cache misses, matching against the report, a capacity check against the
//! advisor's budget, and per-allocator book-keeping (allocation counts,
//! average sizes, high-water marks, objects that did not fit).
//!
//! The crate also implements the *other* placement approaches the paper
//! compares against, behind a single [`router::AllocationRouter`] interface:
//! everything-in-DDR, `numactl -p 1` (first-come-first-served MCDRAM with DDR
//! fall-back, including static and stack data), memkind's `autohbw` library
//! (promote every dynamic allocation above a size threshold) and MCDRAM cache
//! mode (placement-transparent; the machine model does the work).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod interpose;
pub mod router;

pub use interpose::{AutoHbwMalloc, InterpositionStats};
#[allow(deprecated)]
pub use router::RouterFactory;
pub use router::{AllocationRouter, ApproachKind, PlacementApproach};
