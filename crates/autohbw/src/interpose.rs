//! Algorithm 1: the interposed `malloc`.

use hmem_advisor::PlacementReport;
use hmsim_callstack::{SiteCache, SiteDecision, Translator, Unwinder};
use hmsim_common::{Address, AddressRange, ByteSize, HmResult, Nanos, ObjectId, TierId};
use hmsim_heap::ProcessHeap;

/// Book-keeping of one interposed run (per allocator and overall), matching
/// the metrics the paper says the library captures "upon user request".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InterpositionStats {
    /// Allocations routed to the alternate (MCDRAM) allocator.
    pub promoted_allocations: u64,
    /// Allocations that matched the report but did not fit under the budget.
    pub did_not_fit: u64,
    /// Allocations served by the default allocator.
    pub default_allocations: u64,
    /// Allocations that skipped all inspection thanks to the size pre-filter.
    pub size_filtered: u64,
    /// Decision-cache hits.
    pub cache_hits: u64,
    /// Decision-cache misses (full unwind + translate path taken).
    pub cache_misses: u64,
    /// Accumulated interposition CPU overhead (unwind, translate, lookups).
    pub overhead_ns: f64,
    /// Bytes currently promoted to the alternate allocator.
    pub promoted_bytes: u64,
    /// High-water mark of promoted bytes.
    pub promoted_hwm: u64,
}

impl InterpositionStats {
    /// Total intercepted allocations.
    pub fn total_allocations(&self) -> u64 {
        self.promoted_allocations + self.default_allocations + self.size_filtered
    }

    /// The interposition overhead as a `Nanos` duration.
    pub fn overhead(&self) -> Nanos {
        Nanos(self.overhead_ns)
    }
}

/// The auto-hbwmalloc interposition library.
pub struct AutoHbwMalloc {
    report: PlacementReport,
    unwinder: Unwinder,
    translator: Translator,
    cache: SiteCache,
    /// Budget for the alternate allocator (the advisor's memory limit);
    /// `None` lets the heap's own capacity cap decide.
    budget: Option<ByteSize>,
    /// Whether the lb/ub size pre-filter is enabled (the paper notes it "can
    /// be disabled upon user request").
    size_filter_enabled: bool,
    stats: InterpositionStats,
    /// Which tier the report's automatic entries target (MCDRAM on KNL).
    fast_tier: TierId,
}

impl AutoHbwMalloc {
    /// Create the interposition library for a process whose call-stacks are
    /// produced by `unwinder`/`translator`, honouring `report`.
    pub fn new(report: PlacementReport, unwinder: Unwinder, translator: Translator) -> Self {
        AutoHbwMalloc {
            report,
            unwinder,
            translator,
            cache: SiteCache::default(),
            budget: None,
            size_filter_enabled: true,
            stats: InterpositionStats::default(),
            fast_tier: TierId::MCDRAM,
        }
    }

    /// Cap the amount of memory the library will place in the fast tier.
    pub fn with_budget(mut self, budget: ByteSize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Disable the lb/ub size pre-filter.
    pub fn with_size_filter(mut self, enabled: bool) -> Self {
        self.size_filter_enabled = enabled;
        self
    }

    /// The statistics gathered so far.
    pub fn stats(&self) -> InterpositionStats {
        self.stats
    }

    /// The placement report in force.
    pub fn report(&self) -> &PlacementReport {
        &self.report
    }

    fn fits_budget(&self, heap: &ProcessHeap, size: ByteSize) -> bool {
        let heap_ok = heap.fits(self.fast_tier, size);
        match self.budget {
            Some(budget) => {
                heap_ok && ByteSize::from_bytes(self.stats.promoted_bytes) + size <= budget
            }
            None => heap_ok,
        }
    }

    /// The interposed `malloc` (Algorithm 1). `logical_stack` is the
    /// application's call-path to the allocation call (outermost first),
    /// which the simulated unwinder converts into raw return addresses.
    ///
    /// Returns the object id, its address range, and the *total* CPU cost of
    /// the call (allocator cost plus interposition overhead).
    pub fn malloc(
        &mut self,
        heap: &mut ProcessHeap,
        size: ByteSize,
        name: &str,
        logical_stack: &[&str],
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        let mut overhead = Nanos::ZERO;
        let mut promote_to: Option<TierId> = None;

        // Line 3: size pre-filter.
        let within_size_window = !self.size_filter_enabled
            || (size >= self.report.lb_size && size <= self.report.ub_size)
            || self.report.ub_size.is_zero();
        if within_size_window && !self.report.entries.is_empty() {
            // Line 4: unwind.
            let (raw_stack, unwind_cost) = self.unwinder.unwind(logical_stack)?;
            overhead += unwind_cost;
            // Line 5: cache search.
            match self.cache.lookup(&raw_stack) {
                Some(decision) => {
                    self.stats.cache_hits += 1;
                    overhead += Nanos::from_micros(0.15);
                    if decision.promote {
                        promote_to = Some(self.fast_tier);
                    }
                }
                None => {
                    self.stats.cache_misses += 1;
                    // Line 7: translate.
                    let (translated, translate_cost) = self.translator.translate(&raw_stack);
                    overhead += translate_cost;
                    // Line 8: match against the report.
                    let site = translated.site_key();
                    let matched = self.report.tier_for_site(&site);
                    // Line 9: annotate the cache.
                    self.cache.annotate(
                        &raw_stack,
                        SiteDecision {
                            promote: matched.is_some(),
                            allocator: 0,
                        },
                    );
                    if matched.is_some() {
                        promote_to = Some(self.fast_tier);
                    }
                }
            }
        } else {
            self.stats.size_filtered += 1;
        }

        self.stats.overhead_ns += overhead.nanos();

        // Lines 11-18: allocate from the alternate allocator if selected and
        // it fits; otherwise fall back to the default allocator.
        if let Some(tier) = promote_to {
            if self.fits_budget(heap, size) {
                let site = self.site_key_of(logical_stack)?;
                let (id, range, alloc_cost) = heap.malloc(size, tier, name, Some(site), now)?;
                // Promoted allocations go through memkind's hbw_malloc, which
                // is costlier than glibc (dramatically so in the 1-2 MiB
                // anomaly window the paper reports).
                let memkind_surcharge = hmsim_heap::AllocCostModel::memkind().alloc_cost(size)
                    - hmsim_heap::AllocCostModel::glibc().alloc_cost(size);
                self.stats.overhead_ns += memkind_surcharge.nanos().max(0.0);
                self.stats.promoted_allocations += 1;
                self.stats.promoted_bytes += size.bytes();
                self.stats.promoted_hwm = self.stats.promoted_hwm.max(self.stats.promoted_bytes);
                return Ok((id, range, alloc_cost + overhead + memkind_surcharge));
            }
            self.stats.did_not_fit += 1;
        }

        // Lines 20-23: default (DDR) path.
        let site = self.site_key_of(logical_stack)?;
        let (id, range, alloc_cost) = heap.malloc(size, TierId::DDR, name, Some(site), now)?;
        self.stats.default_allocations += 1;
        Ok((id, range, alloc_cost + overhead))
    }

    /// The interposed `free`: routes the call to whichever allocator owns the
    /// pointer (the library "keep\[s\] a relation of which allocations have
    /// been done by the alternate allocators").
    pub fn free(
        &mut self,
        heap: &mut ProcessHeap,
        addr: Address,
        now: Nanos,
    ) -> HmResult<(ByteSize, Nanos)> {
        let was_promoted = heap
            .registry()
            .find_containing(addr)
            .map(|o| o.tier == self.fast_tier)
            .unwrap_or(false);
        let (size, cost) = heap.free(addr, now)?;
        if was_promoted {
            self.stats.promoted_bytes = self.stats.promoted_bytes.saturating_sub(size.bytes());
        }
        Ok((size, cost))
    }

    fn site_key_of(&self, logical_stack: &[&str]) -> HmResult<hmsim_callstack::SiteKey> {
        let (raw, _) = self.unwinder.unwind(logical_stack)?;
        let (translated, _) = self.translator.translate(&raw);
        Ok(translated.site_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmem_advisor::{MemorySpec, PlacementReport, SelectionEntry, SelectionStrategy};
    use hmsim_callstack::{AslrLayout, ProgramImage, SiteKey};
    use hmsim_common::DetRng;
    use hmsim_heap::ProcessHeap;
    use hmsim_machine::MachineConfig;

    const KERNELS: &[&str] = &["alloc_matrix", "alloc_vectors", "alloc_workspace"];

    fn setup(selected: &[(&str, u64)], budget_mib: u64) -> (AutoHbwMalloc, ProcessHeap) {
        let image = ProgramImage::synthetic_hpc_app("app.x", KERNELS);
        let aslr = AslrLayout::randomized(&image, &mut DetRng::new(17));
        let unwinder = Unwinder::new(image.clone(), aslr.clone());
        let translator = Translator::new(image, aslr);

        // Build the report with the *translated* site keys the unwinder will
        // produce for ["main", <fn>, "malloc"].
        let entries: Vec<SelectionEntry> = selected
            .iter()
            .map(|(f, mib)| {
                let (raw, _) = unwinder.unwind(&["main", f, "malloc"]).unwrap();
                let (tr, _) = translator.translate(&raw);
                SelectionEntry {
                    name: f.to_string(),
                    site: Some(tr.site_key()),
                    tier: TierId::MCDRAM,
                    tier_name: "MCDRAM".to_string(),
                    size: ByteSize::from_mib(*mib),
                    llc_misses: 1_000_000,
                    automatic: true,
                }
            })
            .collect();
        let sizes: Vec<ByteSize> = entries.iter().map(|e| e.size).collect();
        let report = PlacementReport {
            application: "test".to_string(),
            strategy: SelectionStrategy::Density,
            memspec: MemorySpec::knl_budget(ByteSize::from_mib(budget_mib)),
            entries,
            lb_size: sizes.iter().copied().min().unwrap_or(ByteSize::ZERO),
            ub_size: sizes.iter().copied().max().unwrap_or(ByteSize::ZERO),
        };
        let lib = AutoHbwMalloc::new(report, unwinder, translator)
            .with_budget(ByteSize::from_mib(budget_mib));
        let mut heap = ProcessHeap::new(&MachineConfig::knl_7250()).unwrap();
        heap.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(budget_mib))
            .unwrap();
        (lib, heap)
    }

    #[test]
    fn selected_sites_are_promoted_and_others_are_not() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 64)], 256);
        let (_, range, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "matrix",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::MCDRAM);

        let (_, range2, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "other",
                &["main", "alloc_vectors", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range2.start), TierId::DDR);

        let s = lib.stats();
        assert_eq!(s.promoted_allocations, 1);
        assert_eq!(s.default_allocations, 1);
        assert_eq!(s.promoted_bytes, ByteSize::from_mib(64).bytes());
    }

    #[test]
    fn decision_cache_avoids_repeated_translation() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 8)], 1024);
        for i in 0..10 {
            lib.malloc(
                &mut heap,
                ByteSize::from_mib(8),
                &format!("m{i}"),
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        }
        let s = lib.stats();
        assert_eq!(s.cache_misses, 1, "only the first call translates");
        assert_eq!(s.cache_hits, 9);
        assert_eq!(s.promoted_allocations, 10);
    }

    #[test]
    fn budget_limits_promotion_and_counts_misfits() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 64)], 100);
        // Two 64 MiB allocations from the selected site: the second does not
        // fit in the 100 MiB budget and falls back to DDR.
        let (_, r1, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "a",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        let (_, r2, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "b",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(r1.start), TierId::MCDRAM);
        assert_eq!(heap.page_table().tier_of(r2.start), TierId::DDR);
        assert_eq!(lib.stats().did_not_fit, 1);
        assert_eq!(lib.stats().promoted_hwm, ByteSize::from_mib(64).bytes());
    }

    #[test]
    fn freeing_promoted_memory_releases_budget() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 64)], 100);
        let (_, r1, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "a",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        lib.free(&mut heap, r1.start, Nanos::from_millis(1.0))
            .unwrap();
        // Budget is available again: the next allocation is promoted.
        let (_, r2, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "b",
                &["main", "alloc_matrix", "malloc"],
                Nanos::from_millis(2.0),
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(r2.start), TierId::MCDRAM);
        assert_eq!(lib.stats().did_not_fit, 0);
    }

    #[test]
    fn size_filter_skips_inspection_outside_the_window() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 64)], 1024);
        // 4 KiB allocation: well below lb_size (64 MiB), skipped entirely.
        let (_, range, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_kib(4),
                "tiny",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::DDR);
        assert_eq!(lib.stats().size_filtered, 1);
        assert_eq!(lib.stats().cache_misses, 0, "no unwind happened");

        // Disabling the filter forces the full path even for tiny requests.
        let (mut lib2, mut heap2) = setup(&[("alloc_matrix", 64)], 1024);
        lib2 = lib2.with_size_filter(false);
        lib2.malloc(
            &mut heap2,
            ByteSize::from_kib(4),
            "tiny",
            &["main", "alloc_matrix", "malloc"],
            Nanos::ZERO,
        )
        .unwrap();
        assert_eq!(lib2.stats().size_filtered, 0);
        assert_eq!(lib2.stats().cache_misses, 1);
    }

    #[test]
    fn overhead_accumulates_and_is_larger_on_cache_misses() {
        let (mut lib, mut heap) = setup(&[("alloc_matrix", 8)], 1024);
        lib.malloc(
            &mut heap,
            ByteSize::from_mib(8),
            "a",
            &["main", "alloc_matrix", "malloc"],
            Nanos::ZERO,
        )
        .unwrap();
        let after_miss = lib.stats().overhead_ns;
        lib.malloc(
            &mut heap,
            ByteSize::from_mib(8),
            "b",
            &["main", "alloc_matrix", "malloc"],
            Nanos::ZERO,
        )
        .unwrap();
        let after_hit = lib.stats().overhead_ns - after_miss;
        assert!(
            after_miss > after_hit,
            "miss {after_miss} vs hit {after_hit}"
        );
        assert!(lib.stats().overhead() > Nanos::ZERO);
        assert_eq!(lib.stats().total_allocations(), 2);
    }

    #[test]
    fn empty_report_routes_everything_to_ddr_without_overhead() {
        let (mut lib, mut heap) = setup(&[], 256);
        let (_, range, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(16),
                "x",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::DDR);
        assert_eq!(lib.stats().cache_misses, 0);
        assert_eq!(lib.stats().promoted_allocations, 0);
    }

    #[test]
    fn report_sites_match_across_different_aslr_layouts() {
        // Build the report under one ASLR layout and the library under a
        // different one: translation must still match the site.
        let image = ProgramImage::synthetic_hpc_app("app.x", KERNELS);
        let aslr_profile = AslrLayout::randomized(&image, &mut DetRng::new(100));
        let unwinder_p = Unwinder::new(image.clone(), aslr_profile.clone());
        let translator_p = Translator::new(image.clone(), aslr_profile);
        let (raw, _) = unwinder_p
            .unwind(&["main", "alloc_matrix", "malloc"])
            .unwrap();
        let (tr, _) = translator_p.translate(&raw);
        let profiled_site: SiteKey = tr.site_key();

        let report = PlacementReport {
            application: "x".to_string(),
            strategy: SelectionStrategy::Density,
            memspec: MemorySpec::knl_budget(ByteSize::from_mib(256)),
            entries: vec![SelectionEntry {
                name: "matrix".to_string(),
                site: Some(profiled_site),
                tier: TierId::MCDRAM,
                tier_name: "MCDRAM".to_string(),
                size: ByteSize::from_mib(32),
                llc_misses: 1,
                automatic: true,
            }],
            lb_size: ByteSize::from_mib(32),
            ub_size: ByteSize::from_mib(32),
        };

        let aslr_run = AslrLayout::randomized(&image, &mut DetRng::new(999));
        let unwinder_r = Unwinder::new(image.clone(), aslr_run.clone());
        let translator_r = Translator::new(image, aslr_run);
        let mut lib = AutoHbwMalloc::new(report, unwinder_r, translator_r);
        let mut heap = ProcessHeap::new(&MachineConfig::knl_7250()).unwrap();
        let (_, range, _) = lib
            .malloc(
                &mut heap,
                ByteSize::from_mib(32),
                "matrix",
                &["main", "alloc_matrix", "malloc"],
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::MCDRAM);
    }
}
