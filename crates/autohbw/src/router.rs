//! Placement approaches: the framework and every baseline the paper compares
//! against, behind one allocation-routing interface.
//!
//! [`PlacementApproach`] is the *self-describing* form of an approach: each
//! variant carries its own configuration as enum payload (the `autohbw` size
//! threshold, the framework's selection strategy) and knows how to build its
//! own [`AllocationRouter`] through [`PlacementApproach::router`]. That is
//! what removes the old `RouterFactory`-vs-`RunConfig` mismatch class: a
//! caller can no longer pair an online run configuration with a DDR router,
//! because the router is derived from the approach value itself.
//!
//! [`ApproachKind`] is the *typed label* of an approach — the thing results,
//! grid columns, figure legends and bench JSON keys used to carry as bare
//! strings. Its [`Display`](std::fmt::Display) impl is the single source of
//! the legend names (`DDR`, `MCDRAM*`, `autohbw`, `Cache`, `Framework`,
//! `Online`).

use crate::interpose::AutoHbwMalloc;
use hmem_advisor::SelectionStrategy;
use hmsim_callstack::SiteKey;
use hmsim_common::{Address, AddressRange, ByteSize, HmResult, Nanos, ObjectId, TierId};
use hmsim_heap::ProcessHeap;
use std::fmt;

/// The placement approaches evaluated in Figure 4.
#[derive(Clone, Debug, PartialEq)]
pub enum PlacementApproach {
    /// Everything in DDR (the reference).
    DdrOnly,
    /// `numactl -p 1`: place every allocation — static, stack and dynamic —
    /// in MCDRAM first-come-first-served, falling back to DDR when exhausted.
    NumactlPreferred,
    /// memkind's `autohbw` library: promote every dynamic allocation whose
    /// size falls in the window, FCFS until MCDRAM is exhausted.
    AutoHbw {
        /// Minimum size promoted (1 MiB in the paper's experiments).
        threshold: ByteSize,
    },
    /// MCDRAM configured as a cache: placement is transparent, everything
    /// stays in DDR from the allocator's point of view.
    CacheMode,
    /// The paper's framework: `auto-hbwmalloc` driven by an advisor report
    /// produced with the embedded selection strategy (the profile → analyse
    /// → advise → re-run pipeline).
    Framework {
        /// How the advisor ranks candidate objects for promotion.
        strategy: SelectionStrategy,
    },
    /// The online migration runtime (`hmsim-runtime`): everything is
    /// allocated in DDR and the epoch-driven placement engine migrates hot
    /// objects to fast memory while the application runs.
    Online,
}

impl PlacementApproach {
    /// The `autohbw` baseline with the paper's 1 MiB threshold.
    pub fn autohbw_1m() -> PlacementApproach {
        PlacementApproach::AutoHbw {
            threshold: ByteSize::from_mib(1),
        }
    }

    /// The framework with a given selection strategy.
    pub fn framework(strategy: SelectionStrategy) -> PlacementApproach {
        PlacementApproach::Framework { strategy }
    }

    /// The typed label of this approach (payload-free).
    pub fn kind(&self) -> ApproachKind {
        match self {
            PlacementApproach::DdrOnly => ApproachKind::Ddr,
            PlacementApproach::NumactlPreferred => ApproachKind::Numactl,
            PlacementApproach::AutoHbw { .. } => ApproachKind::AutoHbw,
            PlacementApproach::CacheMode => ApproachKind::Cache,
            PlacementApproach::Framework { .. } => ApproachKind::Framework,
            PlacementApproach::Online => ApproachKind::Online,
        }
    }

    /// Build the allocation router implementing this approach.
    ///
    /// Every self-contained approach builds here; [`Framework`] needs an
    /// advisor report and a process's unwind/translate machinery (the output
    /// of the profiling pipeline), so it cannot — run it through the
    /// `hmem-core` `Simulation` facade or build the interposition library
    /// explicitly with [`AllocationRouter::framework`].
    ///
    /// [`Framework`]: PlacementApproach::Framework
    pub fn router(&self) -> HmResult<AllocationRouter> {
        AllocationRouter::simple(self.clone())
    }
}

impl fmt::Display for PlacementApproach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementApproach::AutoHbw { threshold } => {
                write!(f, "{}/{threshold}", ApproachKind::AutoHbw)
            }
            other => other.kind().fmt(f),
        }
    }
}

/// The typed, payload-free label of a placement approach — what results and
/// reports carry instead of a bare string. One `Display` impl produces the
/// figure-legend names; [`ApproachKind::key`] produces the lowercase
/// machine-readable form used in bench JSON keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ApproachKind {
    /// Everything in DDR.
    Ddr,
    /// `numactl -p 1` (the figure legend calls it `MCDRAM*`).
    Numactl,
    /// memkind's `autohbw` size-threshold promotion.
    AutoHbw,
    /// MCDRAM as a transparent memory-side cache.
    Cache,
    /// The paper's profile-guided framework.
    Framework,
    /// The online migration runtime.
    Online,
}

impl ApproachKind {
    /// Every kind, in figure-legend presentation order.
    pub const ALL: [ApproachKind; 6] = [
        ApproachKind::Ddr,
        ApproachKind::Numactl,
        ApproachKind::AutoHbw,
        ApproachKind::Cache,
        ApproachKind::Framework,
        ApproachKind::Online,
    ];

    /// The lowercase machine-readable identifier (bench JSON keys, scenario
    /// files).
    pub fn key(self) -> &'static str {
        match self {
            ApproachKind::Ddr => "ddr",
            ApproachKind::Numactl => "numactl",
            ApproachKind::AutoHbw => "autohbw",
            ApproachKind::Cache => "cache",
            ApproachKind::Framework => "framework",
            ApproachKind::Online => "online",
        }
    }
}

impl fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ApproachKind::Ddr => "DDR",
            ApproachKind::Numactl => "MCDRAM*",
            ApproachKind::AutoHbw => "autohbw",
            ApproachKind::Cache => "Cache",
            ApproachKind::Framework => "Framework",
            ApproachKind::Online => "Online",
        })
    }
}

/// A policy that decides where every allocation goes during a run.
pub enum AllocationRouter {
    /// Simple tier-preference policies.
    Simple {
        /// Which approach this router implements.
        approach: PlacementApproach,
        /// Preferred tier for dynamic allocations meeting the criteria.
        preferred: TierId,
        /// Tier for static data.
        static_tier_preferred: bool,
        /// Tier for stack data.
        stack_tier_preferred: bool,
        /// Dynamic-allocation size window for promotion.
        size_window: Option<(ByteSize, Option<ByteSize>)>,
        /// Bytes promoted so far / HWM.
        promoted: ByteSize,
        /// High-water mark of promoted bytes.
        promoted_hwm: ByteSize,
    },
    /// The framework's interposition library.
    Interposed(Box<AutoHbwMalloc>),
}

impl AllocationRouter {
    /// Build a router for an approach. `Framework` requires the interposition
    /// library ([`AllocationRouter::framework`]), so asking for it here is a
    /// configuration error.
    pub fn simple(approach: PlacementApproach) -> HmResult<AllocationRouter> {
        let (preferred, static_pref, stack_pref, window) = match &approach {
            // Online placement starts everything in DDR; promotion happens
            // later through page migration, not through the allocator.
            PlacementApproach::DdrOnly
            | PlacementApproach::CacheMode
            | PlacementApproach::Online => (TierId::DDR, false, false, None),
            PlacementApproach::NumactlPreferred => (TierId::MCDRAM, true, true, None),
            PlacementApproach::AutoHbw { threshold } => {
                (TierId::MCDRAM, false, false, Some((*threshold, None)))
            }
            PlacementApproach::Framework { .. } => {
                return Err(hmsim_common::HmError::Config(
                    "the Framework approach needs an advisor-configured interposition \
                     library; run it through the Simulation facade or build it with \
                     AllocationRouter::framework"
                        .to_string(),
                ))
            }
        };
        Ok(AllocationRouter::Simple {
            approach,
            preferred,
            static_tier_preferred: static_pref,
            stack_tier_preferred: stack_pref,
            size_window: window,
            promoted: ByteSize::ZERO,
            promoted_hwm: ByteSize::ZERO,
        })
    }

    /// Build the framework router from a configured interposition library.
    pub fn framework(lib: AutoHbwMalloc) -> AllocationRouter {
        AllocationRouter::Interposed(Box::new(lib))
    }

    /// The typed label of the approach this router implements.
    pub fn kind(&self) -> ApproachKind {
        match self {
            AllocationRouter::Simple { approach, .. } => approach.kind(),
            AllocationRouter::Interposed(_) => ApproachKind::Framework,
        }
    }

    /// Perform a dynamic allocation.
    ///
    /// `canonical_site` is the ASLR-independent allocation-site key the
    /// caller already knows for this logical stack (the simulation runner
    /// derives it through the same unwind/translate machinery the framework
    /// uses); simple routers record it on the allocated object so that the
    /// profiling trace and the advisor's report speak the same site language.
    /// The interposed framework router ignores it and derives the site itself
    /// (Algorithm 1).
    pub fn malloc(
        &mut self,
        heap: &mut ProcessHeap,
        size: ByteSize,
        name: &str,
        logical_stack: &[&str],
        canonical_site: Option<&SiteKey>,
        now: Nanos,
    ) -> HmResult<(ObjectId, AddressRange, Nanos)> {
        match self {
            AllocationRouter::Interposed(lib) => lib.malloc(heap, size, name, logical_stack, now),
            AllocationRouter::Simple {
                approach,
                preferred,
                size_window,
                promoted,
                promoted_hwm,
                ..
            } => {
                let wants_fast = *preferred == TierId::MCDRAM
                    && size_window
                        .map(|(lo, hi)| size >= lo && hi.map(|h| size <= h).unwrap_or(true))
                        .unwrap_or(true);
                let site = canonical_site.cloned().unwrap_or_else(|| {
                    SiteKey::from_frames(logical_stack.iter().map(|f| format!("app!{f}+0x0")))
                });
                if wants_fast && heap.fits(TierId::MCDRAM, size) {
                    let (id, range, base_cost) =
                        heap.malloc(size, TierId::MCDRAM, name, Some(site), now)?;
                    // The autohbw library forwards promoted allocations to
                    // memkind's hbw_malloc, which costs more than glibc
                    // (especially in the 1-2 MiB anomaly window). numactl,
                    // by contrast, is pure page placement and pays nothing
                    // extra, so the surcharge lives here and not in the heap.
                    let surcharge = if matches!(approach, PlacementApproach::AutoHbw { .. }) {
                        let extra = hmsim_heap::AllocCostModel::memkind().alloc_cost(size)
                            - hmsim_heap::AllocCostModel::glibc().alloc_cost(size);
                        hmsim_common::Nanos(extra.nanos().max(0.0))
                    } else {
                        Nanos::ZERO
                    };
                    *promoted += size;
                    *promoted_hwm = (*promoted_hwm).max(*promoted);
                    Ok((id, range, base_cost + surcharge))
                } else {
                    heap.malloc(size, TierId::DDR, name, Some(site), now)
                }
            }
        }
    }

    /// Free a dynamic allocation.
    pub fn free(
        &mut self,
        heap: &mut ProcessHeap,
        addr: Address,
        now: Nanos,
    ) -> HmResult<(ByteSize, Nanos)> {
        match self {
            AllocationRouter::Interposed(lib) => lib.free(heap, addr, now),
            AllocationRouter::Simple { promoted, .. } => {
                let was_fast = heap
                    .registry()
                    .find_containing(addr)
                    .map(|o| o.tier == TierId::MCDRAM)
                    .unwrap_or(false);
                let (size, cost) = heap.free(addr, now)?;
                if was_fast {
                    *promoted = promoted.saturating_sub(size);
                }
                Ok((size, cost))
            }
        }
    }

    /// Which tier a static variable's pages should go to, given its size and
    /// the space remaining in MCDRAM.
    pub fn static_tier(&self, heap: &ProcessHeap, size: ByteSize) -> TierId {
        match self {
            AllocationRouter::Simple {
                static_tier_preferred: true,
                ..
            } if heap.fits(TierId::MCDRAM, size) => TierId::MCDRAM,
            _ => TierId::DDR,
        }
    }

    /// Which tier stack pages should go to.
    pub fn stack_tier(&self, heap: &ProcessHeap, size: ByteSize) -> TierId {
        match self {
            AllocationRouter::Simple {
                stack_tier_preferred: true,
                ..
            } if heap.fits(TierId::MCDRAM, size) => TierId::MCDRAM,
            _ => TierId::DDR,
        }
    }

    /// Bytes currently promoted to MCDRAM by this router (dynamic only).
    pub fn promoted_hwm(&self) -> ByteSize {
        match self {
            AllocationRouter::Simple { promoted_hwm, .. } => *promoted_hwm,
            AllocationRouter::Interposed(lib) => ByteSize::from_bytes(lib.stats().promoted_hwm),
        }
    }

    /// The interposition overhead accumulated by this router.
    pub fn interposition_overhead(&self) -> Nanos {
        match self {
            AllocationRouter::Simple { .. } => Nanos::ZERO,
            AllocationRouter::Interposed(lib) => lib.stats().overhead(),
        }
    }

    /// Access to the framework library's statistics, if this is the
    /// framework router.
    pub fn interposition_stats(&self) -> Option<crate::interpose::InterpositionStats> {
        match self {
            AllocationRouter::Interposed(lib) => Some(lib.stats()),
            AllocationRouter::Simple { .. } => None,
        }
    }
}

/// Helper constructing routers for the paper's comparison set.
#[deprecated(
    since = "0.1.0",
    note = "approaches build their own routers now: use \
            `PlacementApproach::router()` (or the hmem-core `Simulation` \
            facade for whole runs)"
)]
pub struct RouterFactory;

#[allow(deprecated)]
impl RouterFactory {
    /// The `autohbw` baseline with the paper's 1 MiB threshold.
    pub fn autohbw_1m() -> HmResult<AllocationRouter> {
        PlacementApproach::autohbw_1m().router()
    }

    /// The `numactl -p 1` baseline.
    pub fn numactl() -> HmResult<AllocationRouter> {
        PlacementApproach::NumactlPreferred.router()
    }

    /// The DDR-only reference.
    pub fn ddr() -> HmResult<AllocationRouter> {
        PlacementApproach::DdrOnly.router()
    }

    /// The cache-mode configuration (placement-transparent).
    pub fn cache_mode() -> HmResult<AllocationRouter> {
        PlacementApproach::CacheMode.router()
    }

    /// The online migration runtime: DDR-first allocation, with promotion
    /// delegated to the epoch-driven placement engine.
    pub fn online() -> HmResult<AllocationRouter> {
        PlacementApproach::Online.router()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_machine::MachineConfig;

    fn heap_with_cap(cap_mib: u64) -> ProcessHeap {
        let mut h = ProcessHeap::new(&MachineConfig::knl_7250()).unwrap();
        h.set_capacity_cap(TierId::MCDRAM, ByteSize::from_mib(cap_mib))
            .unwrap();
        h
    }

    #[test]
    fn ddr_router_never_touches_mcdram() {
        let mut heap = heap_with_cap(1024);
        let mut r = PlacementApproach::DdrOnly.router().unwrap();
        let (_, range, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(100),
                "x",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::DDR);
        assert_eq!(r.static_tier(&heap, ByteSize::from_mib(10)), TierId::DDR);
        assert_eq!(r.promoted_hwm(), ByteSize::ZERO);
        assert_eq!(r.kind(), ApproachKind::Ddr);
    }

    #[test]
    fn numactl_router_is_fcfs_until_exhausted() {
        let mut heap = heap_with_cap(150);
        let mut r = PlacementApproach::NumactlPreferred.router().unwrap();
        // Static data also prefers MCDRAM under numactl.
        assert_eq!(r.static_tier(&heap, ByteSize::from_mib(32)), TierId::MCDRAM);
        assert_eq!(r.stack_tier(&heap, ByteSize::from_mib(8)), TierId::MCDRAM);
        let (_, r1, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(100),
                "first",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (_, r2, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(100),
                "second",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(r1.start), TierId::MCDRAM);
        assert_eq!(
            heap.page_table().tier_of(r2.start),
            TierId::DDR,
            "MCDRAM exhausted"
        );
        assert_eq!(r.promoted_hwm(), ByteSize::from_mib(100));
    }

    #[test]
    fn autohbw_router_honours_the_size_threshold() {
        let mut heap = heap_with_cap(1024);
        let mut r = PlacementApproach::autohbw_1m().router().unwrap();
        let (_, small, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_kib(512),
                "small",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        let (_, big, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(2),
                "big",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(small.start), TierId::DDR);
        assert_eq!(heap.page_table().tier_of(big.start), TierId::MCDRAM);
        // autohbw never promotes statics or stacks.
        assert_eq!(r.static_tier(&heap, ByteSize::from_mib(1)), TierId::DDR);
        assert_eq!(
            format!("{}", PlacementApproach::autohbw_1m()),
            "autohbw/1MiB"
        );
        assert_eq!(r.kind(), ApproachKind::AutoHbw);
    }

    #[test]
    fn cache_mode_router_keeps_everything_in_ddr() {
        let mut heap = heap_with_cap(1024);
        let mut r = PlacementApproach::CacheMode.router().unwrap();
        let (_, range, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "x",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::DDR);
    }

    #[test]
    fn free_releases_promoted_accounting() {
        let mut heap = heap_with_cap(128);
        let mut r = PlacementApproach::NumactlPreferred.router().unwrap();
        let (_, range, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(100),
                "a",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        r.free(&mut heap, range.start, Nanos::from_millis(1.0))
            .unwrap();
        // Space is reusable afterwards.
        let (_, again, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(100),
                "b",
                &["main", "malloc"],
                None,
                Nanos::from_millis(2.0),
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(again.start), TierId::MCDRAM);
        assert_eq!(r.promoted_hwm(), ByteSize::from_mib(100));
        assert!(r.interposition_stats().is_none());
        assert_eq!(r.interposition_overhead(), Nanos::ZERO);
    }

    #[test]
    fn framework_requires_the_interposition_constructor() {
        let approach = PlacementApproach::framework(hmem_advisor::SelectionStrategy::Density);
        let err = match approach.router() {
            Err(e) => e,
            Ok(_) => panic!("Framework must not build through simple()"),
        };
        assert!(
            matches!(err, hmsim_common::HmError::Config(_)),
            "expected a typed configuration error, got {err}"
        );
        assert!(err.to_string().contains("AllocationRouter::framework"));
        assert_eq!(approach.kind(), ApproachKind::Framework);
    }

    #[test]
    fn online_router_allocates_ddr_first() {
        let mut heap = heap_with_cap(1024);
        let mut r = PlacementApproach::Online.router().unwrap();
        assert_eq!(r.kind(), ApproachKind::Online);
        let (_, range, _) = r
            .malloc(
                &mut heap,
                ByteSize::from_mib(64),
                "grid",
                &["main", "malloc"],
                None,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(heap.page_table().tier_of(range.start), TierId::DDR);
        assert_eq!(r.static_tier(&heap, ByteSize::from_mib(10)), TierId::DDR);
        assert_eq!(r.promoted_hwm(), ByteSize::ZERO);
    }

    #[test]
    fn display_names_match_the_figure_legend() {
        assert_eq!(format!("{}", PlacementApproach::DdrOnly), "DDR");
        assert_eq!(
            format!("{}", PlacementApproach::NumactlPreferred),
            "MCDRAM*"
        );
        assert_eq!(format!("{}", PlacementApproach::CacheMode), "Cache");
        assert_eq!(
            format!(
                "{}",
                PlacementApproach::framework(hmem_advisor::SelectionStrategy::Density)
            ),
            "Framework"
        );
        assert_eq!(format!("{}", PlacementApproach::Online), "Online");
        // The machine-readable keys stay lowercase and stable.
        for kind in ApproachKind::ALL {
            assert_eq!(kind.key(), kind.key().to_ascii_lowercase());
        }
        assert_eq!(ApproachKind::Online.key(), "online");
        assert_eq!(ApproachKind::Numactl.to_string(), "MCDRAM*");
    }

    /// The deprecated factory shim keeps building the same routers the
    /// approaches build for themselves (removed next PR).
    #[test]
    #[allow(deprecated)]
    fn router_factory_shim_delegates_to_the_approaches() {
        assert_eq!(RouterFactory::ddr().unwrap().kind(), ApproachKind::Ddr);
        assert_eq!(
            RouterFactory::numactl().unwrap().kind(),
            ApproachKind::Numactl
        );
        assert_eq!(
            RouterFactory::autohbw_1m().unwrap().kind(),
            ApproachKind::AutoHbw
        );
        assert_eq!(
            RouterFactory::cache_mode().unwrap().kind(),
            ApproachKind::Cache
        );
        assert_eq!(
            RouterFactory::online().unwrap().kind(),
            ApproachKind::Online
        );
    }
}
