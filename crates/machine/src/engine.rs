//! Trace-driven execution engine.
//!
//! Pushes every simulated memory access through an L1 → L2 (LLC) hierarchy;
//! LLC misses are served by the memory tier owning the page (flat mode) or by
//! the MCDRAM memory-side cache (cache mode). The engine accumulates
//! [`PerfCounters`], per-tier traffic and an execution-time estimate, and can
//! invoke a callback on every LLC miss so the PEBS sampler and the profiler
//! can observe the miss stream exactly the way the hardware exposes it.
//!
//! # Hot path
//!
//! `access_with` runs once per simulated memory access — billions of times in
//! a paper-scale sweep — so everything it touches is allocation-free and
//! array-indexed:
//!
//! * page→tier translation goes through a one-entry last-translation cache (a
//!   TLB analogue, validated against [`PageTable::translation_key`]) before
//!   falling back to the page table's two-level index;
//! * per-tier traffic lives in a fixed [`TierTraffic`] array indexed by
//!   [`TierId`], not a `HashMap`;
//! * the tier/bandwidth lookup for miss latencies is precomputed at engine
//!   construction into a per-tier latency cache, as are the cache-mode hit
//!   and miss latencies and the reciprocal MLP/frequency factors.

use crate::access::{AccessKind, MemoryAccess};
use crate::bandwidth::BandwidthModel;
use crate::cache::{CacheConfig, SetAssocCache};
use crate::config::{MachineConfig, MemoryMode};
use crate::counters::PerfCounters;
use crate::mcdram_cache::McdramCacheModel;
use crate::page_table::PageTable;
use crate::tier::MAX_TIERS;
use hmsim_common::{Address, Nanos, TierId};

/// Where an access was ultimately served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2 / last-level cache.
    Llc,
    /// Served by the memory-side MCDRAM cache (cache mode only).
    McdramCache,
    /// Served by a memory tier (flat mode, or cache-mode miss to DDR).
    Memory(TierId),
}

/// Bytes of traffic served by each memory tier, held in a fixed array so the
/// per-miss update is a single indexed add.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierTraffic {
    bytes: [u64; MAX_TIERS],
}

impl TierTraffic {
    /// Bytes served by `tier` so far.
    pub fn bytes(&self, tier: TierId) -> u64 {
        self.bytes.get(tier.index()).copied().unwrap_or(0)
    }

    /// Record `bytes` of traffic to `tier`.
    #[inline]
    pub fn add(&mut self, tier: TierId, bytes: u64) {
        self.bytes[tier.index()] += bytes;
    }

    /// Total bytes over all tiers.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Iterate over the tiers that saw traffic.
    pub fn iter(&self) -> impl Iterator<Item = (TierId, u64)> + '_ {
        self.bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .map(|(i, b)| (TierId::from_index(i), *b))
    }
}

/// Statistics accumulated by the trace engine.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Performance counters over the simulated interval.
    pub counters: PerfCounters,
    /// Bytes of traffic served by each memory tier.
    pub tier_traffic: TierTraffic,
    /// Estimated execution time of the access stream on one core.
    pub time: Nanos,
}

impl EngineStats {
    /// LLC miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.counters.llc_references == 0 {
            0.0
        } else {
            self.counters.llc_misses as f64 / self.counters.llc_references as f64
        }
    }
}

/// Precomputed cost of one access at a given service level. Latencies are
/// constants per level/tier, so the whole effective-time / cycle computation
/// (MLP overlap, frequency conversion, truncation, the `max(1)` floor) runs
/// once at engine construction instead of once per access; the per-access
/// charge collapses to one f64 add and one or two integer adds, with results
/// bit-identical to the per-access computation.
#[derive(Clone, Copy, Debug)]
struct Charge {
    /// Effective (overlap-adjusted) nanoseconds added to the time estimate.
    time_ns: f64,
    /// Truncated cycle count before the `max(1)` floor (what stalls charge).
    cycles_raw: u64,
    /// Cycle count with the `max(1)` floor applied (what `cycles` charges).
    cycles: u64,
}

impl Charge {
    fn new(latency: Nanos, overlap_divisor: f64, frequency_hz: f64) -> Self {
        let time_ns = latency.nanos() / overlap_divisor;
        // Use the exact historical expression `effective.secs() * frequency`
        // (not an algebraically equivalent reordering): f64 truncation is
        // sensitive to association, and the equivalence gates assert
        // bit-identical cycle counters against the seed formula.
        let cycles_raw = (time_ns / 1e9 * frequency_hz) as u64;
        Charge {
            time_ns,
            cycles_raw,
            cycles: cycles_raw.max(1),
        }
    }
}

/// The trace-driven engine simulating one core's cache hierarchy.
pub struct TraceEngine {
    config: MachineConfig,
    bandwidth: BandwidthModel,
    l1: SetAssocCache,
    l2: SetAssocCache,
    mcdram_cache: Option<SetAssocCache>,
    stats: EngineStats,
    /// Instructions charged per memory access (models the surrounding
    /// arithmetic); default 2.
    pub instructions_per_access: u64,
    /// One-entry last-translation cache: (page table identity key, page
    /// number, tier). Invalidated whenever the page table mutates or a
    /// different table is passed in.
    tlb: Option<((u64, u64), u64, TierId)>,
    /// L1-hit charge, precomputed.
    l1_charge: Charge,
    /// LLC-hit charge, precomputed.
    l2_charge: Charge,
    /// Per-tier (owning tier, miss charge) cache indexed by `TierId`;
    /// entries for ids absent from the machine hold the slowest-tier
    /// fallback, mirroring the page-table fallback semantics.
    mem_charge: [(TierId, Charge); MAX_TIERS],
    /// Fallback for tier ids beyond [`MAX_TIERS`]: the slowest tier.
    mem_fallback: (TierId, Charge),
    /// Cache-mode MCDRAM-hit charge, precomputed.
    cm_hit_charge: Charge,
    /// Cache-mode DDR-miss charge, precomputed.
    cm_miss_charge: Charge,
}

impl TraceEngine {
    /// Create an engine for the given machine. In cache mode a scaled
    /// direct-mapped MCDRAM cache simulator is instantiated; because a full
    /// 16 GiB tag array is wasteful for unit-scale traces, the memory-side
    /// cache is capped at 16 MiB of simulated capacity unless the machine's
    /// MCDRAM is already smaller.
    pub fn new(config: &MachineConfig) -> Self {
        let l1 = SetAssocCache::new(CacheConfig::new(
            config.l1_size,
            config.line_size,
            config.l1_ways,
        ));
        let l2 = SetAssocCache::new(CacheConfig::new(
            config.l2_size,
            config.line_size,
            config.l2_ways,
        ));
        let mcdram_cache = if config.memory_mode.cache_fraction() > 0.0 {
            let full = config
                .tiers
                .get(TierId::MCDRAM)
                .map(|t| t.capacity)
                .unwrap_or(hmsim_common::ByteSize::from_mib(16));
            let capped = full.min(hmsim_common::ByteSize::from_mib(16));
            Some(McdramCacheModel::new(capped, config.line_size).simulator())
        } else {
            None
        };

        let bandwidth = BandwidthModel::new(config);
        // Cache-level latencies are mostly hidden by out-of-order execution
        // and pipelining (charge a quarter); memory latency is overlapped by
        // MLP. Mirrors the historical per-access `charge_time`.
        let cache_charge = |l: Nanos| Charge::new(l, 4.0, config.frequency_hz);
        let mem_charge_of = |l: Nanos| Charge::new(l, config.mlp, config.frequency_hz);

        let slowest = config
            .tiers
            .slowest()
            .expect("machine has at least one tier");
        let fallback = (slowest.id, mem_charge_of(bandwidth.latency(slowest)));
        let mut mem_charge = [fallback; MAX_TIERS];
        for tier in config.tiers.iter() {
            let idx = tier.id.index();
            assert!(
                idx < MAX_TIERS,
                "tier id {:?} exceeds the engine's MAX_TIERS ({MAX_TIERS})",
                tier.id
            );
            mem_charge[idx] = (tier.id, mem_charge_of(bandwidth.latency(tier)));
        }
        let has_mcdram = config.tiers.get(TierId::MCDRAM).is_some();
        let (cm_hit_charge, cm_miss_charge) = if has_mcdram {
            (
                mem_charge_of(bandwidth.cache_mode_latency(1.0)),
                mem_charge_of(bandwidth.cache_mode_latency(0.0)),
            )
        } else {
            (fallback.1, fallback.1)
        };

        TraceEngine {
            config: config.clone(),
            l1,
            l2,
            mcdram_cache,
            stats: EngineStats::default(),
            instructions_per_access: 2,
            tlb: None,
            l1_charge: cache_charge(config.l1_latency),
            l2_charge: cache_charge(config.l2_latency),
            mem_charge,
            mem_fallback: fallback,
            cm_hit_charge,
            cm_miss_charge,
            bandwidth,
        }
    }

    /// The machine configuration this engine simulates.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The bandwidth model bound to this engine's machine.
    pub fn bandwidth(&self) -> &BandwidthModel {
        &self.bandwidth
    }

    /// Process one access. `page_table` supplies the flat-mode placement.
    /// Returns the level that served the access.
    #[inline]
    pub fn access(&mut self, acc: &MemoryAccess, page_table: &PageTable) -> ServiceLevel {
        self.access_with(acc, page_table, |_| {})
    }

    /// Translate `addr` through the one-entry TLB, falling back to the page
    /// table's two-level index.
    #[inline]
    fn translate(&mut self, addr: Address, page_table: &PageTable) -> TierId {
        let page = addr.page();
        let key = page_table.translation_key();
        if let Some((k, p, tier)) = self.tlb {
            if k == key && p == page.0 {
                return tier;
            }
        }
        let tier = page_table.tier_of_page(page);
        self.tlb = Some((key, page.0, tier));
        tier
    }

    /// The cache/memory walk shared by the scalar and streaming drivers.
    /// Deliberately touches **no** unconditional counters and charges
    /// **no** cache-hit costs — the callers account for those, per access
    /// ([`access_with`](Self::access_with)) or in bulk
    /// ([`run_stream`](Self::run_stream)).
    #[inline(always)]
    fn access_kernel<F: FnMut(Address)>(
        &mut self,
        acc: &MemoryAccess,
        page_table: &PageTable,
        on_llc_miss: &mut F,
    ) -> ServiceLevel {
        let is_store = acc.kind == AccessKind::Store;
        if self.l1.access(acc.address, is_store) {
            return ServiceLevel::L1;
        }
        if self.l2.access(acc.address, is_store) {
            return ServiceLevel::Llc;
        }
        on_llc_miss(acc.address);

        // LLC miss: serve from the memory system.
        let line = self.config.line_size;
        match self.config.memory_mode {
            MemoryMode::Flat | MemoryMode::Hybrid { .. } => {
                let tier_id = self.translate(acc.address, page_table);
                // Per-tier latency cache: unknown tiers hold the
                // slowest-tier fallback, so no TierSet walk on the miss path.
                let (served_by, charge) = self
                    .mem_charge
                    .get(tier_id.index())
                    .copied()
                    .unwrap_or(self.mem_fallback);
                self.stats.tier_traffic.add(served_by, line);
                self.charge_memory(charge);
                ServiceLevel::Memory(served_by)
            }
            MemoryMode::Cache => {
                let mc_hit = self
                    .mcdram_cache
                    .as_mut()
                    .map(|c| c.access(acc.address, is_store))
                    .unwrap_or(false);
                if mc_hit {
                    self.stats.tier_traffic.add(TierId::MCDRAM, line);
                    self.charge_memory(self.cm_hit_charge);
                    ServiceLevel::McdramCache
                } else {
                    self.stats.tier_traffic.add(TierId::DDR, line);
                    self.stats.tier_traffic.add(TierId::MCDRAM, line);
                    self.charge_memory(self.cm_miss_charge);
                    ServiceLevel::Memory(TierId::DDR)
                }
            }
        }
    }

    /// Process one access, invoking `on_llc_miss` with the address whenever
    /// the access misses the LLC (this is the hook the PEBS sampler uses).
    #[inline]
    pub fn access_with<F: FnMut(Address)>(
        &mut self,
        acc: &MemoryAccess,
        page_table: &PageTable,
        mut on_llc_miss: F,
    ) -> ServiceLevel {
        self.stats.counters.instructions += self.instructions_per_access;
        self.stats.counters.l1_references += 1;
        let level = self.access_kernel(acc, page_table, &mut on_llc_miss);
        match level {
            ServiceLevel::L1 => self.charge_cache(self.l1_charge),
            ServiceLevel::Llc => {
                self.stats.counters.l1_misses += 1;
                self.stats.counters.llc_references += 1;
                self.charge_cache(self.l2_charge);
            }
            ServiceLevel::McdramCache | ServiceLevel::Memory(_) => {
                self.stats.counters.l1_misses += 1;
                self.stats.counters.llc_references += 1;
                self.stats.counters.llc_misses += 1;
            }
        }
        level
    }

    /// Run a whole materialized access stream, returning the number of LLC
    /// misses it produced.
    pub fn run(&mut self, accesses: &[MemoryAccess], page_table: &PageTable) -> u64 {
        self.run_stream(accesses.iter().copied(), page_table)
    }

    /// Run a streaming access sequence without materializing it, returning
    /// the number of LLC misses it produced. This is the preferred driver for
    /// paper-scale sweeps: generators (see `hmsim_apps`) yield accesses one
    /// at a time, so a billion-access run needs no multi-GiB vector.
    ///
    /// Unconditional counters and the constant cache-hit charges are
    /// accumulated in bulk after the loop; the resulting [`PerfCounters`] are
    /// integer-for-integer identical to the scalar [`access`](Self::access)
    /// path (the `time` estimate can differ in the last floating-point ulps
    /// because constant charges are multiplied rather than summed).
    pub fn run_stream<I>(&mut self, accesses: I, page_table: &PageTable) -> u64
    where
        I: IntoIterator<Item = MemoryAccess>,
    {
        let mut n = 0u64;
        let mut l1_hits = 0u64;
        let mut llc_hits = 0u64;
        for a in accesses {
            n += 1;
            // Inline L1 line-buffer check: the dominant case of a sweep
            // (several element touches per cache line) takes two compares
            // and two adds, no dispatch.
            if self.l1.buffered_hit(a.address, a.kind == AccessKind::Store) {
                l1_hits += 1;
                continue;
            }
            match self.access_kernel(&a, page_table, &mut |_| {}) {
                ServiceLevel::L1 => l1_hits += 1,
                ServiceLevel::Llc => llc_hits += 1,
                ServiceLevel::McdramCache | ServiceLevel::Memory(_) => {}
            }
        }
        let l1_misses = n - l1_hits;
        let llc_misses = l1_misses - llc_hits;
        let c = &mut self.stats.counters;
        c.instructions += n * self.instructions_per_access;
        c.l1_references += n;
        c.l1_misses += l1_misses;
        c.llc_references += l1_misses;
        c.llc_misses += llc_misses;
        c.cycles += l1_hits * self.l1_charge.cycles + llc_hits * self.l2_charge.cycles;
        self.stats.time.0 +=
            l1_hits as f64 * self.l1_charge.time_ns + llc_hits as f64 * self.l2_charge.time_ns;
        llc_misses
    }

    #[inline]
    fn charge_cache(&mut self, charge: Charge) {
        self.stats.time.0 += charge.time_ns;
        self.stats.counters.cycles += charge.cycles;
    }

    #[inline]
    fn charge_memory(&mut self, charge: Charge) {
        self.stats.time.0 += charge.time_ns;
        self.stats.counters.cycles += charge.cycles;
        self.stats.counters.stall_cycles += charge.cycles_raw;
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Reset all statistics, flush the caches and drop cached translations.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        if let Some(c) = &mut self.mcdram_cache {
            c.flush();
        }
        self.stats = EngineStats::default();
        self.tlb = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{sequential_sweep, AccessKind};
    use hmsim_common::{AddressRange, ByteSize, Page};

    fn flat_engine() -> (TraceEngine, PageTable) {
        let cfg = MachineConfig::tiny_test();
        (TraceEngine::new(&cfg), PageTable::new(TierId::DDR))
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x1000), ByteSize::from_kib(2));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        e.run(&sweep, &pt);
        let first_pass_misses = e.stats().counters.llc_misses;
        e.run(&sweep, &pt);
        // Second pass: everything fits in the 4 KiB L1 -> no new LLC misses.
        assert_eq!(e.stats().counters.llc_misses, first_pass_misses);
    }

    #[test]
    fn large_working_set_misses_llc_and_hits_memory_tier() {
        let (mut e, mut pt) = flat_engine();
        // 1 MiB working set vs 64 KiB L2.
        let range = AddressRange::new(Address(0x10_0000), ByteSize::from_mib(1));
        pt.map_range(range, TierId::MCDRAM);
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        let misses = e.run(&sweep, &pt);
        assert!(misses > 0);
        let traffic = e.stats().tier_traffic.bytes(TierId::MCDRAM);
        assert_eq!(traffic, misses * 64);
        assert_eq!(e.stats().tier_traffic.bytes(TierId::DDR), 0);
    }

    #[test]
    fn llc_miss_callback_fires_per_miss() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x20_0000), ByteSize::from_kib(256));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        let mut observed = 0u64;
        for a in &sweep {
            e.access_with(a, &pt, |_| observed += 1);
        }
        assert_eq!(observed, e.stats().counters.llc_misses);
        assert!(observed > 0);
    }

    #[test]
    fn cache_mode_routes_misses_through_mcdram_cache() {
        let cfg = MachineConfig::tiny_test().with_memory_mode(MemoryMode::Cache);
        let mut e = TraceEngine::new(&cfg);
        let pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(0x40_0000), ByteSize::from_kib(512));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        // First pass: cold misses go to DDR (and install in the MCDRAM cache).
        e.run(&sweep, &pt);
        let ddr_first = e.stats().tier_traffic.bytes(TierId::DDR);
        assert!(ddr_first > 0);
        // Second pass: the 512 KiB working set fits in the scaled MCDRAM
        // cache, so DDR traffic must not grow much.
        e.run(&sweep, &pt);
        let ddr_second = e.stats().tier_traffic.bytes(TierId::DDR);
        assert!(
            ddr_second < ddr_first * 2,
            "DDR traffic kept growing: {ddr_first} -> {ddr_second}"
        );
        let service = e.access(&MemoryAccess::load(Address(0x40_0000), 8), &pt);
        // The line was just re-installed; L1 or LLC or MCDRAM cache must own it.
        assert!(matches!(
            service,
            ServiceLevel::L1 | ServiceLevel::Llc | ServiceLevel::McdramCache
        ));
    }

    #[test]
    fn time_and_counters_accumulate() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x80_0000), ByteSize::from_kib(128));
        let sweep = sequential_sweep(range, 8, AccessKind::Store);
        e.run(&sweep, &pt);
        let s = e.stats();
        assert!(s.time.nanos() > 0.0);
        assert!(s.counters.instructions >= sweep.len() as u64);
        assert!(s.counters.cycles > 0);
        assert!(s.llc_miss_ratio() > 0.0);
        let mut e2 = e;
        e2.reset();
        assert_eq!(e2.stats().counters.instructions, 0);
        assert_eq!(e2.stats().time, Nanos::ZERO);
    }

    #[test]
    fn tlb_tracks_page_table_mutations() {
        let (mut e, mut pt) = flat_engine();
        let range = AddressRange::new(Address(0x100_0000), ByteSize::from_kib(512));
        pt.map_range(range, TierId::MCDRAM);
        // Thrash the LLC so repeated accesses to the probe page keep missing:
        // two conflicting far-apart pages plus the probe page.
        let probe = Address(0x100_0000);
        let drive = |e: &mut TraceEngine, pt: &PageTable| -> ServiceLevel {
            // Evict the probe line from L1/L2 by sweeping > L2 capacity.
            let evict = sequential_sweep(
                AddressRange::new(Address(0x800_0000), ByteSize::from_kib(256)),
                8,
                AccessKind::Load,
            );
            e.run(&evict, pt);
            e.access(&MemoryAccess::load(probe, 8), pt)
        };
        assert_eq!(drive(&mut e, &pt), ServiceLevel::Memory(TierId::MCDRAM));
        // Mutate the placement: the cached translation must be dropped.
        pt.unmap_range(range);
        assert_eq!(drive(&mut e, &pt), ServiceLevel::Memory(TierId::DDR));
        pt.map_page(probe.page(), TierId::MCDRAM);
        assert_eq!(drive(&mut e, &pt), ServiceLevel::Memory(TierId::MCDRAM));
    }

    #[test]
    fn run_stream_matches_run_on_same_accesses() {
        let cfg = MachineConfig::tiny_test();
        let mut scalar = TraceEngine::new(&cfg);
        let mut streaming = TraceEngine::new(&cfg);
        let mut pt = PageTable::new(TierId::DDR);
        pt.map_range(
            AddressRange::new(Address(0x10_0000), ByteSize::from_kib(256)),
            TierId::MCDRAM,
        );
        let sweep = sequential_sweep(
            AddressRange::new(Address(0x10_0000), ByteSize::from_kib(512)),
            8,
            AccessKind::Load,
        );
        let a = scalar.run(&sweep, &pt);
        let b = streaming.run_stream(sweep.iter().copied(), &pt);
        assert_eq!(a, b);
        assert_eq!(scalar.stats().counters, streaming.stats().counters);
        assert_eq!(scalar.stats().tier_traffic, streaming.stats().tier_traffic);
    }

    #[test]
    fn unknown_tier_falls_back_to_slowest() {
        let (mut e, mut pt) = flat_engine();
        // Map a page to a tier id the tiny machine does not have.
        let page = Page(0x5000);
        pt.map_page(page, TierId(3));
        let acc = MemoryAccess::load(page.base(), 8);
        // Force an LLC miss by touching it cold.
        let level = e.access(&acc, &pt);
        assert_eq!(level, ServiceLevel::Memory(TierId::DDR));
        assert!(e.stats().tier_traffic.bytes(TierId::DDR) > 0);
    }

    #[test]
    fn tier_traffic_iterates_non_zero_entries() {
        let mut t = TierTraffic::default();
        t.add(TierId::MCDRAM, 128);
        t.add(TierId::MCDRAM, 64);
        assert_eq!(t.bytes(TierId::MCDRAM), 192);
        assert_eq!(t.bytes(TierId::DDR), 0);
        assert_eq!(t.total(), 192);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries, vec![(TierId::MCDRAM, 192)]);
        // Out-of-range ids read as zero instead of panicking.
        assert_eq!(t.bytes(TierId(100)), 0);
    }
}
