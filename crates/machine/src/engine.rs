//! Trace-driven execution engine.
//!
//! Pushes every simulated memory access through an L1 → L2 (LLC) hierarchy;
//! LLC misses are served by the memory tier owning the page (flat mode) or by
//! the MCDRAM memory-side cache (cache mode). The engine accumulates
//! [`PerfCounters`], per-tier traffic and an execution-time estimate, and can
//! invoke a callback on every LLC miss so the PEBS sampler and the profiler
//! can observe the miss stream exactly the way the hardware exposes it.

use crate::access::{AccessKind, MemoryAccess};
use crate::bandwidth::BandwidthModel;
use crate::cache::{CacheConfig, SetAssocCache};
use crate::config::{MachineConfig, MemoryMode};
use crate::counters::PerfCounters;
use crate::mcdram_cache::McdramCacheModel;
use crate::page_table::PageTable;
use hmsim_common::{Address, Nanos, TierId};
use std::collections::HashMap;

/// Where an access was ultimately served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2 / last-level cache.
    Llc,
    /// Served by the memory-side MCDRAM cache (cache mode only).
    McdramCache,
    /// Served by a memory tier (flat mode, or cache-mode miss to DDR).
    Memory(TierId),
}

/// Statistics accumulated by the trace engine.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Performance counters over the simulated interval.
    pub counters: PerfCounters,
    /// Bytes of traffic served by each memory tier.
    pub tier_traffic: HashMap<TierId, u64>,
    /// Estimated execution time of the access stream on one core.
    pub time: Nanos,
}

impl EngineStats {
    /// LLC miss ratio.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.counters.llc_references == 0 {
            0.0
        } else {
            self.counters.llc_misses as f64 / self.counters.llc_references as f64
        }
    }
}

/// The trace-driven engine simulating one core's cache hierarchy.
pub struct TraceEngine {
    config: MachineConfig,
    bandwidth: BandwidthModel,
    l1: SetAssocCache,
    l2: SetAssocCache,
    mcdram_cache: Option<SetAssocCache>,
    stats: EngineStats,
    /// Instructions charged per memory access (models the surrounding
    /// arithmetic); default 2.
    pub instructions_per_access: u64,
}

impl TraceEngine {
    /// Create an engine for the given machine. In cache mode a scaled
    /// direct-mapped MCDRAM cache simulator is instantiated; because a full
    /// 16 GiB tag array is wasteful for unit-scale traces, the memory-side
    /// cache is capped at 16 MiB of simulated capacity unless the machine's
    /// MCDRAM is already smaller.
    pub fn new(config: &MachineConfig) -> Self {
        let l1 = SetAssocCache::new(CacheConfig::new(
            config.l1_size,
            config.line_size,
            config.l1_ways,
        ));
        let l2 = SetAssocCache::new(CacheConfig::new(
            config.l2_size,
            config.line_size,
            config.l2_ways,
        ));
        let mcdram_cache = if config.memory_mode.cache_fraction() > 0.0 {
            let full = config
                .tiers
                .get(TierId::MCDRAM)
                .map(|t| t.capacity)
                .unwrap_or(hmsim_common::ByteSize::from_mib(16));
            let capped = full.min(hmsim_common::ByteSize::from_mib(16));
            Some(McdramCacheModel::new(capped, config.line_size).simulator())
        } else {
            None
        };
        TraceEngine {
            config: config.clone(),
            bandwidth: BandwidthModel::new(config),
            l1,
            l2,
            mcdram_cache,
            stats: EngineStats::default(),
            instructions_per_access: 2,
        }
    }

    /// The machine configuration this engine simulates.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Process one access. `page_table` supplies the flat-mode placement.
    /// Returns the level that served the access.
    pub fn access(&mut self, acc: &MemoryAccess, page_table: &PageTable) -> ServiceLevel {
        self.access_with(acc, page_table, |_| {})
    }

    /// Process one access, invoking `on_llc_miss` with the address whenever
    /// the access misses the LLC (this is the hook the PEBS sampler uses).
    pub fn access_with<F: FnMut(Address)>(
        &mut self,
        acc: &MemoryAccess,
        page_table: &PageTable,
        mut on_llc_miss: F,
    ) -> ServiceLevel {
        let is_store = acc.kind == AccessKind::Store;
        self.stats.counters.instructions += self.instructions_per_access;
        self.stats.counters.l1_references += 1;

        if self.l1.access(acc.address, is_store) {
            self.stats.counters.l1_hits_add();
            self.charge_time(self.config.l1_latency, false);
            return ServiceLevel::L1;
        }
        self.stats.counters.l1_misses += 1;
        self.stats.counters.llc_references += 1;

        if self.l2.access(acc.address, is_store) {
            self.charge_time(self.config.l2_latency, false);
            return ServiceLevel::Llc;
        }
        self.stats.counters.llc_misses += 1;
        on_llc_miss(acc.address);

        // LLC miss: serve from the memory system.
        let line = self.config.line_size;
        match self.config.memory_mode {
            MemoryMode::Flat | MemoryMode::Hybrid { .. } => {
                let tier_id = page_table.tier_of(acc.address);
                let tier = self
                    .config
                    .tiers
                    .get(tier_id)
                    .unwrap_or_else(|| self.config.tiers.slowest().expect("tiers non-empty"));
                let served_by = tier.id;
                let latency = self.bandwidth.latency(tier);
                *self.stats.tier_traffic.entry(served_by).or_insert(0) += line;
                self.charge_time(latency, true);
                ServiceLevel::Memory(served_by)
            }
            MemoryMode::Cache => {
                let mc_hit = self
                    .mcdram_cache
                    .as_mut()
                    .map(|c| c.access(acc.address, is_store))
                    .unwrap_or(false);
                if mc_hit {
                    *self.stats.tier_traffic.entry(TierId::MCDRAM).or_insert(0) += line;
                    self.charge_time(self.bandwidth.cache_mode_latency(1.0), true);
                    ServiceLevel::McdramCache
                } else {
                    *self.stats.tier_traffic.entry(TierId::DDR).or_insert(0) += line;
                    *self.stats.tier_traffic.entry(TierId::MCDRAM).or_insert(0) += line;
                    self.charge_time(self.bandwidth.cache_mode_latency(0.0), true);
                    ServiceLevel::Memory(TierId::DDR)
                }
            }
        }
    }

    /// Run a whole access stream, returning the number of LLC misses it
    /// produced.
    pub fn run(&mut self, accesses: &[MemoryAccess], page_table: &PageTable) -> u64 {
        let before = self.stats.counters.llc_misses;
        for a in accesses {
            self.access(a, page_table);
        }
        self.stats.counters.llc_misses - before
    }

    fn charge_time(&mut self, latency: Nanos, is_memory: bool) {
        // Memory latency is overlapped by MLP; cache latencies are mostly
        // hidden by out-of-order/pipelining, charge a fraction.
        let effective = if is_memory {
            latency / self.config.mlp
        } else {
            latency / 4.0
        };
        self.stats.time += effective;
        let cycles = (effective.secs() * self.config.frequency_hz) as u64;
        self.stats.counters.cycles += cycles.max(1);
        if is_memory {
            self.stats.counters.stall_cycles += cycles;
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Reset all statistics and flush the caches.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        if let Some(c) = &mut self.mcdram_cache {
            c.flush();
        }
        self.stats = EngineStats::default();
    }
}

// Small private helper so the counter update above reads naturally.
trait L1HitExt {
    fn l1_hits_add(&mut self);
}

impl L1HitExt for PerfCounters {
    fn l1_hits_add(&mut self) {
        // L1 hits are implicit (references - misses); nothing to store, but
        // the call site documents intent.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{sequential_sweep, AccessKind};
    use hmsim_common::{AddressRange, ByteSize};

    fn flat_engine() -> (TraceEngine, PageTable) {
        let cfg = MachineConfig::tiny_test();
        (TraceEngine::new(&cfg), PageTable::new(TierId::DDR))
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x1000), ByteSize::from_kib(2));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        e.run(&sweep, &pt);
        let first_pass_misses = e.stats().counters.llc_misses;
        e.run(&sweep, &pt);
        // Second pass: everything fits in the 4 KiB L1 -> no new LLC misses.
        assert_eq!(e.stats().counters.llc_misses, first_pass_misses);
    }

    #[test]
    fn large_working_set_misses_llc_and_hits_memory_tier() {
        let (mut e, mut pt) = flat_engine();
        // 1 MiB working set vs 64 KiB L2.
        let range = AddressRange::new(Address(0x10_0000), ByteSize::from_mib(1));
        pt.map_range(range, TierId::MCDRAM);
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        let misses = e.run(&sweep, &pt);
        assert!(misses > 0);
        let traffic = e.stats().tier_traffic.get(&TierId::MCDRAM).copied().unwrap_or(0);
        assert_eq!(traffic, misses * 64);
        assert!(!e.stats().tier_traffic.contains_key(&TierId::DDR));
    }

    #[test]
    fn llc_miss_callback_fires_per_miss() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x20_0000), ByteSize::from_kib(256));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        let mut observed = 0u64;
        for a in &sweep {
            e.access_with(a, &pt, |_| observed += 1);
        }
        assert_eq!(observed, e.stats().counters.llc_misses);
        assert!(observed > 0);
    }

    #[test]
    fn cache_mode_routes_misses_through_mcdram_cache() {
        let cfg = MachineConfig::tiny_test().with_memory_mode(MemoryMode::Cache);
        let mut e = TraceEngine::new(&cfg);
        let pt = PageTable::new(TierId::DDR);
        let range = AddressRange::new(Address(0x40_0000), ByteSize::from_kib(512));
        let sweep = sequential_sweep(range, 8, AccessKind::Load);
        // First pass: cold misses go to DDR (and install in the MCDRAM cache).
        e.run(&sweep, &pt);
        let ddr_first = e.stats().tier_traffic.get(&TierId::DDR).copied().unwrap_or(0);
        assert!(ddr_first > 0);
        // Second pass: the 512 KiB working set fits in the scaled MCDRAM
        // cache, so DDR traffic must not grow much.
        e.run(&sweep, &pt);
        let ddr_second = e.stats().tier_traffic.get(&TierId::DDR).copied().unwrap_or(0);
        assert!(
            ddr_second < ddr_first * 2,
            "DDR traffic kept growing: {ddr_first} -> {ddr_second}"
        );
        let service = e.access(
            &MemoryAccess::load(Address(0x40_0000), 8),
            &pt,
        );
        // The line was just re-installed; L1 or LLC or MCDRAM cache must own it.
        assert!(matches!(
            service,
            ServiceLevel::L1 | ServiceLevel::Llc | ServiceLevel::McdramCache
        ));
    }

    #[test]
    fn time_and_counters_accumulate() {
        let (mut e, pt) = flat_engine();
        let range = AddressRange::new(Address(0x80_0000), ByteSize::from_kib(128));
        let sweep = sequential_sweep(range, 8, AccessKind::Store);
        e.run(&sweep, &pt);
        let s = e.stats();
        assert!(s.time.nanos() > 0.0);
        assert!(s.counters.instructions >= sweep.len() as u64);
        assert!(s.counters.cycles > 0);
        assert!(s.llc_miss_ratio() > 0.0);
        let mut e2 = e;
        e2.reset();
        assert_eq!(e2.stats().counters.instructions, 0);
        assert_eq!(e2.stats().time, Nanos::ZERO);
    }
}
