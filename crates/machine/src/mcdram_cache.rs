//! Model of MCDRAM operating as a direct-mapped memory-side cache.
//!
//! In cache mode the 16 GiB of MCDRAM front all DDR accesses. The paper notes
//! that cache mode "is not as efficient as consciously exploiting it in flat
//! mode, especially for those workloads where the lack of associativity is a
//! problem" — this module provides both an analytical hit-rate estimate used
//! by the phase-cost engine and a trace-driven direct-mapped simulator used
//! by tests and ablation studies.

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use hmsim_common::{Address, ByteSize};

/// Analytical + trace-driven model of the memory-side cache.
#[derive(Clone, Debug)]
pub struct McdramCacheModel {
    capacity: ByteSize,
    line_size: u64,
    /// Baseline probability that two hot lines conflict even when the working
    /// set fits (direct-mapped pathologies, page colouring effects).
    conflict_factor: f64,
}

impl McdramCacheModel {
    /// Create a model of a direct-mapped memory-side cache of `capacity`.
    pub fn new(capacity: ByteSize, line_size: u64) -> Self {
        McdramCacheModel {
            capacity,
            line_size,
            conflict_factor: 0.06,
        }
    }

    /// The KNL 16 GiB MCDRAM cache.
    pub fn knl() -> Self {
        Self::new(ByteSize::from_gib(16), 64)
    }

    /// Override the conflict factor (tests, sensitivity studies).
    pub fn with_conflict_factor(mut self, f: f64) -> Self {
        self.conflict_factor = f.clamp(0.0, 1.0);
        self
    }

    /// Cache capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Analytical estimate of the hit rate for an application whose *hot*
    /// working set is `working_set` bytes and whose accesses have
    /// `irregularity` in `[0, 1]` (0 = perfectly streaming, 1 = uniformly
    /// random over the working set).
    ///
    /// * If the working set fits, hits dominate but direct-mapped conflicts
    ///   remove a slice proportional to occupancy and irregularity.
    /// * If it does not fit, the resident fraction bounds the hit rate; a
    ///   streaming access pattern over an over-sized working set degrades all
    ///   the way to (almost) zero reuse, while random access still finds the
    ///   resident fraction.
    pub fn hit_rate(&self, working_set: ByteSize, irregularity: f64) -> f64 {
        let ws = working_set.bytes() as f64;
        let cap = self.capacity.bytes() as f64;
        if ws <= 0.0 {
            return 1.0;
        }
        let irregularity = irregularity.clamp(0.0, 1.0);
        if ws <= cap {
            let occupancy = ws / cap;
            // Conflict misses grow with occupancy and with irregularity
            // (random accesses touch more distinct sets per unit time).
            let conflicts = self.conflict_factor * occupancy * (0.5 + 0.5 * irregularity);
            (1.0 - conflicts).clamp(0.0, 1.0)
        } else {
            let resident = cap / ws;
            // Streaming over an over-sized set evicts lines before reuse
            // (classic LRU/DM capacity thrash); random access at least hits
            // the resident fraction.
            let streaming_hit = resident * 0.25;
            let random_hit = resident * (1.0 - self.conflict_factor);
            ((1.0 - irregularity) * streaming_hit + irregularity * random_hit).clamp(0.0, 1.0)
        }
    }

    /// Build a trace-driven direct-mapped simulator of this cache. Only
    /// sensible for scaled-down capacities (tests/ablations): the number of
    /// lines is `capacity / line_size`.
    pub fn simulator(&self) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(self.capacity, self.line_size, 1))
    }

    /// Run an address trace through the trace-driven simulator and return its
    /// statistics.
    pub fn simulate_trace<'a>(&self, addrs: impl IntoIterator<Item = &'a Address>) -> CacheStats {
        let mut sim = self.simulator();
        for a in addrs {
            sim.access(*a, false);
        }
        sim.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_working_set_hits() {
        let m = McdramCacheModel::knl();
        let hr = m.hit_rate(ByteSize::from_gib(4), 0.0);
        assert!(hr > 0.97, "hit rate {hr}");
    }

    #[test]
    fn oversized_working_set_degrades() {
        let m = McdramCacheModel::knl();
        let fits = m.hit_rate(ByteSize::from_gib(12), 0.2);
        let double = m.hit_rate(ByteSize::from_gib(32), 0.2);
        let huge = m.hit_rate(ByteSize::from_gib(96), 0.2);
        assert!(fits > double && double > huge);
        assert!(huge < 0.35);
    }

    #[test]
    fn irregularity_hurts_when_fitting_and_helps_reuse_when_thrashing() {
        let m = McdramCacheModel::knl();
        // Fitting: more irregularity -> slightly more conflicts.
        assert!(m.hit_rate(ByteSize::from_gib(14), 0.0) > m.hit_rate(ByteSize::from_gib(14), 1.0));
        // Thrashing: streaming gets no reuse, random finds the resident part.
        assert!(m.hit_rate(ByteSize::from_gib(64), 1.0) > m.hit_rate(ByteSize::from_gib(64), 0.0));
    }

    #[test]
    fn hit_rates_are_probabilities() {
        let m = McdramCacheModel::knl();
        for gib in [0u64, 1, 8, 16, 24, 48, 96, 192] {
            for irr in [0.0, 0.3, 0.7, 1.0] {
                let hr = m.hit_rate(ByteSize::from_gib(gib), irr);
                assert!((0.0..=1.0).contains(&hr), "hr {hr} for {gib} GiB irr {irr}");
            }
        }
    }

    #[test]
    fn trace_driven_simulator_agrees_qualitatively() {
        // Scaled-down cache: 64 KiB direct mapped.
        let m = McdramCacheModel::new(ByteSize::from_kib(64), 64).with_conflict_factor(0.0);
        // Working set 32 KiB accessed twice: second pass hits.
        let addrs: Vec<Address> = (0..512u64).map(|i| Address(i * 64)).collect();
        let double: Vec<Address> = addrs.iter().chain(addrs.iter()).copied().collect();
        let stats = m.simulate_trace(double.iter());
        assert_eq!(stats.misses, 512);
        assert_eq!(stats.hits, 512);

        // Working set 128 KiB (2x capacity) accessed twice sequentially:
        // nothing survives until reuse.
        let big: Vec<Address> = (0..2048u64).map(|i| Address(i * 64)).collect();
        let double_big: Vec<Address> = big.iter().chain(big.iter()).copied().collect();
        let stats_big = m.simulate_trace(double_big.iter());
        assert!(stats_big.miss_ratio() > 0.99);
    }
}
