//! Model of MCDRAM operating as a direct-mapped memory-side cache.
//!
//! In cache mode the 16 GiB of MCDRAM front all DDR accesses. The paper notes
//! that cache mode "is not as efficient as consciously exploiting it in flat
//! mode, especially for those workloads where the lack of associativity is a
//! problem" — this module provides both an analytical hit-rate estimate used
//! by the phase-cost engine and a trace-driven direct-mapped simulator used
//! by tests and ablation studies.

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use hmsim_common::{Address, ByteSize};

/// Analytical + trace-driven model of the memory-side cache.
#[derive(Clone, Debug)]
pub struct McdramCacheModel {
    capacity: ByteSize,
    line_size: u64,
    /// Baseline probability that two hot lines conflict even when the working
    /// set fits (direct-mapped pathologies, page colouring effects).
    conflict_factor: f64,
}

impl McdramCacheModel {
    /// Create a model of a direct-mapped memory-side cache of `capacity`.
    pub fn new(capacity: ByteSize, line_size: u64) -> Self {
        McdramCacheModel {
            capacity,
            line_size,
            conflict_factor: 0.06,
        }
    }

    /// The KNL 16 GiB MCDRAM cache.
    pub fn knl() -> Self {
        Self::new(ByteSize::from_gib(16), 64)
    }

    /// Override the conflict factor (tests, sensitivity studies).
    pub fn with_conflict_factor(mut self, f: f64) -> Self {
        self.conflict_factor = f.clamp(0.0, 1.0);
        self
    }

    /// Cache capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Analytical estimate of the hit rate for an application whose *hot*
    /// working set is `working_set` bytes and whose accesses have
    /// `irregularity` in `[0, 1]` (0 = perfectly streaming, 1 = uniformly
    /// random over the working set).
    ///
    /// * If the working set fits, hits dominate but direct-mapped conflicts
    ///   remove a slice proportional to occupancy and irregularity.
    /// * If it does not fit, the resident fraction bounds the hit rate; a
    ///   streaming access pattern over an over-sized working set degrades
    ///   towards (almost) zero reuse, while random access still finds the
    ///   resident fraction. Just past capacity only the small overflow slice
    ///   thrashes, so the estimate decays *continuously* from the
    ///   at-capacity value instead of cliff-dropping the moment
    ///   `working_set == capacity + 1` (the old behaviour: ~0.95 just under,
    ///   0.25 just over for streaming workloads).
    pub fn hit_rate(&self, working_set: ByteSize, irregularity: f64) -> f64 {
        let ws = working_set.bytes() as f64;
        let cap = self.capacity.bytes() as f64;
        if ws <= 0.0 {
            return 1.0;
        }
        let irregularity = irregularity.clamp(0.0, 1.0);
        if ws <= cap {
            let occupancy = ws / cap;
            // Conflict misses grow with occupancy and with irregularity
            // (random accesses touch more distinct sets per unit time).
            let conflicts = self.conflict_factor * occupancy * (0.5 + 0.5 * irregularity);
            (1.0 - conflicts).clamp(0.0, 1.0)
        } else {
            let resident = cap / ws;
            // Asymptotic regime (ws >> cap): streaming over an over-sized set
            // evicts lines before reuse (classic LRU/DM capacity thrash);
            // random access at least hits the resident fraction.
            let streaming_hit = resident * 0.25;
            let random_hit = resident * (1.0 - self.conflict_factor);
            let thrash = (1.0 - irregularity) * streaming_hit + irregularity * random_hit;
            // Value both regimes agree on at the capacity boundary (the
            // fitting branch evaluated at occupancy 1).
            let at_capacity = 1.0 - self.conflict_factor * (0.5 + 0.5 * irregularity);
            let thrash_at_capacity =
                (1.0 - irregularity) * 0.25 + irregularity * (1.0 - self.conflict_factor);
            // Blend: when barely over capacity (resident → 1) most lines
            // still survive until reuse, so the rate starts at the
            // at-capacity value and decays to the thrash asymptote as the
            // overflow grows. The quadratic ramp reaches the asymptote by
            // resident = 0.8 (working set 1.25x capacity), keeping the blend
            // local to the boundary — beyond that the pure thrash model
            // applies — while staying monotone in the working-set size.
            const RAMP_START: f64 = 0.8;
            let ramp = ((resident - RAMP_START) / (1.0 - RAMP_START)).max(0.0);
            let boundary_weight = ramp * ramp;
            let excess = (at_capacity - thrash_at_capacity).max(0.0);
            (thrash + excess * boundary_weight).clamp(0.0, 1.0)
        }
    }

    /// Build a trace-driven direct-mapped simulator of this cache. Only
    /// sensible for scaled-down capacities (tests/ablations): the number of
    /// lines is `capacity / line_size`.
    pub fn simulator(&self) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(self.capacity, self.line_size, 1))
    }

    /// Run an address trace through the trace-driven simulator and return its
    /// statistics.
    pub fn simulate_trace<'a>(&self, addrs: impl IntoIterator<Item = &'a Address>) -> CacheStats {
        let mut sim = self.simulator();
        for a in addrs {
            sim.access(*a, false);
        }
        sim.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_working_set_hits() {
        let m = McdramCacheModel::knl();
        let hr = m.hit_rate(ByteSize::from_gib(4), 0.0);
        assert!(hr > 0.97, "hit rate {hr}");
    }

    #[test]
    fn oversized_working_set_degrades() {
        let m = McdramCacheModel::knl();
        let fits = m.hit_rate(ByteSize::from_gib(12), 0.2);
        let double = m.hit_rate(ByteSize::from_gib(32), 0.2);
        let huge = m.hit_rate(ByteSize::from_gib(96), 0.2);
        assert!(fits > double && double > huge);
        assert!(huge < 0.35);
    }

    #[test]
    fn irregularity_hurts_when_fitting_and_helps_reuse_when_thrashing() {
        let m = McdramCacheModel::knl();
        // Fitting: more irregularity -> slightly more conflicts.
        assert!(m.hit_rate(ByteSize::from_gib(14), 0.0) > m.hit_rate(ByteSize::from_gib(14), 1.0));
        // Thrashing: streaming gets no reuse, random finds the resident part.
        assert!(m.hit_rate(ByteSize::from_gib(64), 1.0) > m.hit_rate(ByteSize::from_gib(64), 0.0));
    }

    #[test]
    fn hit_rates_are_probabilities() {
        let m = McdramCacheModel::knl();
        for gib in [0u64, 1, 8, 16, 24, 48, 96, 192] {
            for irr in [0.0, 0.3, 0.7, 1.0] {
                let hr = m.hit_rate(ByteSize::from_gib(gib), irr);
                assert!((0.0..=1.0).contains(&hr), "hr {hr} for {gib} GiB irr {irr}");
            }
        }
    }

    /// Regression for the capacity-boundary cliff: sweeping the working set
    /// through `capacity` must decrease the hit rate monotonically and
    /// without a jump (the old model fell from ~0.95 to 0.25 between
    /// 16 GiB and 16 GiB + 1 byte for streaming workloads).
    #[test]
    fn hit_rate_is_continuous_and_monotone_through_capacity() {
        let m = McdramCacheModel::knl();
        let cap = m.capacity().bytes();
        for irr in [0.0, 0.25, 0.5, 0.75, 1.0] {
            // No discontinuity at the boundary itself.
            let just_under = m.hit_rate(ByteSize::from_bytes(cap - 1), irr);
            let at = m.hit_rate(ByteSize::from_bytes(cap), irr);
            let just_over = m.hit_rate(ByteSize::from_bytes(cap + 1), irr);
            assert!(
                (just_under - at).abs() < 1e-6 && (at - just_over).abs() < 1e-6,
                "cliff at capacity for irr {irr}: {just_under} / {at} / {just_over}"
            );
            // Fine sweep from half to 8x capacity: non-increasing throughout.
            let mut prev = f64::INFINITY;
            for step in 0..=256u64 {
                let ws = cap / 2 + (cap * 15 / 2) * step / 256;
                let hr = m.hit_rate(ByteSize::from_bytes(ws), irr);
                assert!(
                    hr <= prev + 1e-12,
                    "hit rate rose from {prev} to {hr} at ws {ws} irr {irr}"
                );
                prev = hr;
            }
        }
    }

    #[test]
    fn trace_driven_simulator_agrees_qualitatively() {
        // Scaled-down cache: 64 KiB direct mapped.
        let m = McdramCacheModel::new(ByteSize::from_kib(64), 64).with_conflict_factor(0.0);
        // Working set 32 KiB accessed twice: second pass hits.
        let addrs: Vec<Address> = (0..512u64).map(|i| Address(i * 64)).collect();
        let double: Vec<Address> = addrs.iter().chain(addrs.iter()).copied().collect();
        let stats = m.simulate_trace(double.iter());
        assert_eq!(stats.misses, 512);
        assert_eq!(stats.hits, 512);

        // Working set 128 KiB (2x capacity) accessed twice sequentially:
        // nothing survives until reuse.
        let big: Vec<Address> = (0..2048u64).map(|i| Address(i * 64)).collect();
        let double_big: Vec<Address> = big.iter().chain(big.iter()).copied().collect();
        let stats_big = m.simulate_trace(double_big.iter());
        assert!(stats_big.miss_ratio() > 0.99);
    }
}
