//! Analytical phase-cost engine.
//!
//! The full evaluation grid of the paper (8 applications × 4 MCDRAM budgets ×
//! 4 selection strategies × 4 baselines, each with 64 ranks) is far too large
//! for access-level simulation. Following the paper's own cost reasoning —
//! "we approximate the access cost by the number of LLC misses" — each
//! application phase is summarised by the LLC-miss traffic every data object
//! generates, and this engine converts that summary plus a *placement*
//! (object → tier) into an execution-time estimate with a roofline-style
//! model:
//!
//! * a compute roof (`instructions / aggregate instruction rate`),
//! * a bandwidth roof per memory tier (traffic ÷ effective bandwidth at the
//!   phase's core count, tiers overlapping with each other),
//! * a latency roof for irregular (gather-dominated) traffic that cannot be
//!   covered by prefetching and therefore exposes the tier latency divided by
//!   the achievable memory-level parallelism.
//!
//! The phase time is the maximum of the three roofs; LLC-miss counts are
//! placement-independent (the LLC sits above both memories), exactly as in
//! the paper's attribution model.

use crate::bandwidth::BandwidthModel;
use crate::config::{MachineConfig, MemoryMode};
use crate::counters::PerfCounters;
use crate::mcdram_cache::McdramCacheModel;
use hmsim_common::{ByteSize, Nanos, ObjectId, TierId};
use std::collections::HashMap;

/// Per-object memory behaviour of one phase execution.
#[derive(Clone, Debug)]
pub struct ObjectTraffic {
    /// The object generating the traffic.
    pub object: ObjectId,
    /// LLC misses this object generates during one execution of the phase.
    pub llc_misses: u64,
    /// Fraction of this object's traffic that is irregular (latency-bound
    /// gathers) rather than streaming; in `[0, 1]`.
    pub irregular_fraction: f64,
}

impl ObjectTraffic {
    /// Convenience constructor.
    pub fn new(object: ObjectId, llc_misses: u64, irregular_fraction: f64) -> Self {
        ObjectTraffic {
            object,
            llc_misses,
            irregular_fraction: irregular_fraction.clamp(0.0, 1.0),
        }
    }

    /// Bytes of memory traffic implied by the misses at the given line size.
    pub fn traffic_bytes(&self, line_size: u64) -> f64 {
        self.llc_misses as f64 * line_size as f64
    }
}

/// Summary of one application phase (one kernel, one time step, …).
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// Human-readable phase name (e.g. `"outer_src_calc"`).
    pub name: String,
    /// Instructions retired by one execution of the phase (across all the
    /// threads of one process).
    pub instructions: u64,
    /// Cores actively used by the phase (per process).
    pub cores_used: u32,
    /// Per-object traffic.
    pub traffic: Vec<ObjectTraffic>,
}

impl PhaseProfile {
    /// Total LLC misses of the phase.
    pub fn total_misses(&self) -> u64 {
        self.traffic.iter().map(|t| t.llc_misses).sum()
    }
}

/// Result of costing one phase under a placement.
#[derive(Clone, Debug)]
pub struct PhaseCost {
    /// Wall-clock time of one phase execution.
    pub time: Nanos,
    /// The compute roof component.
    pub compute_time: Nanos,
    /// The bandwidth roof component.
    pub bandwidth_time: Nanos,
    /// The latency roof component.
    pub latency_time: Nanos,
    /// Performance counters implied by the phase.
    pub counters: PerfCounters,
    /// Per-object LLC misses (placement independent, repeated here so callers
    /// can attribute samples without holding on to the profile).
    pub object_misses: Vec<(ObjectId, u64)>,
}

/// A placement assigns each object to a memory tier. Objects missing from the
/// map live in the default tier.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    map: HashMap<ObjectId, TierId>,
    default_tier: TierId,
}

impl Placement {
    /// All objects in `default_tier` (normally DDR).
    pub fn all_in(default_tier: TierId) -> Self {
        Placement {
            map: HashMap::new(),
            default_tier,
        }
    }

    /// Assign one object to a tier.
    pub fn place(&mut self, object: ObjectId, tier: TierId) {
        self.map.insert(object, tier);
    }

    /// Where an object lives.
    pub fn tier_of(&self, object: ObjectId) -> TierId {
        self.map.get(&object).copied().unwrap_or(self.default_tier)
    }

    /// Number of explicitly placed objects.
    pub fn placed_count(&self) -> usize {
        self.map.len()
    }

    /// Objects explicitly placed in `tier`.
    pub fn objects_in(&self, tier: TierId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .map
            .iter()
            .filter(|(_, t)| **t == tier)
            .map(|(o, _)| *o)
            .collect();
        v.sort();
        v
    }
}

/// The analytical engine bound to one machine configuration.
#[derive(Clone, Debug)]
pub struct AnalyticEngine {
    config: MachineConfig,
    bandwidth: BandwidthModel,
    mcdram_cache: McdramCacheModel,
}

impl AnalyticEngine {
    /// Create an engine for a machine.
    pub fn new(config: &MachineConfig) -> Self {
        let capacity = config
            .tiers
            .get(TierId::MCDRAM)
            .map(|t| t.capacity)
            .unwrap_or(ByteSize::ZERO);
        AnalyticEngine {
            config: config.clone(),
            bandwidth: BandwidthModel::new(config),
            mcdram_cache: McdramCacheModel::new(
                if capacity.is_zero() {
                    ByteSize::from_gib(16)
                } else {
                    capacity
                },
                config.line_size,
            ),
        }
    }

    /// The underlying machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Cost one phase under `placement` in flat (or hybrid) mode.
    ///
    /// `working_set` is the total live data of the process; it is only used
    /// when the machine is in cache mode, where it determines the memory-side
    /// cache hit rate.
    pub fn cost_phase(
        &self,
        phase: &PhaseProfile,
        placement: &Placement,
        working_set: ByteSize,
    ) -> PhaseCost {
        match self.config.memory_mode {
            MemoryMode::Flat | MemoryMode::Hybrid { .. } => self.cost_flat(phase, placement),
            MemoryMode::Cache => self.cost_cache_mode(phase, working_set),
        }
    }

    fn compute_roof(&self, phase: &PhaseProfile) -> Nanos {
        let rate = self.config.instruction_rate(phase.cores_used.max(1));
        Nanos(phase.instructions as f64 / rate * 1e9)
    }

    fn cost_flat(&self, phase: &PhaseProfile, placement: &Placement) -> PhaseCost {
        let line = self.config.line_size;
        let cores = phase.cores_used.max(1);

        // Aggregate traffic and latency-bound misses per tier.
        let mut tier_traffic: HashMap<TierId, f64> = HashMap::new();
        let mut tier_irregular_misses: HashMap<TierId, f64> = HashMap::new();
        for t in &phase.traffic {
            let tier = placement.tier_of(t.object);
            *tier_traffic.entry(tier).or_insert(0.0) += t.traffic_bytes(line);
            *tier_irregular_misses.entry(tier).or_insert(0.0) +=
                t.llc_misses as f64 * t.irregular_fraction;
        }

        // Bandwidth roof: tiers stream in parallel, so the roof is the
        // slowest tier's drain time.
        let mut bandwidth_time = Nanos::ZERO;
        for (tier_id, bytes) in &tier_traffic {
            let tier = self
                .config
                .tiers
                .get(*tier_id)
                .unwrap_or_else(|| self.config.tiers.slowest().expect("tiers non-empty"));
            let bw = self.bandwidth.effective_bandwidth_gbs(tier, cores);
            bandwidth_time = bandwidth_time.max(BandwidthModel::transfer_time(*bytes, bw));
        }

        // Latency roof: irregular misses expose latency / MLP per core.
        let mut latency_time = Nanos::ZERO;
        for (tier_id, misses) in &tier_irregular_misses {
            let tier = self
                .config
                .tiers
                .get(*tier_id)
                .unwrap_or_else(|| self.config.tiers.slowest().expect("tiers non-empty"));
            let lat = self.bandwidth.latency(tier);
            let per_core_parallel = f64::from(cores) * self.config.mlp;
            latency_time = latency_time.max(Nanos(misses * lat.nanos() / per_core_parallel));
        }

        let compute_time = self.compute_roof(phase);
        self.finish(phase, compute_time, bandwidth_time, latency_time)
    }

    fn cost_cache_mode(&self, phase: &PhaseProfile, working_set: ByteSize) -> PhaseCost {
        let line = self.config.line_size;
        let cores = phase.cores_used.max(1);

        let total_misses: f64 = phase.traffic.iter().map(|t| t.llc_misses as f64).sum();
        let irregular_misses: f64 = phase
            .traffic
            .iter()
            .map(|t| t.llc_misses as f64 * t.irregular_fraction)
            .sum();
        let irregularity = if total_misses > 0.0 {
            irregular_misses / total_misses
        } else {
            0.0
        };

        let hit_rate = self.mcdram_cache.hit_rate(working_set, irregularity);
        let total_bytes = total_misses * line as f64;
        let bw = self.bandwidth.cache_mode_bandwidth_gbs(cores, hit_rate);
        let bandwidth_time = BandwidthModel::transfer_time(total_bytes, bw);

        let lat = self.bandwidth.cache_mode_latency(hit_rate);
        let per_core_parallel = f64::from(cores) * self.config.mlp;
        let latency_time = Nanos(irregular_misses * lat.nanos() / per_core_parallel);

        let compute_time = self.compute_roof(phase);
        self.finish(phase, compute_time, bandwidth_time, latency_time)
    }

    fn finish(
        &self,
        phase: &PhaseProfile,
        compute_time: Nanos,
        bandwidth_time: Nanos,
        latency_time: Nanos,
    ) -> PhaseCost {
        let time = compute_time.max(bandwidth_time).max(latency_time);
        let cycles = (time.secs() * self.config.frequency_hz) as u64;
        let memory_time = bandwidth_time.max(latency_time);
        let stall_cycles = ((memory_time.nanos() - compute_time.nanos()).max(0.0) / 1e9
            * self.config.frequency_hz) as u64;
        let total_misses = phase.total_misses();
        let counters = PerfCounters {
            instructions: phase.instructions,
            l1_references: phase.instructions / 3,
            l1_misses: total_misses * 4,
            llc_references: total_misses * 3,
            llc_misses: total_misses,
            stall_cycles,
            cycles: cycles.max(1),
        };
        PhaseCost {
            time,
            compute_time,
            bandwidth_time,
            latency_time,
            counters,
            object_misses: phase
                .traffic
                .iter()
                .map(|t| (t.object, t.llc_misses))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(misses_a: u64, misses_b: u64, irregular: f64) -> PhaseProfile {
        // Node-scale phase: the experiment driver always costs whole-node
        // phases (68 cores), where the bandwidth differences between tiers
        // are visible.
        PhaseProfile {
            name: "k".to_string(),
            instructions: 50_000_000,
            cores_used: 68,
            traffic: vec![
                ObjectTraffic::new(ObjectId(0), misses_a, irregular),
                ObjectTraffic::new(ObjectId(1), misses_b, irregular),
            ],
        }
    }

    fn engine() -> AnalyticEngine {
        AnalyticEngine::new(&MachineConfig::knl_7250())
    }

    #[test]
    fn placing_hot_object_in_mcdram_speeds_up_bandwidth_bound_phase() {
        let e = engine();
        let p = phase(80_000_000, 1_000_000, 0.0);
        let ddr_only = Placement::all_in(TierId::DDR);
        let mut hot_in_fast = Placement::all_in(TierId::DDR);
        hot_in_fast.place(ObjectId(0), TierId::MCDRAM);

        let slow = e.cost_phase(&p, &ddr_only, ByteSize::from_gib(8));
        let fast = e.cost_phase(&p, &hot_in_fast, ByteSize::from_gib(8));
        assert!(
            fast.time < slow.time,
            "expected speedup, got {:?} vs {:?}",
            fast.time,
            slow.time
        );
        // Placing the *cold* object instead should barely help.
        let mut cold_in_fast = Placement::all_in(TierId::DDR);
        cold_in_fast.place(ObjectId(1), TierId::MCDRAM);
        let still_slow = e.cost_phase(&p, &cold_in_fast, ByteSize::from_gib(8));
        assert!(still_slow.time > fast.time);
    }

    #[test]
    fn compute_bound_phase_is_placement_insensitive() {
        let e = engine();
        let p = PhaseProfile {
            name: "flops".to_string(),
            instructions: 10_000_000_000,
            cores_used: 68,
            traffic: vec![ObjectTraffic::new(ObjectId(0), 1000, 0.0)],
        };
        let ddr = e.cost_phase(&p, &Placement::all_in(TierId::DDR), ByteSize::from_gib(1));
        let mut mc = Placement::all_in(TierId::DDR);
        mc.place(ObjectId(0), TierId::MCDRAM);
        let fast = e.cost_phase(&p, &mc, ByteSize::from_gib(1));
        assert!((ddr.time.nanos() - fast.time.nanos()).abs() / ddr.time.nanos() < 1e-6);
        assert_eq!(ddr.time, ddr.compute_time);
    }

    #[test]
    fn misses_are_placement_independent() {
        let e = engine();
        let p = phase(5_000_000, 3_000_000, 0.2);
        let a = e.cost_phase(&p, &Placement::all_in(TierId::DDR), ByteSize::from_gib(8));
        let mut pl = Placement::all_in(TierId::DDR);
        pl.place(ObjectId(0), TierId::MCDRAM);
        let b = e.cost_phase(&p, &pl, ByteSize::from_gib(8));
        assert_eq!(a.counters.llc_misses, b.counters.llc_misses);
        assert_eq!(a.object_misses, b.object_misses);
    }

    #[test]
    fn cache_mode_sits_between_ddr_and_flat_mcdram_for_fitting_sets() {
        let flat = engine();
        let cache =
            AnalyticEngine::new(&MachineConfig::knl_7250().with_memory_mode(MemoryMode::Cache));
        let p = phase(60_000_000, 40_000_000, 0.1);
        let ws = ByteSize::from_gib(6);

        let ddr = flat.cost_phase(&p, &Placement::all_in(TierId::DDR), ws);
        let mcdram = flat.cost_phase(&p, &Placement::all_in(TierId::MCDRAM), ws);
        let cached = cache.cost_phase(&p, &Placement::all_in(TierId::DDR), ws);

        assert!(
            mcdram.time < cached.time,
            "flat MCDRAM should beat cache mode"
        );
        assert!(cached.time < ddr.time, "cache mode should beat DDR");
    }

    #[test]
    fn cache_mode_degrades_for_oversized_working_sets() {
        let cache =
            AnalyticEngine::new(&MachineConfig::knl_7250().with_memory_mode(MemoryMode::Cache));
        let p = phase(60_000_000, 40_000_000, 0.3);
        let small = cache.cost_phase(&p, &Placement::all_in(TierId::DDR), ByteSize::from_gib(8));
        let big = cache.cost_phase(&p, &Placement::all_in(TierId::DDR), ByteSize::from_gib(64));
        assert!(big.time > small.time);
    }

    #[test]
    fn latency_bound_irregular_phase_sees_less_benefit_than_streaming() {
        let e = engine();
        let streaming = phase(40_000_000, 0, 0.0);
        let irregular = phase(40_000_000, 0, 1.0);
        let ddr = Placement::all_in(TierId::DDR);
        let mut mc = Placement::all_in(TierId::DDR);
        mc.place(ObjectId(0), TierId::MCDRAM);

        let s_gain = e
            .cost_phase(&streaming, &ddr, ByteSize::from_gib(4))
            .time
            .nanos()
            / e.cost_phase(&streaming, &mc, ByteSize::from_gib(4))
                .time
                .nanos();
        let i_gain = e
            .cost_phase(&irregular, &ddr, ByteSize::from_gib(4))
            .time
            .nanos()
            / e.cost_phase(&irregular, &mc, ByteSize::from_gib(4))
                .time
                .nanos();
        assert!(
            s_gain > i_gain,
            "streaming gain {s_gain} should exceed irregular gain {i_gain}"
        );
    }

    #[test]
    fn placement_helpers() {
        let mut p = Placement::all_in(TierId::DDR);
        p.place(ObjectId(3), TierId::MCDRAM);
        p.place(ObjectId(5), TierId::MCDRAM);
        p.place(ObjectId(7), TierId::DDR);
        assert_eq!(p.tier_of(ObjectId(3)), TierId::MCDRAM);
        assert_eq!(p.tier_of(ObjectId(99)), TierId::DDR);
        assert_eq!(p.objects_in(TierId::MCDRAM), vec![ObjectId(3), ObjectId(5)]);
        assert_eq!(p.placed_count(), 3);
    }
}
