//! # hmsim-machine
//!
//! A hybrid-memory machine model patterned after the Intel Xeon Phi 7250
//! ("Knights Landing", KNL) node used in the paper's evaluation: 68 cores at
//! 1.4 GHz, 96 GiB of DDR4 at ~90 GB/s and 16 GiB of on-package MCDRAM at
//! ~450 GB/s, with the MCDRAM configurable in *flat* mode (separate part of
//! the physical address space) or *cache* mode (a direct-mapped memory-side
//! cache in front of DDR).
//!
//! The crate provides two complementary execution engines:
//!
//! * a **trace-driven engine** ([`engine::TraceEngine`]) that pushes every
//!   simulated memory access through a set-associative L1/L2 hierarchy and a
//!   page table mapping pages to tiers — faithful but only practical for
//!   micro-kernels (STREAM, unit tests, ablations);
//! * an **analytical engine** ([`analytic`]) that computes phase execution
//!   times from per-object traffic/miss profiles with a roofline-style
//!   bandwidth/latency model — this is what makes the full Figure-4 grid
//!   (8 apps × 4 budgets × 4 strategies × 4 baselines × 64 ranks) run in
//!   seconds.
//!
//! Both engines agree on the same [`config::MachineConfig`] and the same
//! [`page_table::PageTable`] notion of data placement, so the rest of the
//! framework does not care which one produced a number.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod analytic;
pub mod bandwidth;
pub mod cache;
pub mod config;
pub mod counters;
pub mod engine;
pub mod mcdram_cache;
pub mod page_table;
pub mod tier;

pub use access::{AccessKind, AccessPattern, AccessStream, MemoryAccess};
pub use analytic::{AnalyticEngine, ObjectTraffic, PhaseCost, PhaseProfile, Placement};
pub use bandwidth::BandwidthModel;
pub use cache::{CacheConfig, CacheStats, SetAssocCache};
pub use config::{ClusterMode, MachineConfig, MemoryMode};
pub use counters::PerfCounters;
pub use engine::{EngineStats, ServiceLevel, TierTraffic, TraceEngine};
pub use mcdram_cache::McdramCacheModel;
pub use page_table::PageTable;
pub use tier::{TierSet, TierSpec, MAX_TIERS};
