//! Bandwidth and latency model.
//!
//! The model behind the paper's Figure 1: aggregate achievable bandwidth of a
//! memory tier grows roughly linearly with the number of cores issuing
//! requests until it saturates at the tier's peak. MCDRAM in cache mode pays
//! an efficiency factor (tag checks and miss amplification) and a latency
//! penalty on misses to DDR.

use crate::config::{MachineConfig, MemoryMode};
use crate::tier::TierSpec;
use hmsim_common::{Nanos, TierId};

/// Bandwidth/latency calculator bound to one machine configuration.
#[derive(Clone, Debug)]
pub struct BandwidthModel {
    config: MachineConfig,
}

impl BandwidthModel {
    /// Create a model for a machine.
    pub fn new(config: &MachineConfig) -> Self {
        BandwidthModel {
            config: config.clone(),
        }
    }

    /// Effective aggregate bandwidth (GB/s) of `tier` when `cores` cores are
    /// actively streaming to it in flat mode.
    ///
    /// The curve is `min(cores * per_core, peak)` softened near the knee with
    /// a harmonic blend so that the transition is smooth rather than a sharp
    /// corner — matching measured STREAM scaling curves.
    pub fn effective_bandwidth_gbs(&self, tier: &TierSpec, cores: u32) -> f64 {
        let cores = cores.clamp(1, self.config.cores) as f64;
        let linear = cores * tier.per_core_bandwidth_gbs;
        let peak = tier.peak_bandwidth_gbs;
        // Smooth-min: 1 / (1/linear + 1/peak) * correction so that the curve
        // approaches peak asymptotically but reaches ~95% of it when the
        // linear term is ~3x the peak.
        let harmonic = 1.0 / (1.0 / linear + 1.0 / peak);
        // Blend: for small core counts the harmonic underestimates (there is
        // no contention yet), so mix with the hard min.
        let hard = linear.min(peak);
        0.35 * harmonic + 0.65 * hard
    }

    /// Effective bandwidth of the MCDRAM when it operates as a memory-side
    /// cache and the working set *hits* in it.
    pub fn cache_mode_hit_bandwidth_gbs(&self, cores: u32) -> f64 {
        let mcdram = self
            .config
            .tiers
            .get(TierId::MCDRAM)
            .expect("cache mode requires an MCDRAM tier");
        self.effective_bandwidth_gbs(mcdram, cores) * self.config.cache_mode_bw_efficiency
    }

    /// Effective bandwidth observed by a kernel whose traffic hits in the
    /// MCDRAM cache with probability `hit_rate` and falls through to DDR
    /// otherwise. Misses consume MCDRAM *and* DDR bandwidth (the line is
    /// installed in the cache), so DDR is the bottleneck once the hit rate
    /// drops.
    pub fn cache_mode_bandwidth_gbs(&self, cores: u32, hit_rate: f64) -> f64 {
        let hit_rate = hit_rate.clamp(0.0, 1.0);
        let hit_bw = self.cache_mode_hit_bandwidth_gbs(cores);
        let ddr = self
            .config
            .tiers
            .get(TierId::DDR)
            .expect("cache mode requires a DDR tier");
        let ddr_bw = self.effective_bandwidth_gbs(ddr, cores);
        if hit_rate >= 1.0 {
            return hit_bw;
        }
        // Each byte of application traffic costs 1/hit_bw on the MCDRAM port
        // plus (1-hit_rate)/ddr_bw on the DDR port; ports operate in
        // parallel, so the cost per byte is the max of the two port demands.
        let mcdram_cost = 1.0 / hit_bw;
        let ddr_cost = (1.0 - hit_rate) / ddr_bw;
        1.0 / mcdram_cost.max(ddr_cost)
    }

    /// Average load-to-use latency of `tier`, including the clustering-mode
    /// factor.
    pub fn latency(&self, tier: &TierSpec) -> Nanos {
        tier.latency * self.config.cluster_mode.latency_factor()
    }

    /// Average latency of an access under cache mode with the given hit rate.
    pub fn cache_mode_latency(&self, hit_rate: f64) -> Nanos {
        let hit_rate = hit_rate.clamp(0.0, 1.0);
        let mcdram = self
            .config
            .tiers
            .get(TierId::MCDRAM)
            .expect("cache mode requires an MCDRAM tier");
        let hit = self.latency(mcdram);
        let miss = self.latency(mcdram) + self.config.cache_mode_miss_penalty;
        hit * hit_rate + miss * (1.0 - hit_rate)
    }

    /// Time to move `bytes` bytes at `bandwidth_gbs` GB/s.
    pub fn transfer_time(bytes: f64, bandwidth_gbs: f64) -> Nanos {
        if bytes <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos(bytes / (bandwidth_gbs * 1e9) * 1e9)
    }

    /// STREAM-Triad-style achievable bandwidth for the whole machine under a
    /// given memory mode and data placement:
    ///
    /// * `MemoryMode::Flat` with data in DDR or MCDRAM — the respective
    ///   tier's scaling curve;
    /// * `MemoryMode::Cache` — the cache-mode curve with the supplied hit
    ///   rate (for STREAM with a working set ≪ 16 GiB the hit rate is ~1 but
    ///   direct-mapped conflicts keep it below that).
    pub fn stream_bandwidth_gbs(&self, cores: u32, data_tier: TierId, hit_rate: f64) -> f64 {
        match self.config.memory_mode {
            MemoryMode::Flat | MemoryMode::Hybrid { .. } => {
                let tier = self
                    .config
                    .tiers
                    .get(data_tier)
                    .expect("unknown tier in stream_bandwidth_gbs");
                self.effective_bandwidth_gbs(tier, cores)
            }
            MemoryMode::Cache => self.cache_mode_bandwidth_gbs(cores, hit_rate),
        }
    }

    /// Access to the underlying machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn model() -> BandwidthModel {
        BandwidthModel::new(&MachineConfig::knl_7250())
    }

    #[test]
    fn bandwidth_grows_with_cores_and_saturates() {
        let m = model();
        let ddr = TierSpec::knl_ddr();
        let one = m.effective_bandwidth_gbs(&ddr, 1);
        let eight = m.effective_bandwidth_gbs(&ddr, 8);
        let sixty_eight = m.effective_bandwidth_gbs(&ddr, 68);
        assert!(one < eight);
        assert!(eight < sixty_eight * 1.01);
        // Saturation: DDR at 68 cores must be close to (and below) peak.
        assert!(sixty_eight <= ddr.peak_bandwidth_gbs);
        assert!(sixty_eight > ddr.peak_bandwidth_gbs * 0.80);
    }

    #[test]
    fn mcdram_flat_beats_ddr_at_scale_but_not_at_one_core() {
        let m = model();
        let ddr = TierSpec::knl_ddr();
        let mc = TierSpec::knl_mcdram();
        let ddr_68 = m.effective_bandwidth_gbs(&ddr, 68);
        let mc_68 = m.effective_bandwidth_gbs(&mc, 68);
        assert!(mc_68 > 3.5 * ddr_68, "MCDRAM {mc_68} vs DDR {ddr_68}");
        // With a single core the two memories look similar (Figure 1).
        let ddr_1 = m.effective_bandwidth_gbs(&ddr, 1);
        let mc_1 = m.effective_bandwidth_gbs(&mc, 1);
        assert!((ddr_1 - mc_1).abs() / ddr_1 < 0.2);
    }

    #[test]
    fn cache_mode_is_slower_than_flat_mcdram() {
        let m = model();
        let mc = TierSpec::knl_mcdram();
        let flat = m.effective_bandwidth_gbs(&mc, 68);
        let cache = m.cache_mode_bandwidth_gbs(68, 0.97);
        assert!(cache < flat);
        assert!(cache > flat * 0.5);
    }

    #[test]
    fn cache_mode_degrades_with_hit_rate() {
        let m = model();
        let high = m.cache_mode_bandwidth_gbs(68, 0.99);
        let mid = m.cache_mode_bandwidth_gbs(68, 0.7);
        let low = m.cache_mode_bandwidth_gbs(68, 0.2);
        assert!(high > mid && mid > low);
        // At very low hit rates cache mode is no better than DDR.
        let ddr = m.effective_bandwidth_gbs(&TierSpec::knl_ddr(), 68);
        assert!(low <= ddr * 1.3);
    }

    #[test]
    fn cache_mode_latency_interpolates() {
        let m = model();
        let hit = m.cache_mode_latency(1.0);
        let miss = m.cache_mode_latency(0.0);
        let half = m.cache_mode_latency(0.5);
        assert!(hit < half && half < miss);
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let t1 = BandwidthModel::transfer_time(1e9, 100.0);
        let t2 = BandwidthModel::transfer_time(2e9, 100.0);
        assert!((t2.nanos() / t1.nanos() - 2.0).abs() < 1e-9);
        assert_eq!(BandwidthModel::transfer_time(0.0, 100.0), Nanos::ZERO);
    }

    #[test]
    fn stream_bandwidth_dispatches_by_mode() {
        let flat = BandwidthModel::new(&MachineConfig::knl_7250());
        let cache =
            BandwidthModel::new(&MachineConfig::knl_7250().with_memory_mode(MemoryMode::Cache));
        let f = flat.stream_bandwidth_gbs(68, TierId::MCDRAM, 1.0);
        let c = cache.stream_bandwidth_gbs(68, TierId::DDR, 0.97);
        let d = flat.stream_bandwidth_gbs(68, TierId::DDR, 1.0);
        assert!(f > c && c > d, "flat {f} cache {c} ddr {d}");
    }
}
