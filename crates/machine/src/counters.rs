//! Performance counters exposed by the simulated processor.
//!
//! These model the subset of the PMU the framework needs: retired
//! instructions, LLC (L2 on KNL) load/store references and misses, and a
//! stalled-cycle approximation. The PEBS sampler in `hmsim-pebs` consumes the
//! LLC-miss counter.

use hmsim_common::Nanos;

/// Accumulated performance counters for one simulated execution interval.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// L1 data cache references.
    pub l1_references: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// LLC (L2 on KNL) references.
    pub llc_references: u64,
    /// LLC misses (the metric the framework attributes to data objects).
    pub llc_misses: u64,
    /// Cycles the core spent stalled on memory.
    pub stall_cycles: u64,
    /// Total cycles of the interval.
    pub cycles: u64,
}

impl PerfCounters {
    /// Add another interval's counters into this one.
    pub fn accumulate(&mut self, other: &PerfCounters) {
        self.instructions += other.instructions;
        self.l1_references += other.l1_references;
        self.l1_misses += other.l1_misses;
        self.llc_references += other.llc_references;
        self.llc_misses += other.llc_misses;
        self.stall_cycles += other.stall_cycles;
        self.cycles += other.cycles;
    }

    /// Millions of instructions per second over a wall-clock interval — the
    /// metric plotted in the paper's Figure 5 (bottom panel).
    pub fn mips(&self, wall: Nanos) -> f64 {
        if wall.nanos() <= 0.0 {
            return 0.0;
        }
        self.instructions as f64 / wall.secs() / 1e6
    }

    /// L1 data cache hits, derived from references and misses (the PMU does
    /// not expose a separate hit counter, and neither do we store one).
    pub fn l1_hits(&self) -> u64 {
        self.l1_references.saturating_sub(self.l1_misses)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per thousand instructions (MPKI).
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 / (self.instructions as f64 / 1000.0)
        }
    }

    /// Fraction of cycles stalled on memory.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PerfCounters {
            instructions: 100,
            llc_misses: 5,
            cycles: 200,
            ..Default::default()
        };
        let b = PerfCounters {
            instructions: 50,
            llc_misses: 2,
            cycles: 100,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.instructions, 150);
        assert_eq!(a.llc_misses, 7);
        assert_eq!(a.cycles, 300);
    }

    #[test]
    fn derived_metrics() {
        let c = PerfCounters {
            instructions: 2_000_000,
            llc_misses: 4_000,
            stall_cycles: 500,
            cycles: 1_000,
            ..Default::default()
        };
        assert!((c.mips(Nanos::from_secs(1.0)) - 2.0).abs() < 1e-9);
        assert!((c.ipc() - 2000.0).abs() < 1e-9);
        assert!((c.llc_mpki() - 2.0).abs() < 1e-9);
        assert!((c.stall_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let c = PerfCounters::default();
        assert_eq!(c.mips(Nanos::ZERO), 0.0);
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_mpki(), 0.0);
        assert_eq!(c.stall_fraction(), 0.0);
    }
}
