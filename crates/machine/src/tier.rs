//! Memory tier specifications.
//!
//! A *tier* is one physically distinct memory subsystem (DDR, MCDRAM, and in
//! principle NVM or remote memory). The `hmem_advisor` stage consumes exactly
//! this description: each tier has a capacity and a *relative performance*
//! used to order the knapsacks.

use hmsim_common::{ByteSize, HmError, HmResult, Nanos, TierId};

/// Upper bound on tier ids the fixed-size hot-path structures (per-tier
/// traffic array, per-tier latency cache) are sized for. DDR = 0, MCDRAM = 1,
/// NVM = 2 plus one spare; raising it only costs a few bytes per engine.
pub const MAX_TIERS: usize = 4;

/// Static description of one memory tier.
#[derive(Clone, Debug, PartialEq)]
pub struct TierSpec {
    /// Identifier of the tier.
    pub id: TierId,
    /// Human-readable name ("DDR", "MCDRAM").
    pub name: String,
    /// Total capacity of the tier.
    pub capacity: ByteSize,
    /// Peak achievable bandwidth in GB/s (aggregate over all cores).
    pub peak_bandwidth_gbs: f64,
    /// Bandwidth one core can draw on its own, in GB/s. The effective
    /// aggregate bandwidth scales with the number of active cores until it
    /// saturates at [`peak_bandwidth_gbs`](Self::peak_bandwidth_gbs).
    pub per_core_bandwidth_gbs: f64,
    /// Unloaded access latency.
    pub latency: Nanos,
    /// Relative performance weight used by the advisor to order knapsacks
    /// (higher = faster = filled first).
    pub relative_performance: f64,
}

impl TierSpec {
    /// The DDR4 tier of the KNL 7250 node used in the paper (96 GiB,
    /// ~90 GB/s STREAM bandwidth, ~130 ns load-to-use latency).
    pub fn knl_ddr() -> TierSpec {
        TierSpec {
            id: TierId::DDR,
            name: "DDR".to_string(),
            capacity: ByteSize::from_gib(96),
            peak_bandwidth_gbs: 90.0,
            per_core_bandwidth_gbs: 7.8,
            latency: Nanos(130.0),
            relative_performance: 1.0,
        }
    }

    /// The on-package MCDRAM tier of the KNL 7250 (16 GiB, ~450+ GB/s STREAM
    /// bandwidth; note that its unloaded latency is slightly *worse* than
    /// DDR, which the paper's Figure 1 indirectly reflects at low thread
    /// counts).
    pub fn knl_mcdram() -> TierSpec {
        TierSpec {
            id: TierId::MCDRAM,
            name: "MCDRAM".to_string(),
            capacity: ByteSize::from_gib(16),
            peak_bandwidth_gbs: 460.0,
            per_core_bandwidth_gbs: 7.3,
            latency: Nanos(155.0),
            relative_performance: 5.0,
        }
    }

    /// A hypothetical large/slow NVM tier, used by extension tests showing
    /// that the advisor generalises beyond two tiers.
    pub fn nvm(capacity: ByteSize) -> TierSpec {
        TierSpec {
            id: TierId(2),
            name: "NVM".to_string(),
            capacity,
            peak_bandwidth_gbs: 30.0,
            per_core_bandwidth_gbs: 2.0,
            latency: Nanos(350.0),
            relative_performance: 0.3,
        }
    }
}

/// An ordered collection of tiers making up the machine's memory system.
#[derive(Clone, Debug, Default)]
pub struct TierSet {
    tiers: Vec<TierSpec>,
}

impl TierSet {
    /// Build a tier set from specs. Tier ids must be unique.
    pub fn new(tiers: Vec<TierSpec>) -> HmResult<TierSet> {
        for (i, a) in tiers.iter().enumerate() {
            for b in &tiers[i + 1..] {
                if a.id == b.id {
                    return Err(HmError::Config(format!(
                        "duplicate tier id {:?} ({} and {})",
                        a.id, a.name, b.name
                    )));
                }
            }
        }
        Ok(TierSet { tiers })
    }

    /// The standard two-tier KNL memory system.
    pub fn knl() -> TierSet {
        TierSet {
            tiers: vec![TierSpec::knl_ddr(), TierSpec::knl_mcdram()],
        }
    }

    /// Look up a tier by id.
    pub fn get(&self, id: TierId) -> Option<&TierSpec> {
        self.tiers.iter().find(|t| t.id == id)
    }

    /// Look up a tier by name (case-insensitive).
    pub fn by_name(&self, name: &str) -> Option<&TierSpec> {
        self.tiers
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// All tiers in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &TierSpec> {
        self.tiers.iter()
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Tiers sorted by descending relative performance — the order in which
    /// the advisor fills knapsacks.
    pub fn by_descending_performance(&self) -> Vec<&TierSpec> {
        let mut v: Vec<&TierSpec> = self.tiers.iter().collect();
        v.sort_by(|a, b| {
            b.relative_performance
                .partial_cmp(&a.relative_performance)
                .expect("relative_performance must not be NaN")
        });
        v
    }

    /// The slowest tier (lowest relative performance); the advisor treats it
    /// as the unbounded fallback.
    pub fn slowest(&self) -> Option<&TierSpec> {
        self.tiers.iter().min_by(|a, b| {
            a.relative_performance
                .partial_cmp(&b.relative_performance)
                .expect("relative_performance must not be NaN")
        })
    }

    /// The fastest tier.
    pub fn fastest(&self) -> Option<&TierSpec> {
        self.tiers.iter().max_by(|a, b| {
            a.relative_performance
                .partial_cmp(&b.relative_performance)
                .expect("relative_performance must not be NaN")
        })
    }

    /// Total capacity across all tiers.
    pub fn total_capacity(&self) -> ByteSize {
        self.tiers.iter().map(|t| t.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_tier_set_has_expected_shape() {
        let ts = TierSet::knl();
        assert_eq!(ts.len(), 2);
        let ddr = ts.get(TierId::DDR).unwrap();
        let mc = ts.get(TierId::MCDRAM).unwrap();
        assert_eq!(ddr.capacity, ByteSize::from_gib(96));
        assert_eq!(mc.capacity, ByteSize::from_gib(16));
        assert!(mc.peak_bandwidth_gbs > 4.0 * ddr.peak_bandwidth_gbs);
        assert!(mc.latency.nanos() > ddr.latency.nanos());
        assert_eq!(ts.total_capacity(), ByteSize::from_gib(112));
    }

    #[test]
    fn ordering_by_performance() {
        let ts = TierSet::knl();
        let order = ts.by_descending_performance();
        assert_eq!(order[0].id, TierId::MCDRAM);
        assert_eq!(order[1].id, TierId::DDR);
        assert_eq!(ts.fastest().unwrap().id, TierId::MCDRAM);
        assert_eq!(ts.slowest().unwrap().id, TierId::DDR);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        let ts = TierSet::knl();
        assert!(ts.by_name("mcdram").is_some());
        assert!(ts.by_name("Ddr").is_some());
        assert!(ts.by_name("hbm3").is_none());
    }

    #[test]
    fn duplicate_tier_ids_rejected() {
        let dup = vec![TierSpec::knl_ddr(), TierSpec::knl_ddr()];
        assert!(TierSet::new(dup).is_err());
    }

    #[test]
    fn three_tier_configuration_supported() {
        let ts = TierSet::new(vec![
            TierSpec::knl_ddr(),
            TierSpec::knl_mcdram(),
            TierSpec::nvm(ByteSize::from_gib(512)),
        ])
        .unwrap();
        let order = ts.by_descending_performance();
        assert_eq!(order.len(), 3);
        assert_eq!(order[2].name, "NVM");
        assert_eq!(ts.slowest().unwrap().name, "NVM");
    }
}
