//! Memory access representation and synthetic access-stream generators.
//!
//! The trace-driven engine consumes a stream of [`MemoryAccess`]es. The
//! generators here produce the canonical HPC patterns the paper's workloads
//! exhibit: contiguous streaming (STREAM, vector updates), strided walks
//! (structured grids), and irregular gathers (sparse matrices, particle
//! codes).

use hmsim_common::{Address, AddressRange, ByteSize, DetRng};

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// One memory access issued by the simulated application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryAccess {
    /// Referenced virtual address.
    pub address: Address,
    /// Number of bytes touched (typically the element size).
    pub size: u16,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Convenience constructor for a load.
    pub fn load(address: Address, size: u16) -> Self {
        MemoryAccess {
            address,
            size,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(address: Address, size: u16) -> Self {
        MemoryAccess {
            address,
            size,
            kind: AccessKind::Store,
        }
    }
}

/// High-level description of how a kernel walks a data object. The analytic
/// engine uses this to estimate cache behaviour; the trace-driven engine uses
/// it to synthesise concrete address streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessPattern {
    /// Contiguous, unit-stride streaming over the whole object.
    Sequential,
    /// Fixed stride in bytes between consecutive elements.
    Strided {
        /// Stride between consecutive accesses, in bytes.
        stride: u32,
    },
    /// Uniformly random (gather/scatter) accesses over the object.
    Random,
    /// Accesses restricted to a hot fraction of the object (the rest is
    /// touched rarely); models partially-hot structures such as halo regions.
    HotSpot {
        /// Fraction (0..=1) of the object that receives most accesses.
        hot_fraction: f32,
    },
}

impl AccessPattern {
    /// Probability that an access to an object with this pattern misses the
    /// LLC *given* the object is much larger than the LLC. Regular patterns
    /// benefit from hardware prefetching and spatial locality; random ones do
    /// not.
    pub fn llc_miss_factor(self, element_size: u32, line_size: u64) -> f64 {
        let per_line = (line_size as f64 / f64::from(element_size.max(1))).max(1.0);
        match self {
            AccessPattern::Sequential => (1.0 / per_line) * 0.55, // prefetch hides misses
            AccessPattern::Strided { stride } => {
                let lines_per_access = (f64::from(stride) / line_size as f64).min(1.0);
                (lines_per_access.max(1.0 / per_line)) * 0.75
            }
            AccessPattern::Random => 0.95,
            AccessPattern::HotSpot { hot_fraction } => {
                let hf = f64::from(hot_fraction).clamp(0.01, 1.0);
                // Hot part mostly hits, cold part behaves like random.
                0.15 * hf + 0.9 * (1.0 - hf)
            }
        }
    }
}

/// Generator of concrete access streams over an address range.
#[derive(Clone, Debug)]
pub struct AccessStream {
    range: AddressRange,
    pattern: AccessPattern,
    element_size: u16,
    store_ratio: f64,
    cursor: u64,
    rng: DetRng,
}

impl AccessStream {
    /// Create a stream over `range` following `pattern`, touching
    /// `element_size`-byte elements, with `store_ratio` of accesses being
    /// stores.
    pub fn new(
        range: AddressRange,
        pattern: AccessPattern,
        element_size: u16,
        store_ratio: f64,
        rng: DetRng,
    ) -> Self {
        AccessStream {
            range,
            pattern,
            element_size: element_size.max(1),
            store_ratio: store_ratio.clamp(0.0, 1.0),
            cursor: 0,
            rng,
        }
    }

    /// Generate and materialize the next `n` accesses. For allocation-free
    /// consumption use the [`Iterator`] impl instead.
    pub fn take_vec(&mut self, n: usize) -> Vec<MemoryAccess> {
        (0..n).map(|_| self.next_access()).collect()
    }

    /// Generate the next access in the stream.
    pub fn next_access(&mut self) -> MemoryAccess {
        let len = self.range.len.bytes().max(u64::from(self.element_size));
        let span = len - u64::from(self.element_size) + 1;
        let offset = match self.pattern {
            AccessPattern::Sequential => {
                let o = self.cursor % span;
                self.cursor += u64::from(self.element_size);
                o
            }
            AccessPattern::Strided { stride } => {
                let o = self.cursor % span;
                self.cursor += u64::from(stride.max(1));
                o
            }
            AccessPattern::Random => self.rng.uniform_range(0, span),
            AccessPattern::HotSpot { hot_fraction } => {
                let hf = f64::from(hot_fraction).clamp(0.01, 1.0);
                let hot_span = ((span as f64) * hf).max(1.0) as u64;
                if self.rng.chance(0.9) {
                    self.rng.uniform_range(0, hot_span)
                } else {
                    self.rng.uniform_range(0, span)
                }
            }
        };
        let address = self.range.start.offset(offset);
        let kind = if self.rng.chance(self.store_ratio) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        MemoryAccess {
            address,
            size: self.element_size,
            kind,
        }
    }

    /// The address range this stream covers.
    pub fn range(&self) -> AddressRange {
        self.range
    }
}

/// `AccessStream` is an (infinite) iterator, so it can drive
/// [`TraceEngine::run_stream`](crate::engine::TraceEngine::run_stream)
/// directly — `stream.take(n)` style slicing comes from the iterator
/// adapters, with no materialized vector in between.
impl Iterator for AccessStream {
    type Item = MemoryAccess;

    #[inline]
    fn next(&mut self) -> Option<MemoryAccess> {
        Some(self.next_access())
    }
}

/// Streaming equivalent of [`sequential_sweep`]: one access per element over
/// the range, generated lazily so paper-scale sweeps never materialize a
/// vector. Feed it straight into
/// [`TraceEngine::run_stream`](crate::engine::TraceEngine::run_stream).
pub fn sequential_sweep_iter(
    range: AddressRange,
    element_size: u16,
    kind: AccessKind,
) -> impl Iterator<Item = MemoryAccess> {
    let element_size = element_size.max(1);
    let n = range.len.bytes() / u64::from(element_size);
    (0..n).map(move |i| MemoryAccess {
        address: range.start.offset(i * u64::from(element_size)),
        size: element_size,
        kind,
    })
}

/// Convenience: generate a full sequential sweep over a range (one access per
/// element), e.g. one STREAM kernel pass over an array. Materializes the
/// stream; prefer [`sequential_sweep_iter`] for anything large.
pub fn sequential_sweep(
    range: AddressRange,
    element_size: u16,
    kind: AccessKind,
) -> Vec<MemoryAccess> {
    sequential_sweep_iter(range, element_size, kind).collect()
}

/// Convenience: build an address range starting at `start` covering `size`.
pub fn range(start: u64, size: ByteSize) -> AddressRange {
    AddressRange::new(Address(start), size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmsim_common::DetRng;

    fn test_range() -> AddressRange {
        range(0x1000_0000, ByteSize::from_kib(64))
    }

    #[test]
    fn sequential_stream_walks_contiguously() {
        let mut s = AccessStream::new(
            test_range(),
            AccessPattern::Sequential,
            8,
            0.0,
            DetRng::new(1),
        );
        let acc = s.take_vec(10);
        for (i, a) in acc.iter().enumerate() {
            assert_eq!(a.address.value(), 0x1000_0000 + 8 * i as u64);
            assert_eq!(a.kind, AccessKind::Load);
        }
    }

    #[test]
    fn sequential_stream_wraps_around() {
        let r = range(0, ByteSize::from_bytes(32));
        let mut s = AccessStream::new(r, AccessPattern::Sequential, 8, 0.0, DetRng::new(1));
        let acc = s.take_vec(10);
        assert!(acc.iter().all(|a| r.contains(a.address)));
    }

    #[test]
    fn random_stream_stays_in_range() {
        let r = test_range();
        let mut s = AccessStream::new(r, AccessPattern::Random, 8, 0.5, DetRng::new(2));
        let acc = s.take_vec(1000);
        assert!(acc.iter().all(|a| r.contains(a.address)));
        let stores = acc.iter().filter(|a| a.kind == AccessKind::Store).count();
        assert!(stores > 300 && stores < 700, "store count {stores}");
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let r = test_range();
        let mut s = AccessStream::new(
            r,
            AccessPattern::HotSpot { hot_fraction: 0.1 },
            8,
            0.0,
            DetRng::new(3),
        );
        let acc = s.take_vec(2000);
        let hot_end = r.start.value() + r.len.bytes() / 10;
        let in_hot = acc.iter().filter(|a| a.address.value() < hot_end).count();
        assert!(in_hot as f64 / 2000.0 > 0.7, "hot fraction {in_hot}");
    }

    #[test]
    fn strided_stream_uses_stride() {
        let mut s = AccessStream::new(
            test_range(),
            AccessPattern::Strided { stride: 256 },
            8,
            0.0,
            DetRng::new(4),
        );
        let acc = s.take_vec(3);
        assert_eq!(acc[1].address - acc[0].address, 256);
        assert_eq!(acc[2].address - acc[1].address, 256);
    }

    #[test]
    fn miss_factor_orders_patterns() {
        let seq = AccessPattern::Sequential.llc_miss_factor(8, 64);
        let strided = AccessPattern::Strided { stride: 64 }.llc_miss_factor(8, 64);
        let rand = AccessPattern::Random.llc_miss_factor(8, 64);
        assert!(seq < strided);
        assert!(strided < rand);
        assert!(rand <= 1.0);
        assert!(seq > 0.0);
    }

    #[test]
    fn stream_iterator_matches_next_access() {
        let make = || {
            AccessStream::new(
                test_range(),
                AccessPattern::HotSpot { hot_fraction: 0.2 },
                8,
                0.3,
                DetRng::new(11),
            )
        };
        let mut a = make();
        let b = make();
        let explicit: Vec<MemoryAccess> = (0..100).map(|_| a.next_access()).collect();
        let iterated: Vec<MemoryAccess> = b.into_iter().take(100).collect();
        assert_eq!(explicit, iterated);
    }

    #[test]
    fn sweep_iter_is_lazy_and_equal_to_sweep() {
        let r = range(0x4000, ByteSize::from_kib(4));
        let materialized = sequential_sweep(r, 8, AccessKind::Load);
        let streamed: Vec<MemoryAccess> = sequential_sweep_iter(r, 8, AccessKind::Load).collect();
        assert_eq!(materialized, streamed);
        // Lazy: taking 3 from a sweep over a huge range must be instant.
        let huge = range(0, ByteSize::from_gib(64));
        let first3: Vec<MemoryAccess> = sequential_sweep_iter(huge, 8, AccessKind::Store)
            .take(3)
            .collect();
        assert_eq!(first3.len(), 3);
        assert_eq!(first3[2].address.value(), 16);
    }

    #[test]
    fn sweep_covers_whole_range() {
        let r = range(0, ByteSize::from_bytes(64 * 4));
        let acc = sequential_sweep(r, 8, AccessKind::Store);
        assert_eq!(acc.len(), 32);
        assert_eq!(acc.last().unwrap().address.value(), 64 * 4 - 8);
        assert!(acc.iter().all(|a| a.kind == AccessKind::Store));
    }
}
